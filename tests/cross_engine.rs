//! Cross-engine integration: every solver in the workspace — CPU
//! (classic + indexed Munkres, Jonker–Volgenant), the simulated GPU
//! (FastHA), and the simulated IPU (HunIPU) — must agree on the optimum
//! across instance families, and every exact engine must prove its own
//! result with an LP-duality certificate.

use cpu_hungarian::{Auction, JonkerVolgenant, Munkres};
use datasets::{gaussian_cost_matrix, uniform_cost_matrix};
use fastha::FastHa;
use gpu_sim::GpuProfileConfig;
use hunipu::HunIpu;
use ipu_sim::{IpuConfig, ProfileConfig};
use lsap::{CostMatrix, LsapSolver, COST_EPS};

/// Runs all exact engines on `m` and asserts agreement + certificates.
/// Uses a small simulated IPU so tests stay fast; the algorithm is
/// identical at any tile count. The device engines run with profiling
/// on, so every differential case also exercises the observability
/// layer: timelines must be nonzero and reconcile with the simulators'
/// own accounting.
fn assert_all_engines_agree(m: &CostMatrix) {
    let truth = {
        let rep = JonkerVolgenant::new().solve(m).unwrap();
        rep.verify(m, COST_EPS).unwrap();
        rep.objective
    };

    let rep = Munkres::new().solve(m).unwrap();
    rep.verify(m, COST_EPS).unwrap();
    assert_eq!(rep.objective, truth, "classic munkres");

    let rep = Munkres::indexed().solve(m).unwrap();
    rep.verify(m, COST_EPS).unwrap();
    assert_eq!(rep.objective, truth, "indexed munkres");

    let hun = HunIpu::with_config(IpuConfig::tiny(10)).with_profiling(ProfileConfig::default());
    let (rep, engine) = hun.solve_with_engine(m).unwrap();
    rep.verify(m, hunipu::F32_VERIFY_EPS).unwrap();
    assert_eq!(rep.objective, truth, "hunipu");
    assert_ipu_profile_consistent(&engine, &rep);

    if m.n().is_power_of_two() {
        let fast = FastHa::new().with_profiling(GpuProfileConfig::default());
        let (rep, gpu) = fast.solve_with_device(m).unwrap();
        rep.verify(m, fastha::F32_VERIFY_EPS).unwrap();
        assert_eq!(rep.objective, truth, "fastha");
        assert_gpu_profile_consistent(&gpu, &rep);
    }
}

/// The IPU profiler must have seen the run (nonzero timeline) and its
/// totals must reconcile exactly with [`ipu_sim::CycleStats`].
fn assert_ipu_profile_consistent(engine: &ipu_sim::Engine, rep: &lsap::SolveReport) {
    let p = engine.profile_report().expect("profiling was enabled");
    let stats = engine.stats();
    assert!(p.supersteps > 0, "empty IPU timeline");
    assert!(p.events_recorded > 0 || p.events_dropped > 0);
    assert!(rep.stats.profile_events > 0);
    assert_eq!(p.supersteps, stats.supersteps);
    assert_eq!(p.compute_cycles, stats.compute_cycles);
    assert_eq!(p.sync_cycles, stats.sync_cycles);
    assert_eq!(p.exchange_cycles, stats.exchange_cycles);
    assert_eq!(p.control_cycles, stats.control_cycles);
    assert_eq!(p.exchanges, stats.exchanges);
    assert_eq!(p.exchange_bytes, stats.exchange_bytes);
    assert_eq!(
        p.exchange_heatmap.iter().map(|c| c.bytes).sum::<u64>(),
        p.exchange_bytes,
        "heatmap must sum to exchange_bytes"
    );
    assert_eq!(
        p.occupancy_histogram.iter().sum::<u64>(),
        p.tile_supersteps,
        "occupancy histogram must sum to tile_supersteps"
    );
}

/// The GPU profiler must have seen the run and reconcile (bit-exactly
/// for modeled seconds) with [`gpu_sim::GpuStats`].
fn assert_gpu_profile_consistent(gpu: &gpu_sim::GpuSim, rep: &lsap::SolveReport) {
    let p = gpu.profile_report().expect("profiling was enabled");
    let stats = gpu.stats();
    assert!(p.launches > 0, "empty GPU timeline");
    assert!(rep.stats.profile_events > 0);
    assert_eq!(p.launches, stats.launches);
    assert_eq!(p.host_syncs, stats.host_syncs);
    assert_eq!(p.warp_cycles, stats.warp_cycles);
    assert_eq!(p.kernel_seconds.to_bits(), stats.kernel_seconds.to_bits());
    assert_eq!(
        p.host_sync_seconds.to_bits(),
        stats.host_sync_seconds.to_bits()
    );
    assert_eq!(
        p.per_kernel.iter().map(|k| k.launches).sum::<u64>(),
        p.launches
    );
    assert_eq!(
        p.per_kernel.iter().map(|k| k.warp_cycles).sum::<u64>(),
        p.warp_cycles
    );
}

#[test]
fn gaussian_instances_all_ks() {
    // The paper's distribution at every k (tiny n keeps this quick; all
    // values stay f32-exact).
    for &k in &datasets::PAPER_KS {
        let m = gaussian_cost_matrix(16, k, 7 + k);
        assert_all_engines_agree(&m);
    }
}

#[test]
fn uniform_instances() {
    for seed in 0..4 {
        let m = uniform_cost_matrix(16, 100, seed);
        assert_all_engines_agree(&m);
    }
}

#[test]
fn adversarial_tie_structures() {
    // Constant matrix: everything ties.
    assert_all_engines_agree(&CostMatrix::filled(8, 3.0).unwrap());
    // Product matrix: guarantees dual updates.
    assert_all_engines_agree(
        &CostMatrix::from_fn(8, 8, |i, j| ((i + 1) * (j + 1)) as f64).unwrap(),
    );
    // Two-value matrix with a thin optimal structure.
    assert_all_engines_agree(
        &CostMatrix::from_fn(8, 8, |i, j| if (i + j) % 4 == 0 { 1.0 } else { 9.0 }).unwrap(),
    );
}

#[test]
fn non_power_of_two_sizes() {
    for n in [3usize, 5, 11, 17] {
        let m = CostMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 37) as f64).unwrap();
        assert_all_engines_agree(&m);
    }
}

#[test]
fn auction_tracks_the_same_optimum_within_eps() {
    let m = gaussian_cost_matrix(16, 10, 3);
    let truth = JonkerVolgenant::new().solve(&m).unwrap().objective;
    let mut auction = Auction::with_eps(1e-6);
    let rep = auction.solve(&m).unwrap();
    assert!(rep.objective >= truth - 1e-9);
    assert!(rep.objective <= truth + 16.0 * 1e-6 + 1e-9);
}

#[test]
fn padded_solve_recovers_unpadded_optimum() {
    // Solve an 11x11 instance on FastHA via zero-padding to 16 and
    // compare the truncated matching with the direct optimum — the
    // Table III pipeline in miniature. Padding a *minimization* problem
    // needs care: pad as similarities (zeros), then convert.
    let n = 11;
    let sim = CostMatrix::from_fn(n, n, |i, j| (((i * 7 + j * 3) % 13) + 1) as f64).unwrap();
    let direct = JonkerVolgenant::new()
        .solve(&sim.similarity_to_cost())
        .unwrap();

    let (padded_sim, orig) = sim.padded_to_pow2(0.0);
    let rep = FastHa::new()
        .solve(&padded_sim.similarity_to_cost())
        .unwrap();
    let truncated = rep.assignment.truncated(orig, orig);
    assert_eq!(
        truncated.matched_count(),
        n,
        "padding must not steal real rows"
    );
    let cost = truncated.cost(&sim.similarity_to_cost()).unwrap();
    assert!((cost - direct.objective).abs() < 1e-6);
}

#[test]
fn alignment_pipeline_end_to_end_small() {
    // Mini Table III: ER graph vs noisy copy, both device engines.
    let g = graphs::erdos_renyi_gnm(24, 90, 5);
    let noisy = graphs::keep_edge_fraction(&g, 0.95, 6);
    let sim = align::grampa_similarity(&g, &noisy, align::DEFAULT_ETA);
    let cost = sim.similarity_to_cost();

    let mut hun = HunIpu::with_config(IpuConfig::tiny(8));
    let hrep = hun.solve(&cost).unwrap();
    let truth = JonkerVolgenant::new().solve(&cost).unwrap();
    let scale = cost.min_max().1.abs().max(1.0) * 24.0;
    assert!((hrep.objective - truth.objective).abs() <= 1e-5 * scale);

    let (padded_sim, orig) = align::pad_for_pow2_solver(&sim);
    let frep = FastHa::new()
        .solve(&padded_sim.similarity_to_cost())
        .unwrap();
    let trunc = frep.assignment.truncated(orig, orig);
    assert_eq!(trunc.matched_count(), orig);
    let fcost = trunc.cost(&cost).unwrap();
    assert!((fcost - truth.objective).abs() <= 1e-5 * scale);
}

#[test]
fn rectangular_reduction_works_on_every_engine() {
    // 5 workers x 9 tasks: the dummy-row reduction of `lsap` must give
    // the same restricted cost through JV and through HunIPU.
    let m = CostMatrix::from_fn(5, 9, |i, j| (((i * 11 + j * 7) % 23) + 1) as f64).unwrap();
    let (_, jv_cost) = lsap::solve_rectangular(&m, &mut JonkerVolgenant::new()).unwrap();
    let mut hun = HunIpu::with_config(IpuConfig::tiny(8));
    let (a, hun_cost) = lsap::solve_rectangular(&m, &mut hun).unwrap();
    assert_eq!(a.matched_count(), 5, "every worker matched");
    assert_eq!(jv_cost, hun_cost);
}

#[test]
fn device_stats_expose_the_expected_shape() {
    // HunIPU on a 2^m instance: FastHA must pay host syncs, HunIPU must
    // not (its control flow is on-device).
    let m = gaussian_cost_matrix(16, 10, 11);
    let (hrep, engine) = HunIpu::with_config(IpuConfig::tiny(8))
        .solve_with_engine(&m)
        .unwrap();
    assert!(engine.stats().supersteps > 0);
    assert!(engine.stats().host_bytes > 0); // instance upload
    assert!(hrep.stats.modeled_seconds.unwrap() > 0.0);

    let (frep, gpu) = FastHa::new().solve_with_device(&m).unwrap();
    assert!(
        gpu.stats().host_syncs > 0,
        "FastHA's loop syncs to the host"
    );
    assert!(frep.stats.modeled_seconds.unwrap() > 0.0);
}
