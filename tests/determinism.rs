//! Determinism: simulators and generators must be bit-reproducible —
//! same instance, same device, same result and same modeled cycles.
//! (BSP execution has no host-order dependence by construction; this
//! locks that property in.)

use fastha::FastHa;
use hunipu::HunIpu;
use ipu_sim::IpuConfig;

#[test]
fn hunipu_runs_are_bit_reproducible() {
    let m = datasets::gaussian_cost_matrix(24, 100, 5);
    let run = || {
        let (rep, engine) = HunIpu::with_config(IpuConfig::tiny(7))
            .solve_with_engine(&m)
            .unwrap();
        (
            rep.objective,
            rep.assignment.clone(),
            engine.stats().total_cycles(),
            engine.stats().supersteps,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn fastha_runs_are_bit_reproducible() {
    let m = datasets::gaussian_cost_matrix(16, 100, 5);
    let run = || {
        let (rep, gpu) = FastHa::new().solve_with_device(&m).unwrap();
        (
            rep.objective,
            rep.assignment.clone(),
            gpu.stats().warp_cycles,
            gpu.stats().launches,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn dataset_and_graph_generators_are_reproducible() {
    assert_eq!(
        datasets::gaussian_cost_matrix(64, 500, 9),
        datasets::gaussian_cost_matrix(64, 500, 9)
    );
    assert_eq!(
        graphs::realworld::synthetic_multimagna(3),
        graphs::realworld::synthetic_multimagna(3)
    );
    let g = graphs::erdos_renyi_gnm(40, 100, 2);
    assert_eq!(
        graphs::keep_edge_fraction(&g, 0.9, 4),
        graphs::keep_edge_fraction(&g, 0.9, 4)
    );
}

#[test]
fn modeled_time_is_independent_of_host_machine() {
    // Two separate engines over the same program must charge identical
    // cycles — the model must never read wall clocks.
    let m = datasets::uniform_cost_matrix(20, 10, 1);
    let (r1, e1) = HunIpu::with_config(IpuConfig::tiny(6))
        .solve_with_engine(&m)
        .unwrap();
    let (r2, e2) = HunIpu::with_config(IpuConfig::tiny(6))
        .solve_with_engine(&m)
        .unwrap();
    assert_eq!(e1.stats().total_cycles(), e2.stats().total_cycles());
    assert_eq!(
        r1.stats.modeled_seconds.unwrap().to_bits(),
        r2.stats.modeled_seconds.unwrap().to_bits()
    );
}
