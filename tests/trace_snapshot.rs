//! Golden-trace snapshot: the Chrome trace of a small, fixed HunIPU
//! solve must be byte-stable across runs and well-formed under the
//! `trace_event` schema.
//!
//! The golden file lives at `tests/golden/hunipu_4x4_trace.json`.
//! After an *intentional* profiler/trace format change, regenerate it:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test trace_snapshot
//! ```

use hunipu::HunIpu;
use ipu_sim::{IpuConfig, ProfileConfig};
use lsap::CostMatrix;
use std::path::PathBuf;
use trace::ChromeTrace;

/// The fixed instance: small enough that the whole timeline fits the
/// ring, distinct enough to exercise dual updates.
fn fixed_trace() -> String {
    let m = CostMatrix::from_rows(&[
        &[4.0, 1.0, 3.0, 9.0],
        &[2.0, 0.0, 5.0, 8.0],
        &[3.0, 2.0, 2.0, 7.0],
        &[1.0, 6.0, 4.0, 2.0],
    ])
    .unwrap();
    let cfg = IpuConfig {
        host_threads: 1,
        ..IpuConfig::tiny(4)
    };
    let (_, engine) = HunIpu::with_config(cfg)
        .with_profiling(ProfileConfig::default())
        .solve_with_engine(&m)
        .expect("solve failed");
    engine
        .chrome_trace(1, "hunipu")
        .expect("profiling was enabled")
        .to_json()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/hunipu_4x4_trace.json")
}

#[test]
fn trace_is_stable_across_runs() {
    assert_eq!(
        fixed_trace(),
        fixed_trace(),
        "the same solve must render the same bytes"
    );
}

#[test]
fn trace_validates_against_the_event_schema() {
    let json = fixed_trace();
    let s = ChromeTrace::validate_json(&json).expect("well-formed trace_event JSON");
    // The validator already enforced: known `ph` phases, integer
    // pid/tid, finite non-negative `ts`, `dur` on every `X`, and
    // per-lane monotone timestamps. Check the expected shape on top.
    assert!(s.complete_events > 0, "compute/exchange spans present");
    assert!(s.metadata_events >= 2, "process and thread names present");
    assert!(s.lanes >= 2, "chip lane plus at least one tile lane");
    assert!(s.span_us > 0.0, "nonzero modeled duration");
}

#[test]
fn trace_matches_golden_snapshot() {
    let json = fixed_trace();
    let path = golden_path();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; run with REGEN_GOLDEN=1",
            path.display()
        )
    });
    if json != golden {
        let actual =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/hunipu_4x4_trace.actual.json");
        let _ = std::fs::write(&actual, &json);
        panic!(
            "trace drifted from {} (actual written to {}); if the format \
             change is intentional, regenerate with REGEN_GOLDEN=1",
            path.display(),
            actual.display()
        );
    }
    // The checked-in snapshot itself must stay schema-valid.
    ChromeTrace::validate_json(&golden).expect("golden trace is well-formed");
}
