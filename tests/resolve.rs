//! Warm-start re-solve: the certificate-gated differential suite.
//!
//! Every engine with a seeded path — the CPU Jonker–Volgenant solver,
//! the simulated-GPU FastHA, and the simulated-IPU HunIPU (through its
//! streaming adapter) — is streamed through [`lsap::IncrementalSolver`]
//! over perturbation sweeps and checked three ways per tick:
//!
//! 1. the report's own [`lsap::DualCertificate`] verifies against the
//!    patched matrix,
//! 2. the objective is **bit-identical** to a cold solve of the same
//!    matrix by a fresh engine of the same family (integer-valued costs
//!    keep all dual arithmetic exact, so the warm path has no rounding
//!    excuse), and
//! 3. the objective matches the f64 CPU ground truth.
//!
//! Negative paths are exercised with adversarial deltas (full-matrix
//! replacement) and an `ipu_sim` bit-flip storm: shortcuts must either
//! produce a verified answer or fall back **loudly** (counted in
//! [`lsap::ResolveStats`], error surfaced when even the cold path cannot
//! verify) — never a silent wrong answer.
//!
//! The suite is thread-count independent (CI runs it at `SIM_THREADS=1`
//! and `8`); snapshot/restore replay is additionally pinned in both
//! device execution modes (`Plan` and `Interpreted`).

use cpu_hungarian::JonkerVolgenant;
use datasets::uniform_cost_matrix;
use fastha::FastHa;
use hunipu::{HunIpu, StreamingHunIpu};
use ipu_sim::{ExecMode, FaultPlan, IpuConfig};
use lsap::{CostMatrix, DeltaUpdate, IncrementalSolver, LsapError, LsapSolver, SeedSolve};
use proptest::prelude::*;

fn hun() -> StreamingHunIpu {
    StreamingHunIpu::new(HunIpu::with_config(IpuConfig::tiny(8)))
}

/// The tick's delta: `k` distinct rows rewritten with non-uniform
/// integer bumps. Integer costs keep the f32 dual repair exact;
/// non-uniform bumps genuinely move row argmins instead of being
/// absorbed by the recomputed `u_i`.
fn perturb(m: &CostMatrix, k: usize, tick: usize) -> DeltaUpdate {
    let n = m.n();
    let mut delta = DeltaUpdate::new();
    for idx in 0..k.min(n) {
        let row = (tick * k + idx) % n;
        let values: Vec<f64> = (0..n)
            .map(|j| m.get(row, j) + ((tick + idx + j) % 9) as f64 + 1.0)
            .collect();
        delta.set_row(row, values);
    }
    delta
}

/// Streams `ticks` k-row perturbations of `m0` through `engine`,
/// checking every tick differentially against a cold solve by `cold`
/// (same engine family) and the f64 CPU ground truth. Returns the
/// session counters so callers can assert the seeded path was taken.
fn assert_stream_matches_cold<S: SeedSolve, C: LsapSolver>(
    engine: S,
    mut cold: C,
    m0: CostMatrix,
    k: usize,
    ticks: usize,
) -> lsap::ResolveStats {
    let eps = engine.verify_eps();
    let mut stream = IncrementalSolver::new(engine, m0);
    stream
        .solve_next(&DeltaUpdate::new())
        .expect("initial cold solve failed");
    for tick in 1..=ticks {
        let delta = perturb(stream.matrix(), k, tick);
        let warm = stream.solve_next(&delta).expect("re-solve failed");
        let m = stream.matrix().clone();
        warm.verify(&m, eps).expect("re-solve certificate invalid");
        let cold_rep = cold.solve(&m).expect("cold solve failed");
        assert_eq!(
            warm.objective.to_bits(),
            cold_rep.objective.to_bits(),
            "k={k} tick={tick}: warm {} != cold {}",
            warm.objective,
            cold_rep.objective
        );
        let truth = cpu_hungarian::ground_truth_objective(&m);
        assert!(
            (warm.objective - truth).abs() <= 1e-6 * (1.0 + truth.abs()),
            "k={k} tick={tick}: warm {} != ground truth {truth}",
            warm.objective
        );
    }
    stream.stats()
}

/// The deterministic sweep the ISSUE names: k ∈ {1, n/8, n/2, n}
/// perturbed rows per tick, across all three seeded engine families.
#[test]
fn differential_sweep_across_engines_and_perturbation_sizes() {
    const N: usize = 16;
    for (seed, k) in [(1u64, 1usize), (2, N / 8), (3, N / 2), (4, N)] {
        let m0 = uniform_cost_matrix(N, 10, seed);
        let s = assert_stream_matches_cold(
            JonkerVolgenant::new(),
            JonkerVolgenant::new(),
            m0.clone(),
            k,
            3,
        );
        assert_eq!(s.seeded, 3, "jv must seed every tick (exact f64): {s:?}");
        let s = assert_stream_matches_cold(FastHa::new(), FastHa::new(), m0.clone(), k, 3);
        assert_eq!(s.seeded, 3, "fastha must seed every tick: {s:?}");
        let s =
            assert_stream_matches_cold(hun(), HunIpu::with_config(IpuConfig::tiny(8)), m0, k, 3);
        assert_eq!(s.seeded, 3, "hunipu must seed every tick: {s:?}");
    }
}

/// An adversarial delta — the whole matrix replaced with an unrelated
/// instance — must still produce an exact, certificate-valid answer.
/// Whether the engine seeds or falls back is its business; silence is
/// not an option, and the answer must stay right.
#[test]
fn adversarial_full_replacement_stays_exact_and_loud() {
    const N: usize = 12;
    let m0 = uniform_cost_matrix(N, 10, 5);
    let unrelated = uniform_cost_matrix(N, 10, 99);
    let mut stream = IncrementalSolver::new(hun(), m0);
    stream.solve_next(&DeltaUpdate::new()).unwrap();
    let mut delta = DeltaUpdate::new();
    for i in 0..N {
        delta.set_row(i, (0..N).map(|j| unrelated.get(i, j)).collect());
    }
    let rep = stream.solve_next(&delta).unwrap();
    rep.verify(stream.matrix(), hunipu::F32_VERIFY_EPS).unwrap();
    let truth = cpu_hungarian::ground_truth_objective(&unrelated);
    assert!((rep.objective - truth).abs() <= 1e-6 * (1.0 + truth.abs()));
    let s = stream.stats();
    assert_eq!(
        s.seeded + s.fallbacks,
        1,
        "the tick is accounted exactly once: {s:?}"
    );
}

/// Under a dense bit-flip storm neither the seeded nor the cold device
/// path can produce a verifying certificate: the fallback must be
/// counted and the failure surfaced as an error — never an unverified
/// answer. Disarming the storm heals the stream in place.
#[test]
fn fault_storm_fails_loud_then_stream_heals() {
    const N: usize = 12;
    let m0 = uniform_cost_matrix(N, 10, 7);
    let mut stream = IncrementalSolver::new(hun(), m0);
    stream.solve_next(&DeltaUpdate::new()).unwrap();

    stream.solver_mut().solver_mut().set_fault_plan(Some(
        FaultPlan::new(9)
            .with_bit_flips(0.8)
            .targeting("slack")
            .after_supersteps(0),
    ));
    let delta = perturb(stream.matrix(), 1, 1);
    match stream.solve_next(&delta) {
        Err(LsapError::VerificationFailed { .. }) => {}
        other => panic!("storm must surface as VerificationFailed, got {other:?}"),
    }
    let s = stream.stats();
    assert_eq!(
        s.fallbacks, 1,
        "the corrupted seeded attempt is counted: {s:?}"
    );

    // Disarm: the warm state from before the storm is still valid for
    // the patched matrix, so the next tick re-solves and verifies.
    stream.solver_mut().solver_mut().set_fault_plan(None);
    let rep = stream.solve_next(&DeltaUpdate::new()).unwrap();
    rep.verify(stream.matrix(), hunipu::F32_VERIFY_EPS).unwrap();
    let truth = cpu_hungarian::ground_truth_objective(stream.matrix());
    assert!((rep.objective - truth).abs() <= 1e-6 * (1.0 + truth.abs()));
}

/// Snapshot mid-stream, continue, restore, replay the same deltas: the
/// replayed reports must be bit-identical (objective, assignment,
/// certificate, modeled cycles) in both device execution modes.
#[test]
fn snapshot_restore_replay_is_bit_identical_in_both_exec_modes() {
    const N: usize = 10;
    for mode in [ExecMode::Plan, ExecMode::Interpreted] {
        let solver = StreamingHunIpu::new(HunIpu::with_config(IpuConfig {
            exec_mode: mode,
            ..IpuConfig::tiny(8)
        }));
        let m0 = uniform_cost_matrix(N, 10, 21);
        let mut stream = IncrementalSolver::new(solver, m0);
        stream.solve_next(&DeltaUpdate::new()).unwrap();
        stream.solve_next(&perturb(stream.matrix(), 2, 1)).unwrap();

        let snap = stream.snapshot();
        let mut first_pass = Vec::new();
        for tick in 2..=4 {
            let delta = perturb(stream.matrix(), 2, tick);
            let rep = stream.solve_next(&delta).unwrap();
            first_pass.push(rep);
        }
        let stats_after = stream.stats();

        stream.restore(&snap);
        for (tick, expect) in (2..=4).zip(&first_pass) {
            let delta = perturb(stream.matrix(), 2, tick);
            let rep = stream.solve_next(&delta).unwrap();
            assert_eq!(
                rep.objective.to_bits(),
                expect.objective.to_bits(),
                "{mode:?}"
            );
            assert_eq!(rep.assignment, expect.assignment, "{mode:?}");
            assert_eq!(rep.certificate, expect.certificate, "{mode:?}");
            assert_eq!(
                rep.stats.modeled_cycles, expect.stats.modeled_cycles,
                "{mode:?}"
            );
            assert_eq!(rep.stats.seeded, expect.stats.seeded, "{mode:?}");
        }
        assert_eq!(stream.stats(), stats_after, "{mode:?}: counters replay too");
    }
}

/// Integer matrices with arbitrary shape/content/perturbation for the
/// CPU and GPU engines (cheap enough for a wide net).
fn int_matrix(n: usize, range: u32, seed: u64) -> CostMatrix {
    // The datasets generators already produce integer-valued costs; mix
    // the proptest-chosen seed in for variety.
    uniform_cost_matrix(n, range.max(1) as u64, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random instance + random perturbation width: JV and FastHA warm
    /// answers are bit-identical to cold and ground-truth exact.
    #[test]
    fn cpu_and_gpu_streams_match_cold_on_random_instances(
        n in 4usize..12,
        range in 2u32..40,
        seed in 0u64..1_000,
        k in 1usize..12,
    ) {
        let m0 = int_matrix(n, range, seed);
        assert_stream_matches_cold(JonkerVolgenant::new(), JonkerVolgenant::new(), m0, k.min(n), 2);
        // FastHA operates on power-of-two sizes only.
        let nf = n.next_power_of_two();
        let mf = int_matrix(nf, range, seed);
        assert_stream_matches_cold(FastHa::new(), FastHa::new(), mf, k.min(nf), 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulated IPU under the same property, fewer cases (each one
    /// compiles two device programs).
    #[test]
    fn hunipu_stream_matches_cold_on_random_instances(
        n in 4usize..10,
        range in 2u32..40,
        seed in 0u64..1_000,
        k in 1usize..10,
    ) {
        let m0 = int_matrix(n, range, seed);
        assert_stream_matches_cold(hun(), HunIpu::with_config(IpuConfig::tiny(8)), m0, k.min(n), 2);
    }
}
