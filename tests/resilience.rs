//! End-to-end resilience: a seeded fault plan corrupts the simulated IPU
//! mid-run, and the self-verifying resilient solver still delivers a
//! verified-optimal assignment — the acceptance scenario for the fault
//! subsystem.

use cpu_hungarian::JonkerVolgenant;
use hunipu::HunIpu;
use ipu_sim::{FaultPlan, IpuConfig};
use lsap::{CostMatrix, LsapSolver, ResilientSolver, RetryPolicy};

const N: usize = 32;
const EPS: f64 = 1e-5;

fn instance(seed: u64) -> CostMatrix {
    datasets::gaussian_cost_matrix(N, 100, seed)
}

/// A small device with a *tight* divergence watchdog. Corrupted matching
/// state can trap the device program in a `RepeatWhileTrue` that never
/// settles; the default guard (10^8 iterations) is calibrated for real
/// workloads and takes far too long under host simulation, so tests dial
/// it down and let the watchdog convert the hang into a retryable
/// divergence error within milliseconds.
fn test_device() -> IpuConfig {
    IpuConfig {
        max_while_iterations: 20_000,
        ..IpuConfig::tiny(8)
    }
}

/// The true optimum, from an independent CPU solver on clean memory.
fn reference_objective(m: &CostMatrix) -> f64 {
    let report = JonkerVolgenant::new().solve(m).unwrap();
    report.verify(m, EPS).unwrap();
    report.objective
}

#[test]
fn seeded_bit_flips_in_slack_are_survived_and_result_is_optimal() {
    let m = instance(11);
    let want = reference_objective(&m);

    // An aggressive plan: one bit flip per armed superstep into the slack
    // matrix, armed only after 50 supersteps so the algorithm is already
    // deep in augmentation when corruption starts.
    let plan = FaultPlan::new(42)
        .with_bit_flips(0.05)
        .targeting("slack")
        .after_supersteps(50);
    let primary = HunIpu::with_config(test_device()).with_fault_plan(plan);
    let mut solver = ResilientSolver::new(primary)
        .with_fallback(JonkerVolgenant::new())
        .with_policy(RetryPolicy::attempts(4))
        .with_eps(EPS);

    let report = solver.solve(&m).expect("chain must eventually recover");
    report.verify(&m, EPS).unwrap();
    assert_eq!(report.objective, want, "recovered result must be optimal");

    let history = solver.history();
    assert!(
        history.len() >= 2,
        "this seed must actually corrupt the first attempt; history: {history:?}"
    );
    assert!(history.last().unwrap().succeeded());
    for failed in &history[..history.len() - 1] {
        let msg = failed.error.as_deref().unwrap();
        assert!(
            msg.contains("verification") || msg.contains("backend") || msg.contains("corrupt"),
            "failures must be detection events, not silent wrong answers: {msg}"
        );
    }
}

#[test]
fn corrupted_matching_state_cannot_produce_a_wrong_accepted_answer() {
    let m = instance(5);
    let want = reference_objective(&m);

    // Flip bits in the matching tensors themselves (`row_star`,
    // `col_star`): i32 corruption yields bogus column indices or broken
    // matchings, which the validity/certificate checks must catch.
    let plan = FaultPlan::new(9)
        .with_bit_flips(0.05)
        .targeting("star")
        .after_supersteps(20);
    let primary = HunIpu::with_config(test_device()).with_fault_plan(plan);
    let mut solver = ResilientSolver::new(primary)
        .with_fallback(JonkerVolgenant::new())
        .with_policy(RetryPolicy::attempts(4))
        .with_eps(EPS);

    let report = solver.solve(&m).expect("chain must eventually recover");
    assert_eq!(report.objective, want);
    report.verify(&m, EPS).unwrap();
}

#[test]
fn retry_outcome_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let m = instance(11);
        let primary = HunIpu::with_config(test_device()).with_fault_plan(
            FaultPlan::new(42)
                .with_bit_flips(0.05)
                .targeting("slack")
                .after_supersteps(50),
        );
        let mut solver = ResilientSolver::new(primary)
            .with_fallback(JonkerVolgenant::new())
            .with_policy(RetryPolicy::attempts(4))
            .with_eps(EPS);
        let objective = solver.solve(&m).unwrap().objective;
        let trace: Vec<(String, u32, Option<String>)> = solver
            .history()
            .iter()
            .map(|a| (a.solver.clone(), a.attempt, a.error.clone()))
            .collect();
        (objective, trace)
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce the same recovery path"
    );
}

#[test]
fn wrapper_with_faults_disabled_changes_nothing_about_the_solve() {
    let m = instance(3);

    let mut bare = HunIpu::with_config(test_device());
    let bare_report = bare.solve(&m).unwrap();

    let mut wrapped = ResilientSolver::new(HunIpu::with_config(test_device()))
        .with_fallback(JonkerVolgenant::new())
        .with_eps(EPS);
    let wrapped_report = wrapped.solve(&m).unwrap();

    // Same device work, same answer, one attempt: the resilience layer is
    // pure supervision — zero modeled overhead unless something fails.
    assert_eq!(wrapped_report.objective, bare_report.objective);
    assert_eq!(
        wrapped_report.stats.modeled_cycles,
        bare_report.stats.modeled_cycles
    );
    assert_eq!(
        wrapped_report.stats.device_steps,
        bare_report.stats.device_steps
    );
    assert_eq!(wrapped.history().len(), 1);
    assert!(wrapped.history()[0].succeeded());
}
