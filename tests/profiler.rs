//! Property tests for the execution profilers: on arbitrary instances,
//! both simulators' timelines must reconcile *exactly* with their own
//! cycle/time accounting, and the IPU profile must be bit-identical at
//! every host thread count.

use fastha::FastHa;
use gpu_sim::GpuProfileConfig;
use hunipu::HunIpu;
use ipu_sim::{Engine, IpuConfig, ProfileConfig, ProfileEvent};
use lsap::CostMatrix;
use proptest::prelude::*;

/// A deterministic pseudo-random instance (xorshift; independent of the
/// proptest RNG so failures replay from the parameters alone).
fn instance(n: usize, span: u64, seed: u64) -> CostMatrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    CostMatrix::from_fn(n, n, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % span) as f64
    })
    .unwrap()
}

fn profiled_engine(
    m: &CostMatrix,
    tiles: usize,
    host_threads: usize,
    config: ProfileConfig,
) -> Engine {
    let cfg = IpuConfig {
        host_threads,
        ..IpuConfig::tiny(tiles)
    };
    let (_, engine) = HunIpu::with_config(cfg)
        .with_profiling(config)
        .solve_with_engine(m)
        .expect("solve failed");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Timeline/aggregate reconciliation on the IPU: per-superstep max
    /// costs sum to `compute_cycles`, per-pair exchange bytes sum to
    /// `exchange_bytes`, and the occupancy histogram accounts for every
    /// (tile, superstep) pair — all exactly.
    #[test]
    fn ipu_profile_reconciles_with_cycle_stats(
        n in 4usize..13,
        tiles in 2usize..7,
        span in 5u64..50,
        seed in 0u64..1000,
    ) {
        let m = instance(n, span, seed);
        // An effectively unbounded ring so the event sums are complete.
        let engine = profiled_engine(&m, tiles, 1, ProfileConfig {
            max_events: usize::MAX,
            ..Default::default()
        });
        let p = engine.profile().expect("profiler installed");
        let stats = engine.stats();
        let report = engine.profile_report().unwrap();

        prop_assert_eq!(report.compute_cycles, stats.compute_cycles);
        prop_assert_eq!(report.sync_cycles, stats.sync_cycles);
        prop_assert_eq!(report.exchange_cycles, stats.exchange_cycles);
        prop_assert_eq!(report.control_cycles, stats.control_cycles);
        prop_assert_eq!(report.supersteps, stats.supersteps);
        prop_assert_eq!(report.exchanges, stats.exchanges);
        prop_assert_eq!(report.exchange_bytes, stats.exchange_bytes);
        prop_assert_eq!(report.events_dropped, 0);

        // Event-level reconciliation: nothing was dropped, so the
        // timeline itself must re-derive the aggregate totals.
        let mut compute = 0u64;
        let mut exchange_bytes = 0u64;
        for e in &p.events {
            match e {
                ProfileEvent::Superstep(s) => {
                    compute += s.cycles;
                    // Duration = slowest sampled tile (full sampling here).
                    let max_tile = s.tiles.iter().map(|t| t.cycles).max().unwrap_or(0);
                    prop_assert_eq!(s.cycles, max_tile + s.straggler_extra);
                    // Sync wait: every sampled tile idles for the gap to
                    // the superstep duration.
                    for t in &s.tiles {
                        prop_assert_eq!(t.sync_wait, s.cycles - t.cycles);
                    }
                }
                ProfileEvent::Exchange(x) => exchange_bytes += x.bytes,
                _ => {}
            }
        }
        prop_assert_eq!(compute, stats.compute_cycles);
        prop_assert_eq!(exchange_bytes, stats.exchange_bytes);

        // Aggregate cross-sums.
        let heat: u64 = report.exchange_heatmap.iter().map(|c| c.bytes).sum();
        prop_assert_eq!(heat, report.exchange_bytes);
        let occ: u64 = report.occupancy_histogram.iter().sum();
        prop_assert_eq!(occ, report.tile_supersteps);
    }

    /// The full profile — raw event ring, summary report, and rendered
    /// Chrome trace — is bit-identical at 1 and 8 host threads.
    #[test]
    fn ipu_profile_bit_identical_across_host_threads(
        n in 4usize..11,
        tiles in 2usize..6,
        seed in 0u64..1000,
    ) {
        let m = instance(n, 40, seed);
        let base = profiled_engine(&m, tiles, 1, ProfileConfig::default());
        let par = profiled_engine(&m, tiles, 8, ProfileConfig::default());
        prop_assert_eq!(base.profile(), par.profile());
        prop_assert_eq!(base.profile_report(), par.profile_report());
        prop_assert_eq!(
            base.chrome_trace(1, "ipu").unwrap().to_json(),
            par.chrome_trace(1, "ipu").unwrap().to_json()
        );
    }

    /// Sampling and the ring bound change which *events* are retained,
    /// never the aggregates: the report totals of a sampled, tightly
    /// bounded profiler match the full one's exactly.
    #[test]
    fn ipu_sampling_never_biases_aggregates(
        n in 4usize..11,
        tiles in 2usize..6,
        stride in 2usize..5,
        seed in 0u64..1000,
    ) {
        let m = instance(n, 30, seed);
        let full = profiled_engine(&m, tiles, 1, ProfileConfig::default());
        let sampled = profiled_engine(&m, tiles, 1, ProfileConfig {
            tile_sample: stride,
            max_events: 64,
            ..Default::default()
        });
        let f = full.profile_report().unwrap();
        let s = sampled.profile_report().unwrap();
        prop_assert_eq!(s.compute_cycles, f.compute_cycles);
        prop_assert_eq!(s.sync_cycles, f.sync_cycles);
        prop_assert_eq!(s.exchange_cycles, f.exchange_cycles);
        prop_assert_eq!(s.exchange_bytes, f.exchange_bytes);
        prop_assert_eq!(s.tile_supersteps, f.tile_supersteps);
        prop_assert_eq!(&s.exchange_heatmap, &f.exchange_heatmap);
        prop_assert_eq!(&s.occupancy_histogram, &f.occupancy_histogram);
        prop_assert_eq!(&s.stragglers, &f.stragglers);
        // The bound was actually exercised on these instances.
        prop_assert!(s.events_recorded <= 64);
    }

    /// GPU side: the per-launch timeline and per-kernel rows reconcile
    /// exactly (bitwise for the modeled seconds) with `GpuStats`.
    #[test]
    fn gpu_profile_reconciles_with_stats(
        exp in 2u32..4,
        span in 5u64..50,
        seed in 0u64..1000,
    ) {
        let n = 1usize << exp;
        let m = instance(n, span, seed);
        let (rep, gpu) = FastHa::new()
            .with_profiling(GpuProfileConfig::default())
            .solve_with_device(&m)
            .expect("solve failed");
        let p = gpu.profile_report().unwrap();
        let stats = gpu.stats();
        prop_assert_eq!(p.launches, stats.launches);
        prop_assert_eq!(p.host_syncs, stats.host_syncs);
        prop_assert_eq!(p.warp_cycles, stats.warp_cycles);
        prop_assert_eq!(p.kernel_seconds.to_bits(), stats.kernel_seconds.to_bits());
        prop_assert_eq!(p.host_sync_seconds.to_bits(), stats.host_sync_seconds.to_bits());
        let launches: u64 = p.per_kernel.iter().map(|k| k.launches).sum();
        let cycles: u64 = p.per_kernel.iter().map(|k| k.warp_cycles).sum();
        prop_assert_eq!(launches, stats.launches);
        prop_assert_eq!(cycles, stats.warp_cycles);
        prop_assert_eq!(
            rep.stats.profile_events,
            p.events_recorded as u64 + p.events_dropped
        );
    }

    /// Profiling must be pure observation: enabling it changes neither
    /// the assignment nor one cycle of the modeled accounting.
    #[test]
    fn profiling_is_observation_only(
        n in 4usize..11,
        tiles in 2usize..6,
        seed in 0u64..1000,
    ) {
        let m = instance(n, 25, seed);
        let cfg = IpuConfig {
            host_threads: 1,
            ..IpuConfig::tiny(tiles)
        };
        let (plain, plain_engine) =
            HunIpu::with_config(cfg.clone()).solve_with_engine(&m).unwrap();
        let (prof, prof_engine) = HunIpu::with_config(cfg)
            .with_profiling(ProfileConfig::default())
            .solve_with_engine(&m)
            .unwrap();
        prop_assert_eq!(plain.objective.to_bits(), prof.objective.to_bits());
        prop_assert_eq!(
            plain.assignment.pairs().collect::<Vec<_>>(),
            prof.assignment.pairs().collect::<Vec<_>>()
        );
        prop_assert_eq!(plain_engine.stats(), prof_engine.stats());
        prop_assert_eq!(plain.stats.profile_events, 0);
        prop_assert!(prof.stats.profile_events > 0);
    }
}
