//! Differential tests for the tile-parallel host engine: at every host
//! thread count, buffers, cycle statistics, and fault behaviour must be
//! **bit-identical** to sequential execution. The parallel engine is a
//! wall-clock optimization only — if any of these tests can tell thread
//! counts apart, the determinism contract is broken.

use hunipu::{BatchHunIpu, HunIpu};
use ipu_sim::{
    Access, ComputeSetId, CycleStats, DType, FaultPlan, Graph, IpuConfig, Program, Tensor,
};
use lsap::{BatchLsapSolver, CostMatrix};
use proptest::prelude::*;

/// Large enough that hunipu's per-tile compute sets (~n vertices on the
/// full Mk2 layout) cross the engine's parallel-dispatch threshold, so
/// multi-threaded runs really exercise the worker pool.
const POOLED_N: usize = 160;

fn solve_fingerprint(threads: usize) -> (u64, Vec<(usize, usize)>, CycleStats) {
    let m = datasets::gaussian_cost_matrix(POOLED_N, 100, 5);
    let (rep, engine) = HunIpu::with_config(IpuConfig {
        host_threads: threads,
        ..IpuConfig::mk2()
    })
    .solve_with_engine(&m)
    .unwrap();
    (
        rep.objective.to_bits(),
        rep.assignment.pairs().collect(),
        engine.stats().clone(),
    )
}

#[test]
fn hunipu_solves_are_bit_identical_across_host_threads() {
    let sequential = solve_fingerprint(1);
    for threads in [2, 8] {
        assert_eq!(
            sequential,
            solve_fingerprint(threads),
            "{threads}-thread solve diverged from sequential"
        );
    }
}

#[test]
fn faulty_solves_are_bit_identical_across_host_threads() {
    // Faults draw from a seeded stream as supersteps execute; the stream
    // must advance identically no matter how many host threads ran each
    // superstep. The outcome (success, wrong result, or divergence) and
    // every fault counter must match bit-for-bit.
    let m = datasets::gaussian_cost_matrix(POOLED_N, 100, 7);
    let run = |threads: usize| {
        let plan = FaultPlan::new(42)
            .with_bit_flips(0.01)
            .with_exchange_corruption(0.005)
            .with_stragglers(0.02, 3.0)
            .after_supersteps(50);
        let solver = HunIpu::with_config(IpuConfig {
            host_threads: threads,
            max_while_iterations: 50_000,
            ..IpuConfig::mk2()
        })
        .with_fault_plan(plan);
        match solver.solve_with_engine(&m) {
            Ok((rep, engine)) => format!(
                "ok obj={:016x} cycles={} stats={:?}",
                rep.objective.to_bits(),
                engine.stats().total_cycles(),
                engine.stats().faults
            ),
            Err(e) => format!("err {e}"),
        }
    };
    let sequential = run(1);
    for threads in [4, 8] {
        assert_eq!(
            sequential,
            run(threads),
            "{threads}-thread faulty solve diverged from sequential"
        );
    }
}

fn pooled_batch(count: usize, seed: u64) -> Vec<CostMatrix> {
    (0..count)
        .map(|i| datasets::gaussian_cost_matrix(POOLED_N, 100, seed + i as u64))
        .collect()
}

/// One line per instance capturing everything an instance solve can
/// produce: objective bits, assignment, duals, and modeled statistics.
fn report_fingerprint(r: &lsap::SolveReport) -> String {
    format!(
        "obj={:016x} pairs={:?} u0={:016x} cycles={:?} aug={} dual={} steps={}",
        r.objective.to_bits(),
        r.assignment.pairs().collect::<Vec<_>>(),
        r.certificate.u[0].to_bits(),
        r.stats.modeled_cycles,
        r.stats.augmentations,
        r.stats.dual_updates,
        r.stats.device_steps,
    )
}

#[test]
fn batch_solves_match_independent_singles_across_host_threads() {
    let batch = pooled_batch(3, 21);
    let run = |threads: usize| {
        let solver = HunIpu::with_config(IpuConfig {
            host_threads: threads,
            ..IpuConfig::mk2()
        });
        let rep = BatchHunIpu::with_solver(solver)
            .solve_batch(&batch)
            .unwrap();
        rep.verify_all(&batch, hunipu::F32_VERIFY_EPS).unwrap();
        assert_eq!(rep.stats.retries, 0, "fault-free batch must not retry");
        rep.reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>()
    };

    let sequential = run(1);
    // The batch must equal B independent single-instance solves …
    for (m, fp) in batch.iter().zip(&sequential) {
        let (rep, _) = HunIpu::new().solve_with_engine(m).unwrap();
        assert_eq!(&report_fingerprint(&rep), fp, "batch diverged from solo");
    }
    // … and be bit-identical at every host thread count.
    for threads in [2, 8] {
        assert_eq!(
            sequential,
            run(threads),
            "{threads}-thread batch diverged from sequential"
        );
    }
}

#[test]
fn faulty_batch_matches_sequential_retry_loop_across_host_threads() {
    // Mild fault plan: instances mostly succeed, some only after the
    // verify-and-retry loop re-runs them under a decorrelated seed. The
    // batch engine and the equivalent solo loop share the same
    // fault-epoch counter, so outcome, retry count, and every statistic
    // must match bit-for-bit — at any host thread count.
    let batch = pooled_batch(3, 23);
    let plan = || {
        FaultPlan::new(77)
            .with_bit_flips(0.003)
            .after_supersteps(100)
    };
    let config = |threads: usize| IpuConfig {
        host_threads: threads,
        max_while_iterations: 50_000,
        ..IpuConfig::mk2()
    };

    let run_batched = |threads: usize| {
        let solver = HunIpu::with_config(config(threads)).with_fault_plan(plan());
        match BatchHunIpu::with_solver(solver).solve_batch(&batch) {
            Ok(rep) => {
                let fps: Vec<String> = rep.reports.iter().map(report_fingerprint).collect();
                format!("ok retries={} {}", rep.stats.retries, fps.join(" | "))
            }
            Err(e) => format!("err {e}"),
        }
    };
    // The solo equivalent: one solver instance (so the fault-epoch
    // counter advances across instances exactly like the batch), each
    // instance wrapped in the same shared verify-and-retry loop.
    let run_solo = |threads: usize| {
        let solver = HunIpu::with_config(config(threads)).with_fault_plan(plan());
        let mut retries = 0;
        let mut fps = Vec::new();
        for m in &batch {
            let attempt = |_k| solver.solve_with_engine(m).map(|(rep, _)| rep);
            match lsap::solve_instance_verified(m, hunipu::F32_VERIFY_EPS, 3, attempt) {
                Ok((rep, r)) => {
                    retries += r;
                    fps.push(report_fingerprint(&rep));
                }
                Err(e) => return format!("err {e}"),
            }
        }
        format!("ok retries={retries} {}", fps.join(" | "))
    };

    let sequential = run_batched(1);
    assert_eq!(
        sequential,
        run_solo(1),
        "faulty batch diverged from the sequential retry loop"
    );
    for threads in [4, 8] {
        assert_eq!(
            sequential,
            run_batched(threads),
            "{threads}-thread faulty batch diverged from sequential"
        );
    }
    assert_eq!(sequential, run_solo(8), "solo loop thread-sensitive");
}

/// A graph exercising every program node the engine executes: a
/// data-dependent `While` loop around a wide compute set (150 vertices,
/// pooled) and a single-vertex compute set (more lanes than vertices),
/// then an `Exchange` and an `If`.
fn control_flow_graph() -> (Graph, Tensor, Tensor, Tensor, ComputeSetId, ComputeSetId) {
    let tiles = 5;
    let per = 30;
    let n = tiles * per;
    let mut g = Graph::new(IpuConfig::tiny(tiles));
    let x = g.add_tensor("x", DType::F32, n);
    for t in 0..tiles {
        g.map_slice(x.slice(t * per..(t + 1) * per), t).unwrap();
    }
    let flag = g.add_tensor("flag", DType::I32, 1);
    g.map_to_tile(flag, 0).unwrap();
    let mirror = g.add_tensor("mirror", DType::F32, per);
    g.map_to_tile(mirror, 1).unwrap();

    let inc = g.add_compute_set("inc");
    for i in 0..n {
        let v = g
            .add_vertex(inc, i / per, "inc", move |ctx| {
                let mut x = ctx.f32_mut(0);
                x[0] = x[0] * 1.25 + (i % 5) as f32;
                3 + (i % 13) as u64
            })
            .unwrap();
        g.connect(v, x.element(i), Access::ReadWrite).unwrap();
    }
    let dec = g.add_compute_set("dec");
    let v = g
        .add_vertex(dec, 0, "dec", |ctx| {
            ctx.i32_mut(0)[0] -= 1;
            2
        })
        .unwrap();
    g.connect(v, flag.slice(0..1), Access::ReadWrite).unwrap();
    (g, x, flag, mirror, inc, dec)
}

fn control_flow_program(
    x: Tensor,
    flag: Tensor,
    mirror: Tensor,
    inc: ComputeSetId,
    dec: ComputeSetId,
) -> Program {
    let per = mirror.len();
    Program::seq(vec![
        Program::while_true(
            flag,
            Program::seq(vec![Program::execute(inc), Program::execute(dec)]),
        ),
        Program::exchange(vec![(x.slice(0..per), mirror.slice(0..per))]),
        // flag is 0 here: the else branch runs one more increment.
        Program::if_else(flag, Program::execute(dec), Program::execute(inc)),
    ])
}

#[test]
fn control_flow_engine_is_bit_identical_across_host_threads() {
    let run = |threads: usize| {
        let (g, x, flag, mirror, inc, dec) = control_flow_graph();
        let mut e = g
            .compile(control_flow_program(x, flag, mirror, inc, dec))
            .unwrap();
        e.set_host_threads(threads);
        e.set_parallel_threshold(1);
        e.write_f32(x, &vec![0.5; x.len()]).unwrap();
        e.write_i32(flag, &[6]).unwrap();
        e.run().unwrap();
        let xs: Vec<u32> = e.read_f32(x).iter().map(|v| v.to_bits()).collect();
        let ms: Vec<u32> = e
            .peek_f32(mirror.slice(0..mirror.len()))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (xs, ms, e.read_i32(flag), e.stats().clone())
    };
    let sequential = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(
            sequential,
            run(threads),
            "{threads}-thread control-flow run diverged"
        );
    }
}

#[test]
fn snapshot_restore_is_bit_identical_under_parallel_execution() {
    let run = |threads: usize| {
        let (g, x, flag, mirror, inc, dec) = control_flow_graph();
        let mut e = g
            .compile(control_flow_program(x, flag, mirror, inc, dec))
            .unwrap();
        e.set_host_threads(threads);
        e.set_parallel_threshold(1);
        e.write_f32(x, &vec![0.5; x.len()]).unwrap();
        e.write_i32(flag, &[4]).unwrap();
        let clean = e.snapshot();
        e.run().unwrap();
        let first: Vec<u32> = e.read_f32(x).iter().map(|v| v.to_bits()).collect();
        // The raw shard views must be rebuilt on restore: the second run
        // must reproduce the first from the same starting state.
        e.restore(&clean);
        e.run().unwrap();
        let second: Vec<u32> = e.read_f32(x).iter().map(|v| v.to_bits()).collect();
        assert_eq!(first, second, "restore+rerun diverged at {threads} threads");
        (first, e.stats().clone())
    };
    let sequential = run(1);
    assert_eq!(sequential, run(4), "parallel snapshot/restore diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes, loads, and data: 3-thread execution must match
    /// sequential bit-for-bit on arbitrary graphs.
    #[test]
    fn random_graphs_are_bit_identical_across_host_threads(
        tiles in 2usize..6,
        per in 1usize..24,
        seedling in 0u32..1000,
        repeats in 1u64..4,
    ) {
        let run = |threads: usize| {
            let n = tiles * per;
            let mut g = Graph::new(IpuConfig::tiny(tiles));
            let x = g.add_tensor("x", DType::F32, n);
            for t in 0..tiles {
                g.map_slice(x.slice(t * per..(t + 1) * per), t).unwrap();
            }
            let cs = g.add_compute_set("mix");
            for i in 0..n {
                let v = g
                    .add_vertex(cs, i / per, "mix", move |ctx| {
                        let mut x = ctx.f32_mut(0);
                        x[0] = (x[0] + (i as f32)).sin() * 100.0 + seedling as f32;
                        1 + ((i as u64 * 2654435761) % 29)
                    })
                    .unwrap();
                g.connect(v, x.element(i), Access::ReadWrite).unwrap();
            }
            let mut e = g
                .compile(Program::repeat(repeats, Program::execute(cs)))
                .unwrap();
            e.set_host_threads(threads);
            e.set_parallel_threshold(1);
            let init: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 3.0).collect();
            e.write_f32(x, &init).unwrap();
            e.run().unwrap();
            let bits: Vec<u32> = e.read_f32(x).iter().map(|v| v.to_bits()).collect();
            (bits, e.stats().clone())
        };
        prop_assert_eq!(run(1), run(3));
    }
}
