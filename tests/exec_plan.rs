//! Differential tests for the lowered execution plan: at every host
//! thread count, the plan path must be **bit-identical** to the
//! tree-walking interpreter — buffers, `CycleStats`, `FaultStats`, and
//! recorded profiles. The plan is a wall-clock optimization only; if any
//! of these tests can tell the two paths (or thread counts) apart, the
//! determinism contract is broken.
//!
//! Companion of `host_parallel.rs`, which pins sequential-vs-parallel
//! identity; this suite pins interpreted-vs-plan identity across the
//! same scenarios: plain solves, faulty solves, snapshot/restore, batch
//! runs, and raw control-flow graphs.

use hunipu::{BatchHunIpu, HunIpu};
use ipu_sim::{
    Access, ComputeSetId, DType, ExecMode, FaultPlan, Graph, IpuConfig, ProfileConfig, Program,
    Tensor,
};
use lsap::{BatchLsapSolver, CostMatrix};

/// Big enough for a non-trivial solve, small enough to keep the suite
/// fast. The pool threshold is forced to 1 in the threaded cases so
/// multi-thread runs really exercise the pooled plan path despite the
/// small instance.
const N: usize = 96;

fn mk2(mode: ExecMode, threads: usize) -> IpuConfig {
    IpuConfig {
        host_threads: threads,
        exec_mode: mode,
        parallel_threshold: if threads > 1 { 1 } else { 0 },
        ..IpuConfig::mk2()
    }
}

/// Everything a solve can produce, stringified for exact comparison:
/// objective bits, assignment, dual bits, and the full cycle statistics
/// (which include per-compute-set breakdowns and fault counters).
fn solve_fingerprint(mode: ExecMode, threads: usize, seed: u64) -> String {
    let m = datasets::gaussian_cost_matrix(N, 100, seed);
    let (rep, engine) = HunIpu::with_config(mk2(mode, threads))
        .solve_with_engine(&m)
        .unwrap();
    let duals: Vec<u64> = rep
        .certificate
        .u
        .iter()
        .chain(rep.certificate.v.iter())
        .map(|x| x.to_bits())
        .collect();
    format!(
        "obj={:016x} pairs={:?} duals={duals:?} stats={:?}",
        rep.objective.to_bits(),
        rep.assignment.pairs().collect::<Vec<_>>(),
        engine.stats()
    )
}

#[test]
fn solves_are_bit_identical_interpreted_vs_plan_at_every_thread_count() {
    let reference = solve_fingerprint(ExecMode::Interpreted, 1, 11);
    for threads in [1, 2, 8] {
        for mode in [ExecMode::Interpreted, ExecMode::Plan] {
            assert_eq!(
                reference,
                solve_fingerprint(mode, threads, 11),
                "{mode:?} at {threads} thread(s) diverged from the sequential interpreter"
            );
        }
    }
}

#[test]
fn profiles_are_bit_identical_interpreted_vs_plan() {
    let profile = |mode: ExecMode, threads: usize| {
        let m = datasets::gaussian_cost_matrix(N, 100, 13);
        let (_, engine) = HunIpu::with_config(mk2(mode, threads))
            .with_profiling(ProfileConfig::default())
            .solve_with_engine(&m)
            .unwrap();
        engine.profile().cloned().expect("profiler installed")
    };
    let reference = profile(ExecMode::Interpreted, 1);
    for threads in [1, 8] {
        for mode in [ExecMode::Interpreted, ExecMode::Plan] {
            assert_eq!(
                reference,
                profile(mode, threads),
                "{mode:?} profile at {threads} thread(s) diverged"
            );
        }
    }
}

#[test]
fn faulty_solves_are_bit_identical_interpreted_vs_plan() {
    // Faults draw from a seeded stream as supersteps execute; the plan
    // path must advance the stream exactly like the interpreter —
    // including the outcome (success, wrong result, or divergence) and
    // every `FaultStats` counter.
    let run = |mode: ExecMode, threads: usize| {
        let m = datasets::gaussian_cost_matrix(N, 100, 7);
        let plan = FaultPlan::new(42)
            .with_bit_flips(0.01)
            .with_exchange_corruption(0.005)
            .with_stragglers(0.02, 3.0)
            .after_supersteps(50);
        let solver = HunIpu::with_config(IpuConfig {
            max_while_iterations: 50_000,
            ..mk2(mode, threads)
        })
        .with_fault_plan(plan);
        match solver.solve_with_engine(&m) {
            Ok((rep, engine)) => format!(
                "ok obj={:016x} cycles={} faults={:?}",
                rep.objective.to_bits(),
                engine.stats().total_cycles(),
                engine.stats().faults
            ),
            Err(e) => format!("err {e}"),
        }
    };
    let reference = run(ExecMode::Interpreted, 1);
    for threads in [1, 2, 8] {
        for mode in [ExecMode::Interpreted, ExecMode::Plan] {
            assert_eq!(
                reference,
                run(mode, threads),
                "faulty {mode:?} at {threads} thread(s) diverged"
            );
        }
    }
}

#[test]
fn warm_snapshot_restore_is_bit_identical_interpreted_vs_plan() {
    // Warm engines restore a pristine snapshot before every solve, which
    // is exactly the path that must rebind the plan's pre-resolved field
    // pointers. Stream two different instances through one warm engine
    // per mode: both solves must match the interpreter's bit-for-bit.
    let run = |mode: ExecMode| {
        let solver = HunIpu::with_config(mk2(mode, 1));
        let mut warm = solver.warm(N).unwrap();
        let mut out = Vec::new();
        for seed in [3u64, 4] {
            let m = datasets::gaussian_cost_matrix(N, 100, seed);
            let rep = warm.solve(&solver, &m).unwrap();
            out.push(format!(
                "obj={:016x} cycles={:?} steps={}",
                rep.objective.to_bits(),
                rep.stats.modeled_cycles,
                rep.stats.device_steps
            ));
        }
        out
    };
    assert_eq!(
        run(ExecMode::Interpreted),
        run(ExecMode::Plan),
        "warm restore+solve diverged between interpreter and plan"
    );
}

#[test]
fn batch_runs_are_bit_identical_interpreted_vs_plan() {
    let batch: Vec<CostMatrix> = (0..3)
        .map(|i| datasets::gaussian_cost_matrix(N, 100, 21 + i))
        .collect();
    let run = |mode: ExecMode, threads: usize| {
        let solver = HunIpu::with_config(mk2(mode, threads));
        let rep = BatchHunIpu::with_solver(solver)
            .solve_batch(&batch)
            .unwrap();
        rep.verify_all(&batch, hunipu::F32_VERIFY_EPS).unwrap();
        rep.reports
            .iter()
            .map(|r| {
                format!(
                    "obj={:016x} pairs={:?} cycles={:?} steps={}",
                    r.objective.to_bits(),
                    r.assignment.pairs().collect::<Vec<_>>(),
                    r.stats.modeled_cycles,
                    r.stats.device_steps
                )
            })
            .collect::<Vec<_>>()
    };
    let reference = run(ExecMode::Interpreted, 1);
    for threads in [1, 8] {
        for mode in [ExecMode::Interpreted, ExecMode::Plan] {
            assert_eq!(
                reference,
                run(mode, threads),
                "batch {mode:?} at {threads} thread(s) diverged"
            );
        }
    }
}

/// A raw graph exercising every program node the plan lowers: a
/// data-dependent `While` around a wide compute set, a counted `Repeat`,
/// an `Exchange`, and an `If` — compared at the buffer-bits level.
fn control_flow_graph() -> (Graph, Tensor, Tensor, Tensor, ComputeSetId, ComputeSetId) {
    let tiles = 5;
    let per = 30;
    let n = tiles * per;
    let mut g = Graph::new(IpuConfig::tiny(tiles));
    let x = g.add_tensor("x", DType::F32, n);
    for t in 0..tiles {
        g.map_slice(x.slice(t * per..(t + 1) * per), t).unwrap();
    }
    let flag = g.add_tensor("flag", DType::I32, 1);
    g.map_to_tile(flag, 0).unwrap();
    let mirror = g.add_tensor("mirror", DType::F32, per);
    g.map_to_tile(mirror, 1).unwrap();

    let inc = g.add_compute_set("inc");
    for i in 0..n {
        let v = g
            .add_vertex(inc, i / per, "inc", move |ctx| {
                let mut x = ctx.f32_mut(0);
                x[0] = x[0] * 1.25 + (i % 5) as f32;
                3 + (i % 13) as u64
            })
            .unwrap();
        g.connect(v, x.element(i), Access::ReadWrite).unwrap();
    }
    let dec = g.add_compute_set("dec");
    let v = g
        .add_vertex(dec, 0, "dec", |ctx| {
            ctx.i32_mut(0)[0] -= 1;
            2
        })
        .unwrap();
    g.connect(v, flag.slice(0..1), Access::ReadWrite).unwrap();
    (g, x, flag, mirror, inc, dec)
}

#[test]
fn control_flow_buffers_are_bit_identical_interpreted_vs_plan() {
    let run = |mode: ExecMode, threads: usize| {
        let (g, x, flag, mirror, inc, dec) = control_flow_graph();
        let per = mirror.len();
        let program = Program::seq(vec![
            Program::while_true(
                flag,
                Program::seq(vec![Program::execute(inc), Program::execute(dec)]),
            ),
            Program::repeat(3, Program::execute(inc)),
            Program::exchange(vec![(x.slice(0..per), mirror.slice(0..per))]),
            // flag is 0 here: the else branch runs one more increment.
            Program::if_else(flag, Program::execute(dec), Program::execute(inc)),
        ]);
        let mut e = g.compile(program).unwrap();
        e.set_exec_mode(mode);
        e.set_host_threads(threads);
        e.set_parallel_threshold(1);
        e.write_f32(x, &vec![0.5; x.len()]).unwrap();
        e.write_i32(flag, &[6]).unwrap();
        e.run().unwrap();
        let xs: Vec<u32> = e.read_f32(x).iter().map(|v| v.to_bits()).collect();
        let ms: Vec<u32> = e
            .peek_f32(mirror.slice(0..mirror.len()))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (xs, ms, e.read_i32(flag), e.stats().clone())
    };
    let reference = run(ExecMode::Interpreted, 1);
    for threads in [1, 2, 8] {
        for mode in [ExecMode::Interpreted, ExecMode::Plan] {
            assert_eq!(
                reference,
                run(mode, threads),
                "control-flow {mode:?} at {threads} thread(s) diverged"
            );
        }
    }
}
