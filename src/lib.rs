//! Facade crate for the HunIPU reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the examples and the
//! cross-crate integration tests have a single dependency, and so users
//! can depend on the whole system with one line.
//!
//! The interesting entry points:
//!
//! - [`hunipu::HunIpu`] — the paper's algorithm on the IPU simulator,
//! - [`fastha::FastHa`] — the GPU baseline on the SIMT simulator,
//! - [`cpu_hungarian`] — the sequential baselines and ground truth,
//! - [`serve::AssignmentService`] — the overload-safe serving layer,
//! - [`align`] — the GRAMPA graph-alignment use case,
//! - [`datasets`] — the paper's synthetic instance generators,
//! - [`ipu_sim`] / [`gpu_sim`] — the machine models themselves.
//!
//! See README.md for a tour and DESIGN.md for the architecture.

#![warn(missing_docs)]

pub use align;
pub use cpu_hungarian;
pub use datasets;
pub use fastha;
pub use gpu_sim;
pub use graphs;
pub use hunipu;
pub use ipu_sim;
pub use linalg;
pub use lsap;
pub use serve;
