//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses, with
//! deterministic per-(test, case) sampling and **no shrinking**: a failing
//! case panics with the ordinary assert message. Good enough to exercise the
//! same randomized coverage; failures reproduce exactly across runs.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then use it to build (and sample) a dependent
        /// strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            let seed = self.base.sample(rng);
            (self.f)(seed).sample(rng)
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives; the expansion of
    /// `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Things usable as the size argument of [`vec`]: a fixed length or a
    /// length range.
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy with element strategy `element` and size spec `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Subset of proptest's config: only the case count matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` function runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic RNG used by strategies.
pub mod rng {
    /// splitmix64-backed test RNG, seeded from (test path, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `path`.
        pub fn for_case(path: &str, case: u64) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::rng::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assertion inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
