//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a few times and prints the median wall time —
//! no statistics, plots, or baselines. It exists so `cargo bench` (and
//! `cargo test --benches`) compile and run offline; the workspace's real
//! performance numbers come from the cycle-accurate simulator, not from here.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier: a function name plus a displayed parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    last_nanos: u128,
}

impl Bencher {
    /// Time `f` over a handful of iterations, recording the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut samples: Vec<u128> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = f();
            samples.push(start.elapsed().as_nanos());
            drop(out);
        }
        samples.sort_unstable();
        self.last_nanos = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sample counts are fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: 3,
            last_nanos: 0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: median {:.3} ms",
            self.name,
            id,
            b.last_nanos as f64 / 1e6
        );
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        self.run(&name, f);
        self
    }

    /// End the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmark a plain closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "default".into(),
        };
        group.bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:ident),+ $(,)?) => {
        fn main() {
            $($g();)+
        }
    };
}
