//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with nothing but `proc_macro` token streams (no
//! `syn`/`quote`), which is enough because every derived type in this
//! workspace is either a named-field struct or a unit-variant enum. Anything
//! fancier (generics, tuple structs, data-carrying enum variants) panics with
//! a clear message at macro-expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Enum with unit variants only: variant identifiers.
    Enum(Vec<String>),
}

struct Field {
    name: String,
    /// `None`: field required. `Some(None)`: `#[serde(default)]` —
    /// missing field falls back to `Default::default()`. `Some(Some(path))`:
    /// `#[serde(default = "path")]` — missing field falls back to `path()`.
    default: Option<Option<String>>,
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;

    while let Some(tt) = iter.next() {
        match tt {
            // Attribute: `#` followed by a bracket group (also covers doc comments).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                match iter.peek() {
                    Some(TokenTree::Punct(bang)) if bang.as_char() == '!' => {
                        iter.next();
                    }
                    _ => {}
                }
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Possible `pub(crate)` / `pub(super)` restriction group.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" => kind = Some("struct"),
                    "enum" => kind = Some("enum"),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic types");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }

    let kind = kind.expect("vendored serde_derive: expected `struct` or `enum`");
    let name = name.expect("vendored serde_derive: missing type name");
    let body = body.unwrap_or_else(|| {
        panic!("vendored serde_derive: `{name}` has no braced body (tuple/unit types unsupported)")
    });

    let shape = if kind == "struct" {
        Shape::Struct(parse_struct_fields(body))
    } else {
        Shape::Enum(parse_enum_variants(body, &name))
    };
    Input { name, shape }
}

/// If `attr` is the payload of a `#[serde(...)]` attribute carrying
/// `default`, return the parsed default (see [`Field::default`]).
fn parse_serde_default(attr: &proc_macro::Group) -> Option<Option<String>> {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None, // doc comment or some other attribute
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut it = inner.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        Some(other) => {
            panic!("vendored serde_derive: unsupported serde attribute `{other}` (only `default`)")
        }
        None => return None,
    }
    match it.next() {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match it.next() {
            Some(TokenTree::Literal(lit)) => {
                let s = lit.to_string();
                Some(Some(s.trim_matches('"').to_string()))
            }
            other => panic!(
                "vendored serde_derive: malformed #[serde(default = ...)] (found `{other:?}`)"
            ),
        },
        Some(other) => {
            panic!("vendored serde_derive: unsupported token `{other}` in #[serde(default)]")
        }
    }
}

/// Extract fields (name + optional serde default) from a named-field
/// struct body.
fn parse_struct_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field identifier,
        // remembering any `#[serde(default)]` / `#[serde(default = "path")]`.
        let mut default = None;
        let ident = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        if g.delimiter() == Delimiter::Bracket {
                            if let Some(d) = parse_serde_default(&g) {
                                default = Some(d);
                            }
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("vendored serde_derive: unexpected token `{other}` in struct body")
                }
            }
        };
        fields.push(Field {
            name: ident,
            default,
        });
        // Consume `: Type` up to the next top-level comma. Generic arguments
        // like `Vec<(u32, u32)>` arrive as separate punct tokens, so track
        // angle-bracket depth to avoid splitting on commas inside them.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Extract variant names from a unit-variant enum body.
fn parse_enum_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute payload, e.g. `#[default]` or doc comment
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                match iter.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        iter.next();
                    }
                    Some(other) => panic!(
                        "vendored serde_derive: enum `{enum_name}` variant `{id}` is not a unit \
                         variant (found `{other}`)"
                    ),
                }
            }
            other => {
                panic!("vendored serde_derive: unexpected token `{other}` in enum `{enum_name}`")
            }
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "serde::Value::Str(match self {{ {} }}.to_string())",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    match &f.default {
                        None => format!("{n}: serde::obj_field(v, \"{n}\")?"),
                        Some(None) => format!(
                            "{n}: match serde::obj_field_opt(v, \"{n}\")? \
                             {{ Some(x) => x, None => Default::default() }}"
                        ),
                        Some(Some(path)) => format!(
                            "{n}: match serde::obj_field_opt(v, \"{n}\")? \
                             {{ Some(x) => x, None => {path}() }}"
                        ),
                    }
                })
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match serde::expect_str(v)? {{ {}, other => Err(format!(\
                 \"unknown variant `{{other}}` for {name}\")) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, String> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}
