//! Offline stand-in for `serde_json`: serializes the vendored `serde::Value`
//! tree to JSON text and parses it back with a small recursive-descent parser.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        text: s,
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

fn emit(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => emit_seq(items.iter(), '[', ']', indent, level, out, |item, out| {
            emit(item, indent, level + 1, out)
        }),
        Value::Obj(pairs) => emit_seq(
            pairs.iter(),
            '{',
            '}',
            indent,
            level,
            out,
            |(k, val), out| {
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, level + 1, out);
            },
        ),
    }
}

fn emit_seq<I, F>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        each(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    /// The input as `str`: UTF-8 was validated once at construction, so
    /// string parsing can slice by byte offset instead of re-validating
    /// the tail on every token (which made large inputs quadratic).
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // `pos` sits just past an ASCII quote, so it is a char boundary.
        let s = &self.text[self.pos..];
        // Fast path: no escapes — copy the span between the quotes.
        if let Some(end) = s.find(['"', '\\']) {
            if s.as_bytes()[end] == b'"' {
                self.pos += end + 1;
                return Ok(s[..end].to_string());
            }
        }
        let mut out = String::new();
        let mut chars = s.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((j, 'u')) => {
                        let hex = s
                            .get(j + 1..j + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error("bad \\u escape".into()))?,
                        );
                        // Consume the 4 hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    _ => return Err(Error("bad escape".into())),
                },
                c => out.push(c),
            }
        }
        Err(Error("unterminated string".into()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_nested() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u32, u32)> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let s = super::to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let x: f64 = super::from_str(&s).unwrap();
        assert_eq!(x, 3.0);
    }

    #[test]
    fn string_escapes() {
        let s = super::to_string(&"a\"b\\c\nd".to_string()).unwrap();
        let back: String = super::from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn escape_midway_through_a_long_string() {
        // The unescaped fast path must hand off correctly when the first
        // special byte is a backslash, keeping the prefix.
        let original = format!("{}\"tail", "x".repeat(1000));
        let s = super::to_string(&original).unwrap();
        let back: String = super::from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn many_strings_parse_in_linear_time() {
        // Regression: `string()` used to re-validate the whole remaining
        // input as UTF-8 per token, making big documents quadratic. A
        // 100k-string array must parse essentially instantly.
        let doc = format!(
            "[{}]",
            (0..100_000)
                .map(|i| format!("\"item-{i}\""))
                .collect::<Vec<_>>()
                .join(",")
        );
        let start = std::time::Instant::now();
        let back: Vec<String> = super::from_str(&doc).unwrap();
        assert_eq!(back.len(), 100_000);
        assert_eq!(back[99_999], "item-99999");
        // Generous bound: quadratic behaviour took minutes here.
        assert!(start.elapsed().as_secs() < 30, "parser is superlinear");
    }
}
