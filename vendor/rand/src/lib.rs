//! Offline stand-in for `rand`.
//!
//! Covers exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and float
//! ranges. Sampling is deterministic splitmix64; integer range sampling uses
//! modulo reduction (the tiny bias is irrelevant for test-data generation).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce uniform samples.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample; panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// splitmix64 step — solid statistical quality for one u64 of state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from one raw word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let frac = unit_f64(rng.next_u64()) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let frac = unit_f64(rng.next_u64()) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng` (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = super::rngs::StdRng::seed_from_u64(7);
        let mut b = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..17);
            assert_eq!(x, b.gen_range(0usize..17));
            assert!(x < 17);
            let f = a.gen_range(1.0f64..=2.0);
            assert_eq!(f, b.gen_range(1.0f64..=2.0));
            assert!((1.0..=2.0).contains(&f));
        }
    }
}
