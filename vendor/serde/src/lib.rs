//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this stub routes all
//! (de)serialization through an owned [`Value`] tree — more than fast enough
//! for the experiment records and config files this workspace persists.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree; the interchange format between `Serialize`,
/// `Deserialize`, and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (kept separate to preserve u64 > i64::MAX).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`]; errors are human-readable strings.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

/// Look up a named field on an object value and deserialize it.
/// Used by the derive-generated code; not part of real serde's API.
pub fn obj_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, String> {
    match v {
        Value::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
            Some((_, field)) => T::from_value(field).map_err(|e| format!("field `{name}`: {e}")),
            None => Err(format!("missing field `{name}`")),
        },
        other => Err(format!("expected object, got {other:?}")),
    }
}

/// Like [`obj_field`], but a missing field is `Ok(None)` instead of an
/// error. Used by the derive-generated code for `#[serde(default)]`
/// fields; not part of real serde's API.
pub fn obj_field_opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, String> {
    match v {
        Value::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
            Some((_, field)) => T::from_value(field)
                .map(Some)
                .map_err(|e| format!("field `{name}`: {e}")),
            None => Ok(None),
        },
        other => Err(format!("expected object, got {other:?}")),
    }
}

/// Expect a string value (used for unit-enum deserialization).
pub fn expect_str(v: &Value) -> Result<&str, String> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(format!("expected string, got {other:?}")),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n).map_err(|e| e.to_string()),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|e| e.to_string()),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|e| e.to_string()),
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|e| e.to_string())
                        .and_then(|n| <$t>::try_from(n).map_err(|e| e.to_string())),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        expect_str(v).map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(format!("expected 2-element array, got {other:?}")),
        }
    }
}
