//! Graph alignment — the paper's real-world use case (§V-C).
//!
//! Aligns the synthetic Voles contact network against a noisy copy of
//! itself (90 % of edges kept), exactly the Table III pipeline:
//! GRAMPA similarity (η = 0.2) → cost conversion → Hungarian solve,
//! once with HunIPU and once with FastHA (on the power-of-two padded
//! matrix), then compares modeled runtimes and recovered accuracy.
//!
//! ```text
//! cargo run --release --example graph_alignment
//! ```

use align::{grampa_similarity, node_correctness, pad_for_pow2_solver, DEFAULT_ETA};
use fastha::FastHa;
use graphs::{keep_edge_fraction, realworld};
use hunipu::HunIpu;
use lsap::LsapSolver;

fn main() {
    let seed = 1;
    let g = realworld::synthetic_voles(seed);
    println!(
        "Voles (synthetic equivalent): n = {}, m = {}, avg degree {:.1}",
        g.n(),
        g.m(),
        g.avg_degree()
    );

    let noisy = keep_edge_fraction(&g, 0.90, seed + 100);
    println!("noisy copy keeps {} of {} edges (90%)", noisy.m(), g.m());

    println!(
        "computing GRAMPA similarity (two {0}x{0} eigendecompositions)...",
        g.n()
    );
    let sim = grampa_similarity(&g, &noisy, DEFAULT_ETA);
    let cost = sim.similarity_to_cost();

    // HunIPU solves the n x n problem directly.
    let hun = HunIpu::new().solve(&cost).expect("hunipu");
    // FastHA needs 2^m: pad the similarity with zero rows/columns.
    let (padded_sim, orig) = pad_for_pow2_solver(&sim);
    let fast = FastHa::new()
        .solve(&padded_sim.similarity_to_cost())
        .expect("fastha");
    let fast_matching = fast.assignment.truncated(orig, orig);

    let truth: Vec<usize> = (0..g.n()).collect();
    println!("\n{:<8} {:>12} {:>12}", "engine", "modeled", "node acc.");
    println!(
        "{:<8} {:>10.1}ms {:>11.1}%",
        "HunIPU",
        hun.stats.modeled_seconds.unwrap() * 1e3,
        node_correctness(&hun.assignment, &truth) * 100.0
    );
    println!(
        "{:<8} {:>10.1}ms {:>11.1}%",
        "FastHA",
        fast.stats.modeled_seconds.unwrap() * 1e3,
        node_correctness(&fast_matching, &truth) * 100.0
    );
    println!(
        "\nHunIPU speedup over FastHA: {:.1}x (paper's Voles row: 26-33x)",
        fast.stats.modeled_seconds.unwrap() / hun.stats.modeled_seconds.unwrap()
    );
}
