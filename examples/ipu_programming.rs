//! Programming the simulated IPU directly: a guided tour of the machine
//! model HunIPU is built on (§III of the paper).
//!
//! Builds a small static graph that computes a distributed dot product
//! under the IPU's rules — explicit tile mapping, compute sets, an
//! exchange phase, BSP accounting — and then demonstrates the two
//! classes of error the hardware model rejects at compile time:
//! touching remote memory and racing within a compute set.
//!
//! ```text
//! cargo run --release --example ipu_programming
//! ```

use ipu_sim::{cost, Access, DType, Graph, GraphError, IpuConfig, Program};

fn main() {
    // A 16-tile device with Mk2 per-tile parameters.
    let config = IpuConfig::tiny(16);
    let mut g = Graph::new(config);

    // Two 1024-element vectors, spread evenly over the tiles; per-tile
    // partial results; the final scalar on tile 0.
    let n = 1024;
    let x = g.add_tensor("x", DType::F32, n);
    let y = g.add_tensor("y", DType::F32, n);
    g.map_evenly(x).unwrap();
    g.map_evenly(y).unwrap();
    let partials = g.add_tensor("partials", DType::F32, 16);
    for t in 0..16 {
        g.map_slice(partials.element(t), t).unwrap();
    }
    let gathered = g.add_tensor("gathered", DType::F32, 16);
    g.map_to_tile(gathered, 0).unwrap();
    let out = g.add_tensor("out", DType::F32, 1);
    g.map_to_tile(out, 0).unwrap();

    // Compute set 1: each tile multiplies-accumulates its local chunk.
    // A vertex may only touch regions mapped to its own tile.
    let chunk = n / 16;
    let cs_partial = g.add_compute_set("partial_dot");
    for t in 0..16 {
        let v = g
            .add_vertex(cs_partial, t, "dot", |ctx| {
                let (a, b) = (ctx.f32(0), ctx.f32(1));
                ctx.f32_mut(2)[0] = a.iter().zip(b.iter()).map(|(p, q)| p * q).sum();
                cost::f32_scan(a.len() + b.len())
            })
            .unwrap();
        let range = t * chunk..(t + 1) * chunk;
        g.connect(v, x.slice(range.clone()), Access::Read).unwrap();
        g.connect(v, y.slice(range), Access::Read).unwrap();
        g.connect(v, partials.element(t), Access::Write).unwrap();
    }

    // Compute set 2: tile 0 folds the gathered partials.
    let cs_final = g.add_compute_set("final_sum");
    let v = g
        .add_vertex(cs_final, 0, "sum", |ctx| {
            ctx.f32_mut(1)[0] = ctx.f32(0).iter().sum();
            cost::f32_scan(16)
        })
        .unwrap();
    g.connect(v, gathered.whole(), Access::Read).unwrap();
    g.connect(v, out.whole(), Access::Write).unwrap();

    // The program: compute, exchange (one phase), compute — the BSP
    // rhythm of §III-A.
    let program = Program::seq(vec![
        Program::execute(cs_partial),
        Program::exchange(
            (0..16)
                .map(|t| (partials.element(t), gathered.element(t)))
                .collect(),
        ),
        Program::execute(cs_final),
    ]);
    let mut engine = g.compile(program).unwrap();

    let xs: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let ys: Vec<f32> = (0..n).map(|i| (i % 3) as f32).collect();
    let expect: f32 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
    engine.write_f32(x, &xs).unwrap();
    engine.write_f32(y, &ys).unwrap();
    engine.run().unwrap();
    assert_eq!(engine.read_f32(out)[0], expect);

    let stats = engine.stats();
    println!("dot product of two {n}-element vectors on 16 tiles: {expect}");
    println!(
        "  supersteps: {} | compute {} cy | sync {} cy | exchange {} cy ({} B moved)",
        stats.supersteps,
        stats.compute_cycles,
        stats.sync_cycles,
        stats.exchange_cycles,
        stats.exchange_bytes
    );
    println!("  modeled time: {:.2} µs", engine.modeled_seconds() * 1e6);

    // --- What the machine model rejects -------------------------------
    // (C1/C2) A vertex cannot read memory on another tile:
    let mut bad = Graph::new(IpuConfig::tiny(4));
    let t0 = bad.add_tensor("remote", DType::F32, 8);
    bad.map_to_tile(t0, 3).unwrap();
    let cs = bad.add_compute_set("bad");
    let v = bad.add_vertex(cs, 0, "reader", |_| 1).unwrap();
    bad.connect(v, t0.whole(), Access::Read).unwrap();
    match bad.compile(Program::execute(cs)) {
        Err(GraphError::NotOnTile { detail }) => {
            println!("\nrejected as expected (no shared memory): {detail}");
        }
        other => panic!("expected a tile-locality error, got {other:?}"),
    }

    // (C1) Two vertices cannot write the same region in one compute set:
    let mut racy = Graph::new(IpuConfig::tiny(4));
    let t0 = racy.add_tensor("shared", DType::I32, 4);
    racy.map_to_tile(t0, 0).unwrap();
    let cs = racy.add_compute_set("race");
    let a = racy.add_vertex(cs, 0, "a", |_| 1).unwrap();
    let b = racy.add_vertex(cs, 0, "b", |_| 1).unwrap();
    racy.connect(a, t0.whole(), Access::Write).unwrap();
    racy.connect(b, t0.whole(), Access::Write).unwrap();
    match racy.compile(Program::execute(cs)) {
        Err(GraphError::ComputeSetRace { detail }) => {
            println!("rejected as expected (no atomics, no races): {detail}");
        }
        other => panic!("expected a race error, got {other:?}"),
    }
}
