//! Quickstart: solve a linear sum assignment problem on the simulated
//! IPU and verify the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hunipu::{HunIpu, F32_VERIFY_EPS};
use lsap::{CostMatrix, LsapSolver};

fn main() {
    // A tiny task-assignment instance: 5 workers x 5 tasks, cost =
    // hours each worker needs per task.
    let costs = CostMatrix::from_rows(&[
        &[9.0, 2.0, 7.0, 8.0, 6.0],
        &[6.0, 4.0, 3.0, 7.0, 5.0],
        &[5.0, 8.0, 1.0, 8.0, 4.0],
        &[7.0, 6.0, 9.0, 4.0, 2.0],
        &[3.0, 5.0, 8.0, 2.0, 8.0],
    ])
    .unwrap();

    // HunIpu::new() targets the paper's 1472-tile Colossus Mk2.
    let mut solver = HunIpu::new();
    let report = solver.solve(&costs).expect("solvable instance");

    println!("optimal assignment (worker -> task):");
    for (worker, task) in report.assignment.pairs() {
        println!(
            "  worker {worker} -> task {task} ({}h)",
            costs.get(worker, task)
        );
    }
    println!("total cost: {} hours", report.objective);

    // Every solve carries an LP-duality certificate: optimality is
    // checkable without trusting the solver.
    report
        .verify(&costs, F32_VERIFY_EPS)
        .expect("certificate proves optimality");
    println!("certificate: verified optimal");

    let stats = &report.stats;
    println!(
        "modeled IPU time: {:.1} µs over {} BSP supersteps \
         ({} augmentations, {} dual updates)",
        stats.modeled_seconds.unwrap() * 1e6,
        stats.device_steps,
        stats.augmentations,
        stats.dual_updates,
    );
}
