//! Resource allocation for wireless networks — one of the applications
//! motivating the paper's introduction (OFDM subcarrier loading, Yin &
//! Liu 2000): assign `n` users to `n` subcarriers so that the total
//! transmit power is minimized, given per-user per-carrier channel
//! gains.
//!
//! Compares all four engines on the same instance: ground truth (JV),
//! the classic CPU baseline, FastHA on the modeled A100, and HunIPU on
//! the modeled Mk2 — the full cast of §V.
//!
//! ```text
//! cargo run --release --example resource_allocation
//! ```

use cpu_hungarian::{JonkerVolgenant, Munkres};
use fastha::FastHa;
use hunipu::HunIpu;
use lsap::{CostMatrix, LsapSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 128; // power of two so FastHA can run unpadded
    let mut rng = StdRng::seed_from_u64(7);

    // Rayleigh-flavored channel gains; required power ~ 1 / gain^2,
    // quantized to make f32/f64 engines exactly comparable.
    let cost = CostMatrix::from_fn(n, n, |_u, _c| {
        let g: f64 = rng.gen_range(0.05..1.0);
        (1.0 / (g * g)).round().min(1e6)
    })
    .unwrap();

    println!("assigning {n} users to {n} subcarriers (minimize total power)\n");
    println!(
        "{:<22} {:>12} {:>14}",
        "engine", "total power", "modeled time"
    );

    let mut results = Vec::new();
    let jv = JonkerVolgenant::new().solve(&cost).expect("jv");
    results.push(("Jonker-Volgenant (truth)", &jv));
    let cpu = Munkres::new().solve(&cost).expect("munkres");
    results.push(("CPU Munkres (classic)", &cpu));
    let fast = FastHa::new().solve(&cost).expect("fastha");
    results.push(("FastHA @ modeled A100", &fast));
    let hun = HunIpu::new().solve(&cost).expect("hunipu");
    results.push(("HunIPU @ modeled Mk2", &hun));

    for (name, rep) in &results {
        let t = rep
            .stats
            .modeled_seconds
            .map_or("n/a".to_string(), |s| format!("{:.2} ms", s * 1e3));
        println!("{name:<22} {:>12.0} {:>14}", rep.objective, t);
        rep.verify(&cost, 1e-5).expect("optimality certificate");
    }

    assert_eq!(jv.objective, hun.objective);
    assert_eq!(jv.objective, fast.objective);
    assert_eq!(jv.objective, cpu.objective);
    println!("\nall engines agree on the optimum; every certificate verified.");
}
