//! FastHA — the state-of-the-art GPU Hungarian algorithm the paper
//! compares against (Lopes, Yadav, Ilic, Patra: "Fast block distributed
//! CUDA implementation of the Hungarian algorithm", JPDC 130, 2019),
//! reimplemented on the [`gpu_sim`] SIMT machine model.
//!
//! The implementation follows the CUDA architecture of the original:
//!
//! - the cost/slack matrix and all matching state live in **global
//!   memory** (no per-core SRAM — every step round-trips through HBM);
//! - each Munkres phase is a **kernel**; one thread owns one matrix row,
//!   so rows with different zero counts diverge inside a warp and the
//!   whole warp pays the longest scan (the weakness §I of the HunIPU
//!   paper calls out);
//! - zeros are kept in per-row compacted lists rebuilt after every dual
//!   update, as in the original's zero-handling;
//! - conflicts during starring/priming are resolved with **atomics**;
//! - **control flow runs on the host**: every loop iteration launches
//!   kernels and synchronously reads back flags over PCIe, paying launch
//!   and sync overheads that HunIPU's on-device control flow avoids.
//!
//! As in the original, only **power-of-two** matrix sizes are supported
//! (§V-C of the HunIPU paper pads similarity matrices accordingly).
//!
//! Like every solver in this workspace, FastHA maintains the dual
//! potentials and returns a verifiable [`lsap::DualCertificate`].

#![warn(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod solver;

pub use batch::BatchFastHa;
pub use solver::{FastHa, F32_VERIFY_EPS};
