//! The FastHA solver: Munkres phases as SIMT kernels with host control.

use gpu_sim::{BufId, GpuConfig, GpuProfileConfig, GpuSim};
use lsap::{
    Assignment, CostMatrix, DualCertificate, LsapError, LsapSolver, SeedSolve, SolveReport,
    SolverStats, WarmStart,
};
use std::time::Instant;

/// Relative verification tolerance: the device computes in f32.
pub const F32_VERIFY_EPS: f64 = 1e-5;

/// Sentinel for "no uncovered zero found" in the arg-min encoding.
const NOT_FOUND: i32 = i32::MAX;

/// The FastHA GPU baseline. See the crate docs for the machine mapping.
#[derive(Debug, Clone)]
pub struct FastHa {
    config: GpuConfig,
    profile: Option<GpuProfileConfig>,
}

impl Default for FastHa {
    fn default() -> Self {
        Self::new()
    }
}

impl FastHa {
    /// A solver targeting the paper's A100.
    pub fn new() -> Self {
        Self {
            config: GpuConfig::a100(),
            profile: None,
        }
    }

    /// A solver targeting a custom device.
    pub fn with_config(config: GpuConfig) -> Self {
        Self {
            config,
            ..Self::new()
        }
    }

    /// Enables the per-launch profiler on every device this solver
    /// builds. The timeline is recovered from the device returned by
    /// [`FastHa::solve_with_device`] (via `profile_report` /
    /// `chrome_trace`); [`lsap::SolverStats::profile_events`] counts the
    /// captured events either way.
    pub fn with_profiling(mut self, config: GpuProfileConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// The armed profiler configuration, if any.
    pub fn profile_config(&self) -> Option<&GpuProfileConfig> {
        self.profile.as_ref()
    }

    /// The device configuration this solver targets.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Validates the shape contract (square, power-of-two side).
    fn validate_shape(matrix: &CostMatrix) -> Result<usize, LsapError> {
        if !matrix.is_square() {
            return Err(LsapError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let n = matrix.n();
        if !n.is_power_of_two() {
            return Err(LsapError::Backend {
                detail: format!("FastHA only operates on 2^m matrix sizes, got {n} (pad first)"),
            });
        }
        Ok(n)
    }

    /// Builds, runs, and returns the report plus the device (for
    /// kernel-level inspection in benches).
    pub fn solve_with_device(
        &self,
        matrix: &CostMatrix,
    ) -> Result<(SolveReport, GpuSim), LsapError> {
        Self::validate_shape(matrix)?;
        let start = Instant::now();
        let mut run = Run::new(self.config.clone(), matrix);
        if let Some(cfg) = &self.profile {
            run.gpu.enable_profiling(cfg.clone());
        }
        run.execute();
        Self::finish(run, matrix, start, false)
    }

    /// Warm-started solve: skips the Step-1 reduction entirely, uploading
    /// the host-repaired `f32` slack/duals ([`lsap::repair_duals_f32`])
    /// and the surviving stars instead, then runs the normal cover /
    /// prime / augment loop on the residual free rows.
    pub fn solve_seeded_with_device(
        &self,
        matrix: &CostMatrix,
        warm: &WarmStart,
    ) -> Result<(SolveReport, GpuSim), LsapError> {
        Self::validate_shape(matrix)?;
        let seed = lsap::repair_duals_f32(matrix, warm)?;
        let start = Instant::now();
        let mut run = Run::new_seeded(self.config.clone(), matrix, &seed);
        if let Some(cfg) = &self.profile {
            run.gpu.enable_profiling(cfg.clone());
        }
        run.execute_seeded();
        Self::finish(run, matrix, start, true)
    }

    /// Reads back the solution, duals, and stats from a finished run.
    fn finish(
        mut run: Run,
        matrix: &CostMatrix,
        start: Instant,
        seeded: bool,
    ) -> Result<(SolveReport, GpuSim), LsapError> {
        let wall = start.elapsed().as_secs_f64();

        let row_star = run.gpu.read_i32(run.row_star);
        let assignment = Assignment::from_row_to_col(
            row_star
                .iter()
                .map(|&j| (j >= 0).then_some(j as usize))
                .collect(),
        );
        let objective = assignment.cost(matrix)?;
        let u: Vec<f64> = run.gpu.read_f32(run.u).iter().map(|&x| x as f64).collect();
        let v: Vec<f64> = run.gpu.read_f32(run.v).iter().map(|&x| x as f64).collect();

        let stats = SolverStats {
            modeled_seconds: Some(run.gpu.modeled_seconds()),
            modeled_cycles: Some(run.gpu.stats().warp_cycles),
            wall_seconds: wall,
            augmentations: run.augmentations,
            dual_updates: run.dual_updates,
            device_steps: run.gpu.stats().launches,
            profile_events: run
                .gpu
                .profile()
                .map_or(0, |p| p.events.len() as u64 + p.dropped),
            seeded,
            ..Default::default()
        };
        Ok((
            SolveReport {
                assignment,
                objective,
                certificate: DualCertificate::new(u, v),
                stats,
            },
            run.gpu,
        ))
    }
}

impl LsapSolver for FastHa {
    fn name(&self) -> &'static str {
        "fastha"
    }

    fn solve(&mut self, matrix: &CostMatrix) -> Result<SolveReport, LsapError> {
        self.solve_with_device(matrix).map(|(r, _)| r)
    }
}

impl SeedSolve for FastHa {
    fn solve_seeded(
        &mut self,
        matrix: &CostMatrix,
        warm: &WarmStart,
    ) -> Result<SolveReport, LsapError> {
        self.solve_seeded_with_device(matrix, warm).map(|(r, _)| r)
    }

    fn verify_eps(&self) -> f64 {
        F32_VERIFY_EPS
    }
}

/// One solve's device state and host-side control.
struct Run {
    gpu: GpuSim,
    n: usize,
    slack: BufId,
    /// Per-row compacted zero columns (−1 padding), like the original's
    /// zero bookkeeping.
    zeros: BufId,
    zero_count: BufId,
    row_star: BufId,
    col_star: BufId,
    row_prime: BufId,
    row_cover: BufId,
    col_cover: BufId,
    u: BufId,
    v: BufId,
    /// Arg-min encoded uncovered zero (row * n + col), or NOT_FOUND.
    found: BufId,
    /// Scaled minimum for the Step 6 reduction.
    minval: BufId,
    cover_count: BufId,
    augmentations: u64,
    dual_updates: u64,
}

impl Run {
    fn new(config: GpuConfig, matrix: &CostMatrix) -> Self {
        let n = matrix.n();
        let mut gpu = GpuSim::new(config);
        let slack = gpu.alloc_f32("slack", n * n);
        let zeros = gpu.alloc_i32("zeros", n * n);
        let zero_count = gpu.alloc_i32("zero_count", n);
        let row_star = gpu.alloc_i32("row_star", n);
        let col_star = gpu.alloc_i32("col_star", n);
        let row_prime = gpu.alloc_i32("row_prime", n);
        let row_cover = gpu.alloc_i32("row_cover", n);
        let col_cover = gpu.alloc_i32("col_cover", n);
        let u = gpu.alloc_f32("u", n);
        let v = gpu.alloc_f32("v", n);
        let found = gpu.alloc_i32("found", 1);
        let minval = gpu.alloc_f32("minval", 1);
        let cover_count = gpu.alloc_i32("cover_count", 1);

        let data: Vec<f32> = matrix.as_slice().iter().map(|&x| x as f32).collect();
        gpu.upload_f32(slack, &data);
        gpu.fill_i32(row_star, -1);
        gpu.fill_i32(col_star, -1);
        gpu.fill_i32(row_prime, -1);

        Self {
            gpu,
            n,
            slack,
            zeros,
            zero_count,
            row_star,
            col_star,
            row_prime,
            row_cover,
            col_cover,
            u,
            v,
            found,
            minval,
            cover_count,
            augmentations: 0,
            dual_updates: 0,
        }
    }

    /// Seeded construction: in place of the raw cost upload, the device
    /// receives the host-repaired slack matrix, duals, and surviving
    /// stars — the state a cold run would have reached after Steps 1–2
    /// on an instance whose optimum barely moved.
    fn new_seeded(config: GpuConfig, matrix: &CostMatrix, seed: &lsap::RepairedSeedF32) -> Self {
        let mut run = Self::new(config, matrix);
        let n = run.n;
        run.gpu.upload_f32(run.slack, &seed.slack);
        run.gpu.upload_f32(run.u, &seed.u);
        run.gpu.upload_f32(run.v, &seed.v);
        let mut row_star = vec![-1i32; n];
        let mut col_star = vec![-1i32; n];
        for (i, j) in seed.assignment.pairs() {
            row_star[i] = j as i32;
            col_star[j] = i as i32;
        }
        run.gpu.upload_i32(run.row_star, &row_star);
        run.gpu.upload_i32(run.col_star, &col_star);
        run
    }

    fn execute(&mut self) {
        self.step1_reduce();
        self.build_zeros();
        self.step2_initial_star();
        self.main_loop();
    }

    /// Seeded execution: no Step-1 reduction (the repaired slack is
    /// already reduced), and starring only fills in around the uploaded
    /// surviving stars.
    fn execute_seeded(&mut self) {
        self.build_zeros();
        self.step2_star_free_rows();
        self.main_loop();
    }

    /// The cover / prime / augment / dual-update loop shared by cold and
    /// seeded runs.
    fn main_loop(&mut self) {
        loop {
            if self.step3_covered_count() == self.n {
                return;
            }
            // Steps 4/5/6 until one augmentation succeeds.
            loop {
                match self.step4_find_uncovered_zero() {
                    Some((r, c)) => {
                        // Prime (r, c); host decides on the star.
                        let star = self.apply_prime(r, c);
                        if star < 0 {
                            self.step5_augment(r, c);
                            break;
                        }
                    }
                    None => self.step6_dual_update(),
                }
            }
        }
    }

    /// Step 1: row reduction then column reduction (one thread per
    /// row/column, as in the original's reduction kernels).
    fn step1_reduce(&mut self) {
        let (n, slack, u, v) = (self.n, self.slack, self.u, self.v);
        self.gpu.launch("rowReduce", n, 256, |t| {
            let r = t.tid();
            let mut m = f32::INFINITY;
            for j in 0..n {
                m = m.min(t.read_f32(slack, r * n + j));
            }
            for j in 0..n {
                let x = t.read_f32(slack, r * n + j);
                t.write_f32(slack, r * n + j, x - m);
            }
            t.write_f32(u, r, m);
            t.alu(2 * n as u64);
        });
        self.gpu.launch("colReduce", n, 256, |t| {
            let c = t.tid();
            let mut m = f32::INFINITY;
            for i in 0..n {
                m = m.min(t.read_f32(slack, i * n + c));
            }
            if m != 0.0 {
                for i in 0..n {
                    let x = t.read_f32(slack, i * n + c);
                    t.write_f32(slack, i * n + c, x - m);
                }
            }
            t.write_f32(v, c, m);
            t.alu(2 * n as u64);
        });
    }

    /// Rebuilds the per-row compacted zero lists (one thread per row —
    /// rows with different zero densities diverge within their warp).
    fn build_zeros(&mut self) {
        let (n, slack, zeros, zc) = (self.n, self.slack, self.zeros, self.zero_count);
        self.gpu.launch("buildZeros", n, 256, |t| {
            let r = t.tid();
            let mut k = 0usize;
            for j in 0..n {
                if t.read_f32(slack, r * n + j) == 0.0 {
                    t.write_i32(zeros, r * n + k, j as i32);
                    k += 1;
                }
            }
            t.write_i32(zc, r, k as i32);
            t.alu(n as u64);
        });
    }

    /// Step 2: greedy initial starring; rows race for columns with
    /// atomicCAS, exactly the conflict the original resolves with
    /// atomics.
    fn step2_initial_star(&mut self) {
        let (n, zeros, zc) = (self.n, self.zeros, self.zero_count);
        let (row_star, col_star) = (self.row_star, self.col_star);
        self.gpu.launch("initialStar", n, 256, |t| {
            let r = t.tid();
            let k = t.read_i32(zc, r) as usize;
            for idx in 0..k {
                let c = t.read_i32(zeros, r * n + idx);
                // Claim the column if free.
                if t.atomic_cas_i32(col_star, c as usize, -1, r as i32) == -1 {
                    t.write_i32(row_star, r, c);
                    break;
                }
            }
            t.alu(k as u64 + 1);
        });
    }

    /// Seeded variant of Step 2: rows that kept their star from the
    /// previous tick are skipped; only the freed rows race for columns.
    /// A separate kernel (rather than a branch in `initialStar`) so the
    /// cold path's kernel stream stays byte-identical.
    fn step2_star_free_rows(&mut self) {
        let (n, zeros, zc) = (self.n, self.zeros, self.zero_count);
        let (row_star, col_star) = (self.row_star, self.col_star);
        self.gpu.launch("seedStarFree", n, 256, |t| {
            let r = t.tid();
            if t.read_i32(row_star, r) >= 0 {
                return;
            }
            let k = t.read_i32(zc, r) as usize;
            for idx in 0..k {
                let c = t.read_i32(zeros, r * n + idx);
                // Claim the column if free.
                if t.atomic_cas_i32(col_star, c as usize, -1, r as i32) == -1 {
                    t.write_i32(row_star, r, c);
                    break;
                }
            }
            t.alu(k as u64 + 2);
        });
    }

    /// Step 3: cover starred columns and count them (atomicAdd), then a
    /// synchronous host read of the counter.
    fn step3_covered_count(&mut self) -> usize {
        let (n, col_star, col_cover, cc) =
            (self.n, self.col_star, self.col_cover, self.cover_count);
        self.gpu.fill_i32(cc, 0);
        self.gpu.launch("coverCols", n, 256, |t| {
            let c = t.tid();
            let covered = i32::from(t.read_i32(col_star, c) >= 0);
            t.write_i32(col_cover, c, covered);
            if covered != 0 {
                t.atomic_add_i32(cc, 0, 1);
            }
            t.alu(2);
        });
        self.gpu.host_sync_read_i32(cc, 0) as usize
    }

    /// Step 4: scan the per-row zero lists for an uncovered zero; threads
    /// race with atomicMin on the encoded position; the host reads the
    /// winner back.
    fn step4_find_uncovered_zero(&mut self) -> Option<(usize, usize)> {
        let (n, zeros, zc, slack) = (self.n, self.zeros, self.zero_count, self.slack);
        let (row_cover, col_cover, found) = (self.row_cover, self.col_cover, self.found);
        self.gpu.fill_i32(found, NOT_FOUND);
        self.gpu.launch("findZero", n, 256, |t| {
            let r = t.tid();
            if t.read_i32(row_cover, r) != 0 {
                return;
            }
            let k = t.read_i32(zc, r) as usize;
            for idx in 0..k {
                let c = t.read_i32(zeros, r * n + idx) as usize;
                // The list can be stale after dual updates within covered
                // intersections; validate before claiming.
                if t.read_i32(col_cover, c) == 0 && t.read_f32(slack, r * n + c) == 0.0 {
                    t.atomic_min_i32(found, 0, (r * n + c) as i32);
                    break;
                }
            }
            t.alu(k as u64 + 2);
        });
        let enc = self.gpu.host_sync_read_i32(found, 0);
        (enc != NOT_FOUND).then(|| ((enc as usize) / n, (enc as usize) % n))
    }

    /// Primes (r, c); if the row has a star, covers the row and uncovers
    /// the star's column. Returns the star column (−1 if none), which the
    /// host reads synchronously to steer the loop.
    fn apply_prime(&mut self, r: usize, c: usize) -> i32 {
        let (row_prime, row_star) = (self.row_prime, self.row_star);
        let (row_cover, col_cover, found) = (self.row_cover, self.col_cover, self.found);
        self.gpu.launch("applyPrime", 1, 1, |t| {
            t.write_i32(row_prime, r, c as i32);
            let star = t.read_i32(row_star, r);
            if star >= 0 {
                t.write_i32(row_cover, r, 1);
                t.write_i32(col_cover, star as usize, 0);
            }
            // Stash the star so the host's sync read steers the branch.
            t.write_i32(found, 0, star);
            t.alu(3);
        });
        self.gpu.host_sync_read_i32(found, 0)
    }

    /// Step 5: augmentation — a single-thread kernel walks the
    /// alternating prime/star path (the serial phase of the original),
    /// then a parallel kernel clears covers and primes.
    fn step5_augment(&mut self, r0: usize, c0: usize) {
        let n = self.n;
        let (row_star, col_star, row_prime) = (self.row_star, self.col_star, self.row_prime);
        self.gpu.launch("augmentPath", 1, 1, |t| {
            let mut r = r0 as i32;
            let mut c = c0 as i32;
            loop {
                let old_star_row = t.read_i32(col_star, c as usize);
                t.write_i32(row_star, r as usize, c);
                t.write_i32(col_star, c as usize, r);
                if old_star_row < 0 {
                    break;
                }
                r = old_star_row;
                c = t.read_i32(row_prime, r as usize);
                t.alu(4);
            }
        });
        let (row_cover, col_cover) = (self.row_cover, self.col_cover);
        self.gpu.launch("clearCovers", n, 256, |t| {
            let i = t.tid();
            t.write_i32(row_cover, i, 0);
            t.write_i32(col_cover, i, 0);
            t.write_i32(row_prime, i, -1);
        });
        self.augmentations += 1;
    }

    /// Step 6: minimum uncovered slack via per-row scans + an atomic min,
    /// a host read of Δ, the parallel shift (including the duals), and a
    /// zero-list rebuild.
    fn step6_dual_update(&mut self) {
        let (n, slack) = (self.n, self.slack);
        let (row_cover, col_cover, minval) = (self.row_cover, self.col_cover, self.minval);
        self.gpu.fill_f32(minval, f32::INFINITY);
        self.gpu.launch("minUncovered", n, 256, |t| {
            let r = t.tid();
            if t.read_i32(row_cover, r) != 0 {
                return;
            }
            let mut m = f32::INFINITY;
            for j in 0..n {
                if t.read_i32(col_cover, j) == 0 {
                    m = m.min(t.read_f32(slack, r * n + j));
                }
            }
            t.atomic_min_f32(minval, 0, m);
            t.alu(n as u64);
        });
        let (u, v) = (self.u, self.v);
        self.gpu.launch("dualUpdate", n, 256, |t| {
            let r = t.tid();
            let delta = t.read_f32(minval, 0);
            let rc = t.read_i32(row_cover, r) != 0;
            for j in 0..n {
                let cc = t.read_i32(col_cover, j) != 0;
                if !rc && !cc {
                    let x = t.read_f32(slack, r * n + j);
                    t.write_f32(slack, r * n + j, x - delta);
                } else if rc && cc {
                    let x = t.read_f32(slack, r * n + j);
                    t.write_f32(slack, r * n + j, x + delta);
                }
            }
            // Dual maintenance: u on this row; v on the r-th column
            // (each column handled by exactly one thread).
            if !rc {
                let x = t.read_f32(u, r);
                t.write_f32(u, r, x + delta);
            }
            if t.read_i32(col_cover, r) != 0 {
                let x = t.read_f32(v, r);
                t.write_f32(v, r, x - delta);
            }
            t.alu(2 * n as u64);
        });
        self.build_zeros();
        self.dual_updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsap::CostMatrix;

    fn solve(m: &CostMatrix) -> SolveReport {
        let rep = FastHa::new().solve(m).unwrap();
        rep.verify(m, F32_VERIFY_EPS).unwrap();
        rep
    }

    #[test]
    fn solves_small_power_of_two() {
        let m = CostMatrix::from_rows(&[
            &[4.0, 1.0, 3.0, 9.0],
            &[2.0, 0.0, 5.0, 8.0],
            &[3.0, 2.0, 2.0, 7.0],
            &[1.0, 6.0, 4.0, 2.0],
        ])
        .unwrap();
        let rep = solve(&m);
        // Reference optimum computed by hand/reference solver: 1+2+2+2=7
        // via (0,1),(1,0)... verify against brute force below instead.
        assert!((rep.objective - brute(&m)).abs() < 1e-9);
    }

    fn brute(m: &CostMatrix) -> f64 {
        fn rec(m: &CostMatrix, i: usize, used: &mut Vec<bool>) -> f64 {
            let n = m.n();
            if i == n {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    best = best.min(m.get(i, j) + rec(m, i + 1, used));
                    used[j] = false;
                }
            }
            best
        }
        rec(m, 0, &mut vec![false; m.n()])
    }

    #[test]
    fn rejects_non_power_of_two() {
        let m = CostMatrix::filled(6, 1.0).unwrap();
        assert!(matches!(
            FastHa::new().solve(&m),
            Err(LsapError::Backend { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let m = CostMatrix::from_vec(2, 4, vec![0.0; 8]).unwrap();
        assert!(matches!(
            FastHa::new().solve(&m),
            Err(LsapError::NotSquare { .. })
        ));
    }

    #[test]
    fn product_matrix_requires_dual_updates() {
        let m = CostMatrix::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64).unwrap();
        let rep = solve(&m);
        assert!((rep.objective - brute(&m)).abs() < 1e-9);
        assert!(rep.stats.dual_updates >= 1);
    }

    #[test]
    fn matches_brute_force_on_random_8x8() {
        for seed in 0..12u64 {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let m = CostMatrix::from_fn(8, 8, |_, _| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 50) as f64
            })
            .unwrap();
            let rep = solve(&m);
            assert!(
                (rep.objective - brute(&m)).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                rep.objective,
                brute(&m)
            );
        }
    }

    #[test]
    fn constant_matrix() {
        let m = CostMatrix::filled(8, 5.0).unwrap();
        assert_eq!(solve(&m).objective, 40.0);
    }

    #[test]
    fn stats_record_launches_and_syncs() {
        let m = CostMatrix::from_fn(8, 8, |i, j| ((i * 3 + j * 5) % 7) as f64).unwrap();
        let (rep, gpu) = FastHa::new().solve_with_device(&m).unwrap();
        assert!(rep.stats.modeled_seconds.unwrap() > 0.0);
        assert!(gpu.stats().launches > 3);
        assert!(gpu.stats().host_syncs > 0);
        assert!(!gpu.stats().per_kernel.is_empty());
    }

    #[test]
    fn per_kernel_breakdown_covers_all_phases() {
        // A product matrix forces dual updates, so every phase kernel
        // launches at least once and the breakdown names them all.
        let m = CostMatrix::from_fn(8, 8, |i, j| ((i + 1) * (j + 1)) as f64).unwrap();
        let (_, gpu) = FastHa::new().solve_with_device(&m).unwrap();
        let per_kernel = &gpu.stats().per_kernel;
        for name in [
            "rowReduce",
            "colReduce",
            "buildZeros",
            "initialStar",
            "coverCols",
            "findZero",
            "minUncovered",
            "dualUpdate",
            "augmentPath",
            "clearCovers",
        ] {
            let k = per_kernel
                .iter()
                .find(|k| k.name == name)
                .unwrap_or_else(|| panic!("kernel {name} missing from breakdown"));
            assert!(k.launches >= 1, "{name} never launched");
        }
        let launches: u64 = per_kernel.iter().map(|k| k.launches).sum();
        let cycles: u64 = per_kernel.iter().map(|k| k.warp_cycles).sum();
        assert_eq!(launches, gpu.stats().launches);
        assert_eq!(cycles, gpu.stats().warp_cycles);
    }

    #[test]
    fn seeded_resolve_matches_cold_and_is_cheaper() {
        let n = 16;
        let mut s = 42u64;
        let m = CostMatrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64
        })
        .unwrap();
        let mut fa = FastHa::new();
        let cold0 = fa.solve(&m).unwrap();
        cold0.verify(&m, F32_VERIFY_EPS).unwrap();
        let warm = WarmStart::from_report(&cold0);

        // Perturb two rows.
        let mut m2 = m.clone();
        for (off, row) in [3usize, 9].iter().enumerate() {
            let mut s = 1000 + off as u64;
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                m2.set(*row, j, (s % 200) as f64);
            }
        }
        let seeded = fa.solve_seeded(&m2, &warm).unwrap();
        seeded.verify(&m2, F32_VERIFY_EPS).unwrap();
        assert!(seeded.stats.seeded);
        let cold = fa.solve(&m2).unwrap();
        assert_eq!(
            seeded.objective.to_bits(),
            cold.objective.to_bits(),
            "seeded {} vs cold {}",
            seeded.objective,
            cold.objective
        );
        assert!(
            seeded.stats.modeled_cycles.unwrap() < cold.stats.modeled_cycles.unwrap(),
            "seeded {} !< cold {}",
            seeded.stats.modeled_cycles.unwrap(),
            cold.stats.modeled_cycles.unwrap()
        );
    }

    #[test]
    fn seeded_on_unchanged_matrix_skips_all_reductions() {
        let n = 8;
        let m = CostMatrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 17) as f64).unwrap();
        let mut fa = FastHa::new();
        let warm = WarmStart::from_report(&fa.solve(&m).unwrap());
        let (rep, gpu) = fa.solve_seeded_with_device(&m, &warm).unwrap();
        rep.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(rep.stats.augmentations, 0);
        assert_eq!(rep.stats.dual_updates, 0);
        // The Step-1 reduction kernels never launch on the seeded path.
        for k in &gpu.stats().per_kernel {
            assert!(
                k.name != "rowReduce" && k.name != "colReduce",
                "seeded path launched {}",
                k.name
            );
        }
    }

    #[test]
    fn seeded_rejects_bad_shapes() {
        let m = CostMatrix::filled(8, 1.0).unwrap();
        let mut fa = FastHa::new();
        let warm = WarmStart::from_report(&fa.solve(&m).unwrap());
        let m6 = CostMatrix::filled(6, 1.0).unwrap();
        assert!(matches!(
            fa.solve_seeded(&m6, &warm),
            Err(LsapError::Backend { .. })
        ));
        let m16 = CostMatrix::filled(16, 1.0).unwrap();
        assert!(matches!(
            fa.solve_seeded(&m16, &warm),
            Err(LsapError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn profiled_solve_matches_unprofiled_and_reconciles() {
        let m = CostMatrix::from_fn(8, 8, |i, j| ((i * 7 + j * 11) % 13) as f64).unwrap();
        let (plain, _) = FastHa::new().solve_with_device(&m).unwrap();
        let (rep, gpu) = FastHa::new()
            .with_profiling(gpu_sim::GpuProfileConfig::default())
            .solve_with_device(&m)
            .unwrap();
        // Profiling is pure observation.
        assert_eq!(rep.assignment, plain.assignment);
        assert_eq!(rep.stats.device_steps, plain.stats.device_steps);
        assert!(rep.stats.profile_events > 0);
        assert_eq!(plain.stats.profile_events, 0);
        let profile = gpu.profile_report().expect("profiler enabled");
        assert_eq!(profile.launches, gpu.stats().launches);
        assert_eq!(profile.warp_cycles, gpu.stats().warp_cycles);
        assert_eq!(
            rep.stats.profile_events,
            (profile.events_recorded as u64) + profile.events_dropped
        );
    }
}
