//! Batched multi-instance FastHA: lockstep Munkres over `B` instances.
//!
//! The single-instance solver's cost is dominated by control latency:
//! every Munkres phase is a separate kernel launch, and the host steers
//! the loop with synchronous scalar reads — so a small instance pays
//! `launch_overhead_s`/`host_sync_s` hundreds of times while the actual
//! compute is microseconds. [`BatchFastHa`] amortizes both by running
//! `B` same-size instances in **lockstep**: one `B·n`-thread kernel per
//! phase advances every instance currently in that phase (a per-instance
//! phase word masks the rest), and one *vector* sync read
//! ([`gpu_sim::GpuSim::host_sync_read_i32_vec`]) steers all `B` host
//! state machines per round instead of one scalar read per instance.
//!
//! Each instance's device state lives in its own slice of the shared
//! buffers (`slack[i·n²..]`, `row_star[i·n..]`, …) and its threads are
//! the contiguous tid block `[i·n, (i+1)·n)`. The simulator executes
//! threads in tid order, so within an instance the relative order of
//! every atomic race is identical to the solo solver's — assignments,
//! duals, and step counters come out bit-for-bit equal to running
//! [`FastHa`] on each matrix alone. Only the *cost* accounting is
//! shared, which is the entire point: per-instance modeled time is
//! reported at the batch level as an amortized share.

use crate::solver::F32_VERIFY_EPS;
use crate::FastHa;
use gpu_sim::{BufId, GpuSim};
use lsap::{
    Assignment, BatchLsapSolver, BatchReport, BatchStats, CostMatrix, DualCertificate, LsapError,
    SolveReport, SolverStats,
};
use std::time::Instant;

/// Sentinel for "no uncovered zero found" in the arg-min encoding.
const NOT_FOUND: i32 = i32::MAX;

// Per-instance phase words steering the lockstep rounds.
const PH_COVER: i32 = 0;
const PH_FIND: i32 = 1;
const PH_PRIME: i32 = 2;
const PH_AUGMENT: i32 = 3;
const PH_DUAL: i32 = 4;
const PH_DONE: i32 = 5;

/// Batched GPU solver: same-size instances share kernels and sync reads.
#[derive(Debug, Clone, Default)]
pub struct BatchFastHa {
    solver: FastHa,
}

impl BatchFastHa {
    /// A batched solver targeting the paper's A100.
    pub fn new() -> Self {
        Self {
            solver: FastHa::new(),
        }
    }

    /// Wraps a configured single-instance solver (device config carries
    /// over; profiling is a single-solve tool and is ignored here).
    pub fn with_solver(solver: FastHa) -> Self {
        Self { solver }
    }

    /// The wrapped single-instance solver.
    pub fn solver(&self) -> &FastHa {
        &self.solver
    }
}

impl BatchLsapSolver for BatchFastHa {
    fn name(&self) -> &'static str {
        "fastha-batch"
    }

    fn solve_batch(&mut self, batch: &[CostMatrix]) -> Result<BatchReport, LsapError> {
        let start = Instant::now();
        for m in batch {
            if !m.is_square() {
                return Err(LsapError::NotSquare {
                    rows: m.rows(),
                    cols: m.cols(),
                });
            }
            if !m.n().is_power_of_two() {
                return Err(LsapError::Backend {
                    detail: format!(
                        "FastHA only operates on 2^m matrix sizes, got {} (pad first)",
                        m.n()
                    ),
                });
            }
        }

        // Group same-size instances into one lockstep run each,
        // preserving input order within and across groups.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, m) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(n, _)| *n == m.n()) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((m.n(), vec![i])),
            }
        }

        let mut reports: Vec<Option<SolveReport>> = (0..batch.len()).map(|_| None).collect();
        let mut modeled_seconds = 0.0;
        let mut modeled_cycles = 0u64;
        for (n, idxs) in &groups {
            let members: Vec<&CostMatrix> = idxs.iter().map(|&i| &batch[i]).collect();
            let mut run = LockstepRun::new(self.solver.clone(), *n, &members);
            run.execute();
            let group_reports = run.extract(&members)?;
            modeled_seconds += run.gpu.modeled_seconds();
            modeled_cycles += run.gpu.stats().warp_cycles;
            for (&i, rep) in idxs.iter().zip(group_reports) {
                rep.verify(&batch[i], F32_VERIFY_EPS)
                    .map_err(|e| LsapError::Backend {
                        detail: format!("batch instance {i}: {e}"),
                    })?;
                reports[i] = Some(rep);
            }
        }
        let reports: Vec<SolveReport> = reports.into_iter().map(Option::unwrap).collect();
        Ok(BatchReport {
            reports,
            stats: BatchStats {
                instances: batch.len(),
                wall_seconds: start.elapsed().as_secs_f64(),
                modeled_cycles: Some(modeled_cycles),
                // The GPU's amortized component (launch overhead, host
                // syncs) is a seconds-domain cost, visible as the gap to
                // the sequential baseline's modeled seconds.
                overhead_cycles: None,
                modeled_seconds: Some(modeled_seconds),
                retries: 0,
            },
        })
    }
}

/// One lockstep group: `b` instances of size `n` sharing device state.
struct LockstepRun {
    gpu: GpuSim,
    n: usize,
    b: usize,
    slack: BufId,
    zeros: BufId,
    zero_count: BufId,
    row_star: BufId,
    col_star: BufId,
    row_prime: BufId,
    row_cover: BufId,
    col_cover: BufId,
    u: BufId,
    v: BufId,
    /// Per-instance control word: the found arg-min in Find rounds, the
    /// star column in Prime rounds (one vector sync read serves both).
    found: BufId,
    /// Per-instance minimum for the Step 6 reduction.
    minval: BufId,
    /// Per-instance covered-column counters.
    cover_count: BufId,
    /// Per-instance phase words (device copy of `phase`).
    phase_buf: BufId,
    /// Per-instance primed position (r·n + c) for Prime/Augment rounds.
    prime_rc: BufId,
    /// Host mirror of `found`, re-uploaded to reset Find slots without
    /// touching slots other phases still own.
    found_host: Vec<i32>,
    augmentations: Vec<u64>,
    dual_updates: Vec<u64>,
    /// Lockstep rounds executed (per-instance phase steps ≤ rounds).
    rounds: u64,
}

impl LockstepRun {
    fn new(solver: FastHa, n: usize, members: &[&CostMatrix]) -> Self {
        let b = members.len();
        let mut gpu = GpuSim::new(solver.config().clone());
        let slack = gpu.alloc_f32("slack", b * n * n);
        let zeros = gpu.alloc_i32("zeros", b * n * n);
        let zero_count = gpu.alloc_i32("zero_count", b * n);
        let row_star = gpu.alloc_i32("row_star", b * n);
        let col_star = gpu.alloc_i32("col_star", b * n);
        let row_prime = gpu.alloc_i32("row_prime", b * n);
        let row_cover = gpu.alloc_i32("row_cover", b * n);
        let col_cover = gpu.alloc_i32("col_cover", b * n);
        let u = gpu.alloc_f32("u", b * n);
        let v = gpu.alloc_f32("v", b * n);
        let found = gpu.alloc_i32("found", b);
        let minval = gpu.alloc_f32("minval", b);
        let cover_count = gpu.alloc_i32("cover_count", b);
        let phase_buf = gpu.alloc_i32("phase", b);
        let prime_rc = gpu.alloc_i32("prime_rc", b);

        let data: Vec<f32> = members
            .iter()
            .flat_map(|m| m.as_slice().iter().map(|&x| x as f32))
            .collect();
        gpu.upload_f32(slack, &data);
        gpu.fill_i32(row_star, -1);
        gpu.fill_i32(col_star, -1);
        gpu.fill_i32(row_prime, -1);

        Self {
            gpu,
            n,
            b,
            slack,
            zeros,
            zero_count,
            row_star,
            col_star,
            row_prime,
            row_cover,
            col_cover,
            u,
            v,
            found,
            minval,
            cover_count,
            phase_buf,
            prime_rc,
            found_host: vec![NOT_FOUND; b],
            augmentations: vec![0; b],
            dual_updates: vec![0; b],
            rounds: 0,
        }
    }

    fn execute(&mut self) {
        self.init_reduce_and_star();
        let mut phase = vec![PH_COVER; self.b];
        let mut prime_host = vec![-1i32; self.b];
        while phase.iter().any(|&p| p != PH_DONE) {
            self.rounds += 1;
            self.gpu.upload_i32(self.phase_buf, &phase);
            let active = |p: i32| phase.contains(&p);

            if active(PH_COVER) {
                // Zero the counters of instances being counted; other
                // slots are dead until their next Cover round.
                let cc: Vec<i32> = phase.iter().map(|_| 0).collect();
                self.gpu.upload_i32(self.cover_count, &cc);
                self.launch_cover_cols();
            }
            if active(PH_FIND) {
                for (f, &p) in self.found_host.iter_mut().zip(&phase) {
                    if p == PH_FIND {
                        *f = NOT_FOUND;
                    }
                }
                let found_init = self.found_host.clone();
                self.gpu.upload_i32(self.found, &found_init);
                self.launch_find_zero();
            }
            if active(PH_PRIME) || active(PH_AUGMENT) {
                self.gpu.upload_i32(self.prime_rc, &prime_host);
            }
            if active(PH_PRIME) {
                self.launch_apply_prime();
            }
            if active(PH_AUGMENT) {
                self.launch_augment();
                self.launch_clear_covers();
            }
            if active(PH_DUAL) {
                let mv: Vec<f32> = phase.iter().map(|_| f32::INFINITY).collect();
                self.gpu.upload_f32(self.minval, &mv);
                self.launch_min_uncovered();
                self.launch_dual_update();
                self.launch_build_zeros(true);
            }

            // One vector round-trip steers every instance in a
            // read-bearing phase; a second serves the cover counters.
            if active(PH_FIND) || active(PH_PRIME) {
                self.found_host = self.gpu.host_sync_read_i32_vec(self.found);
            }
            let covers =
                active(PH_COVER).then(|| self.gpu.host_sync_read_i32_vec(self.cover_count));

            for i in 0..self.b {
                match phase[i] {
                    PH_COVER => {
                        let covered = covers.as_ref().expect("cover read")[i] as usize;
                        phase[i] = if covered == self.n { PH_DONE } else { PH_FIND };
                    }
                    PH_FIND => {
                        let enc = self.found_host[i];
                        if enc != NOT_FOUND {
                            prime_host[i] = enc;
                            phase[i] = PH_PRIME;
                        } else {
                            phase[i] = PH_DUAL;
                        }
                    }
                    PH_PRIME => {
                        let star = self.found_host[i];
                        phase[i] = if star < 0 { PH_AUGMENT } else { PH_FIND };
                    }
                    PH_AUGMENT => {
                        self.augmentations[i] += 1;
                        phase[i] = PH_COVER;
                    }
                    PH_DUAL => {
                        self.dual_updates[i] += 1;
                        phase[i] = PH_FIND;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Steps 1–2 run unmasked: every instance reduces, builds zero
    /// lists, and greedily stars in the same four launches.
    fn init_reduce_and_star(&mut self) {
        let (n, b, slack, u, v) = (self.n, self.b, self.slack, self.u, self.v);
        self.gpu.launch("rowReduce", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            let base = i * n * n;
            let mut m = f32::INFINITY;
            for j in 0..n {
                m = m.min(t.read_f32(slack, base + r * n + j));
            }
            for j in 0..n {
                let x = t.read_f32(slack, base + r * n + j);
                t.write_f32(slack, base + r * n + j, x - m);
            }
            t.write_f32(u, i * n + r, m);
            t.alu(2 * n as u64);
        });
        self.gpu.launch("colReduce", b * n, 256, |t| {
            let (i, c) = (t.tid() / n, t.tid() % n);
            let base = i * n * n;
            let mut m = f32::INFINITY;
            for r in 0..n {
                m = m.min(t.read_f32(slack, base + r * n + c));
            }
            if m != 0.0 {
                for r in 0..n {
                    let x = t.read_f32(slack, base + r * n + c);
                    t.write_f32(slack, base + r * n + c, x - m);
                }
            }
            t.write_f32(v, i * n + c, m);
            t.alu(2 * n as u64);
        });
        self.launch_build_zeros(false);
        let (zeros, zc) = (self.zeros, self.zero_count);
        let (row_star, col_star) = (self.row_star, self.col_star);
        self.gpu.launch("initialStar", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            let k = t.read_i32(zc, i * n + r) as usize;
            for idx in 0..k {
                let c = t.read_i32(zeros, i * n * n + r * n + idx);
                if t.atomic_cas_i32(col_star, i * n + c as usize, -1, r as i32) == -1 {
                    t.write_i32(row_star, i * n + r, c);
                    break;
                }
            }
            t.alu(k as u64 + 1);
        });
    }

    /// Rebuilds the per-row compacted zero lists; `masked` restricts the
    /// rebuild to instances in their Dual round.
    fn launch_build_zeros(&mut self, masked: bool) {
        let (n, b, slack, zeros, zc) = (self.n, self.b, self.slack, self.zeros, self.zero_count);
        let phase = self.phase_buf;
        self.gpu.launch("buildZeros", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            if masked && t.read_i32(phase, i) != PH_DUAL {
                return;
            }
            let mut k = 0usize;
            for j in 0..n {
                if t.read_f32(slack, i * n * n + r * n + j) == 0.0 {
                    t.write_i32(zeros, i * n * n + r * n + k, j as i32);
                    k += 1;
                }
            }
            t.write_i32(zc, i * n + r, k as i32);
            t.alu(n as u64);
        });
    }

    fn launch_cover_cols(&mut self) {
        let (n, b) = (self.n, self.b);
        let (col_star, col_cover, cc, phase) = (
            self.col_star,
            self.col_cover,
            self.cover_count,
            self.phase_buf,
        );
        self.gpu.launch("coverCols", b * n, 256, |t| {
            let (i, c) = (t.tid() / n, t.tid() % n);
            if t.read_i32(phase, i) != PH_COVER {
                return;
            }
            let covered = i32::from(t.read_i32(col_star, i * n + c) >= 0);
            t.write_i32(col_cover, i * n + c, covered);
            if covered != 0 {
                t.atomic_add_i32(cc, i, 1);
            }
            t.alu(2);
        });
    }

    fn launch_find_zero(&mut self) {
        let (n, b, zeros, zc, slack) = (self.n, self.b, self.zeros, self.zero_count, self.slack);
        let (row_cover, col_cover, found, phase) =
            (self.row_cover, self.col_cover, self.found, self.phase_buf);
        self.gpu.launch("findZero", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            if t.read_i32(phase, i) != PH_FIND {
                return;
            }
            if t.read_i32(row_cover, i * n + r) != 0 {
                return;
            }
            let k = t.read_i32(zc, i * n + r) as usize;
            for idx in 0..k {
                let c = t.read_i32(zeros, i * n * n + r * n + idx) as usize;
                if t.read_i32(col_cover, i * n + c) == 0
                    && t.read_f32(slack, i * n * n + r * n + c) == 0.0
                {
                    // The encoding is within-instance, so races resolve
                    // exactly as in the solo solver.
                    t.atomic_min_i32(found, i, (r * n + c) as i32);
                    break;
                }
            }
            t.alu(k as u64 + 2);
        });
    }

    fn launch_apply_prime(&mut self) {
        let (n, b) = (self.n, self.b);
        let (row_prime, row_star) = (self.row_prime, self.row_star);
        let (row_cover, col_cover, found) = (self.row_cover, self.col_cover, self.found);
        let (phase, prime_rc) = (self.phase_buf, self.prime_rc);
        self.gpu.launch("applyPrime", b, 1, |t| {
            let i = t.tid();
            if t.read_i32(phase, i) != PH_PRIME {
                return;
            }
            let enc = t.read_i32(prime_rc, i) as usize;
            let (r, c) = (enc / n, enc % n);
            t.write_i32(row_prime, i * n + r, c as i32);
            let star = t.read_i32(row_star, i * n + r);
            if star >= 0 {
                t.write_i32(row_cover, i * n + r, 1);
                t.write_i32(col_cover, i * n + star as usize, 0);
            }
            t.write_i32(found, i, star);
            t.alu(3);
        });
    }

    fn launch_augment(&mut self) {
        let (n, b) = (self.n, self.b);
        let (row_star, col_star, row_prime) = (self.row_star, self.col_star, self.row_prime);
        let (phase, prime_rc) = (self.phase_buf, self.prime_rc);
        self.gpu.launch("augmentPath", b, 1, |t| {
            let i = t.tid();
            if t.read_i32(phase, i) != PH_AUGMENT {
                return;
            }
            let enc = t.read_i32(prime_rc, i) as usize;
            let mut r = (enc / n) as i32;
            let mut c = (enc % n) as i32;
            loop {
                let old_star_row = t.read_i32(col_star, i * n + c as usize);
                t.write_i32(row_star, i * n + r as usize, c);
                t.write_i32(col_star, i * n + c as usize, r);
                if old_star_row < 0 {
                    break;
                }
                r = old_star_row;
                c = t.read_i32(row_prime, i * n + r as usize);
                t.alu(4);
            }
        });
    }

    fn launch_clear_covers(&mut self) {
        let (n, b) = (self.n, self.b);
        let (row_cover, col_cover, row_prime, phase) = (
            self.row_cover,
            self.col_cover,
            self.row_prime,
            self.phase_buf,
        );
        self.gpu.launch("clearCovers", b * n, 256, |t| {
            let (i, x) = (t.tid() / n, t.tid() % n);
            if t.read_i32(phase, i) != PH_AUGMENT {
                return;
            }
            t.write_i32(row_cover, i * n + x, 0);
            t.write_i32(col_cover, i * n + x, 0);
            t.write_i32(row_prime, i * n + x, -1);
        });
    }

    fn launch_min_uncovered(&mut self) {
        let (n, b, slack) = (self.n, self.b, self.slack);
        let (row_cover, col_cover, minval, phase) =
            (self.row_cover, self.col_cover, self.minval, self.phase_buf);
        self.gpu.launch("minUncovered", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            if t.read_i32(phase, i) != PH_DUAL {
                return;
            }
            if t.read_i32(row_cover, i * n + r) != 0 {
                return;
            }
            let mut m = f32::INFINITY;
            for j in 0..n {
                if t.read_i32(col_cover, i * n + j) == 0 {
                    m = m.min(t.read_f32(slack, i * n * n + r * n + j));
                }
            }
            t.atomic_min_f32(minval, i, m);
            t.alu(n as u64);
        });
    }

    fn launch_dual_update(&mut self) {
        let (n, b, slack) = (self.n, self.b, self.slack);
        let (row_cover, col_cover, minval, phase) =
            (self.row_cover, self.col_cover, self.minval, self.phase_buf);
        let (u, v) = (self.u, self.v);
        self.gpu.launch("dualUpdate", b * n, 256, |t| {
            let (i, r) = (t.tid() / n, t.tid() % n);
            if t.read_i32(phase, i) != PH_DUAL {
                return;
            }
            let delta = t.read_f32(minval, i);
            let rc = t.read_i32(row_cover, i * n + r) != 0;
            for j in 0..n {
                let cc = t.read_i32(col_cover, i * n + j) != 0;
                if !rc && !cc {
                    let x = t.read_f32(slack, i * n * n + r * n + j);
                    t.write_f32(slack, i * n * n + r * n + j, x - delta);
                } else if rc && cc {
                    let x = t.read_f32(slack, i * n * n + r * n + j);
                    t.write_f32(slack, i * n * n + r * n + j, x + delta);
                }
            }
            if !rc {
                let x = t.read_f32(u, i * n + r);
                t.write_f32(u, i * n + r, x + delta);
            }
            if t.read_i32(col_cover, i * n + r) != 0 {
                let x = t.read_f32(v, i * n + r);
                t.write_f32(v, i * n + r, x - delta);
            }
            t.alu(2 * n as u64);
        });
    }

    /// Carves per-instance reports out of the shared buffers. Shared
    /// device-time accounting is reported as amortized shares; exact
    /// per-instance work (augmentations, dual updates) is exact.
    fn extract(&mut self, members: &[&CostMatrix]) -> Result<Vec<SolveReport>, LsapError> {
        let n = self.n;
        let row_star = self.gpu.read_i32(self.row_star);
        let us = self.gpu.read_f32(self.u);
        let vs = self.gpu.read_f32(self.v);
        let modeled = self.gpu.modeled_seconds();
        let cycles = self.gpu.stats().warp_cycles;
        let launches = self.gpu.stats().launches;
        let b = self.b as u64;
        let mut out = Vec::with_capacity(members.len());
        for (i, m) in members.iter().enumerate() {
            let assignment = Assignment::from_row_to_col(
                row_star[i * n..(i + 1) * n]
                    .iter()
                    .map(|&j| (j >= 0).then_some(j as usize))
                    .collect(),
            );
            let objective = assignment.cost(m)?;
            let u: Vec<f64> = us[i * n..(i + 1) * n].iter().map(|&x| x as f64).collect();
            let v: Vec<f64> = vs[i * n..(i + 1) * n].iter().map(|&x| x as f64).collect();
            out.push(SolveReport {
                assignment,
                objective,
                certificate: DualCertificate::new(u, v),
                stats: SolverStats {
                    modeled_seconds: Some(modeled / self.b as f64),
                    modeled_cycles: Some(cycles / b + if i == 0 { cycles % b } else { 0 }),
                    wall_seconds: 0.0,
                    augmentations: self.augmentations[i],
                    dual_updates: self.dual_updates[i],
                    device_steps: launches / b + if i == 0 { launches % b } else { 0 },
                    profile_events: 0,
                    ..Default::default()
                },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsap::LsapSolver;

    fn pseudo_matrix(n: usize, seed: u64) -> CostMatrix {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        CostMatrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 97) as f64
        })
        .unwrap()
    }

    #[test]
    fn lockstep_matches_solo_bit_for_bit() {
        let batch: Vec<CostMatrix> = (0..6).map(|i| pseudo_matrix(8, 40 + i)).collect();
        let rep = BatchFastHa::new().solve_batch(&batch).unwrap();
        rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();
        let mut solo = FastHa::new();
        for (m, r) in batch.iter().zip(&rep.reports) {
            let s = solo.solve(m).unwrap();
            assert_eq!(s.assignment, r.assignment);
            assert_eq!(s.objective.to_bits(), r.objective.to_bits());
            assert_eq!(s.certificate, r.certificate);
            assert_eq!(s.stats.augmentations, r.stats.augmentations);
            assert_eq!(s.stats.dual_updates, r.stats.dual_updates);
        }
    }

    #[test]
    fn batch_amortizes_launches_and_syncs() {
        let batch: Vec<CostMatrix> = (0..16).map(|i| pseudo_matrix(8, 7 + i)).collect();
        let batched = BatchFastHa::new().solve_batch(&batch).unwrap();
        let sequential = lsap::SequentialBatch::new(FastHa::new())
            .solve_batch(&batch)
            .unwrap();
        let b = batched.stats.modeled_seconds.unwrap();
        let s = sequential.stats.modeled_seconds.unwrap();
        assert!(
            b < s,
            "lockstep batch ({b:.6}s) must beat sequential launches ({s:.6}s)"
        );
    }

    #[test]
    fn mixed_sizes_group_into_separate_lockstep_runs() {
        let batch = vec![
            pseudo_matrix(4, 1),
            pseudo_matrix(8, 2),
            pseudo_matrix(4, 3),
            pseudo_matrix(8, 4),
        ];
        let rep = BatchFastHa::new().solve_batch(&batch).unwrap();
        rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();
        let mut solo = FastHa::new();
        for (m, r) in batch.iter().zip(&rep.reports) {
            assert_eq!(solo.solve(m).unwrap().objective, r.objective);
        }
    }

    #[test]
    fn rejects_non_power_of_two_members() {
        let batch = vec![pseudo_matrix(4, 1), CostMatrix::filled(6, 1.0).unwrap()];
        assert!(matches!(
            BatchFastHa::new().solve_batch(&batch),
            Err(LsapError::Backend { .. })
        ));
    }
}
