//! Graph alignment via GRAMPA + linear assignment (§V-C of the paper).
//!
//! Graph alignment derives a pairwise node-similarity matrix from two
//! graphs' adjacency matrices; the Hungarian algorithm then extracts the
//! maximum-similarity one-to-one correspondence. The paper uses GRAMPA
//! (Fan, Mao, Wu, Xu: "Spectral graph matching and regularized quadratic
//! relaxations I", 2019) with its default regularizer η = 0.2 to build
//! the similarity matrix, and evaluates by aligning a graph against a
//! noisy copy of itself.
//!
//! GRAMPA's similarity is
//!
//! ```text
//! X = Σ_{i,j} w(λ_i, μ_j) · u_i u_iᵀ J v_j v_jᵀ,
//! w(λ, μ) = 1 / ((λ − μ)² + η²),
//! ```
//!
//! where `(λ_i, u_i)` / `(μ_j, v_j)` are the eigenpairs of the two
//! adjacency matrices and `J` the all-ones matrix. Using
//! `u u_iᵀ J v_j vᵀ = (u_iᵀ1)(v_jᵀ1) · u_i v_jᵀ`, this is computed as
//! `X = U · M · Vᵀ` with `M_ij = w(λ_i, μ_j) (u_iᵀ1)(v_jᵀ1)` — two dense
//! products after the eigendecompositions.

#![warn(missing_docs)]
#![warn(clippy::all)]

use graphs::Graph;
use linalg::{jacobi_eigen, DenseMatrix};
use lsap::{Assignment, CostMatrix, LsapError, LsapSolver, SolveReport};

/// GRAMPA's default regularizer (the paper sets η = 0.2).
pub const DEFAULT_ETA: f64 = 0.2;

/// Computes the GRAMPA similarity matrix between two graphs of equal
/// size. Entry `(i, j)` scores matching node `i` of `a` to node `j` of
/// `b` (higher = more similar).
///
/// # Panics
/// Panics if the graphs have different node counts or `eta <= 0`.
pub fn grampa_similarity(a: &Graph, b: &Graph, eta: f64) -> CostMatrix {
    assert_eq!(a.n(), b.n(), "GRAMPA aligns graphs of equal size");
    assert!(eta > 0.0, "eta must be positive");
    let n = a.n();

    let (da, db) = (a.adjacency_dense(), b.adjacency_dense());
    let adj_a = DenseMatrix::from_fn(n, n, |i, j| da[i * n + j]);
    let adj_b = DenseMatrix::from_fn(n, n, |i, j| db[i * n + j]);
    let ea = jacobi_eigen(&adj_a, 1e-10, 40);
    let eb = jacobi_eigen(&adj_b, 1e-10, 40);

    // a_i = u_iᵀ 1 and b_j = v_jᵀ 1 (column sums of the eigenvector
    // matrices).
    let ones = vec![1.0; n];
    let asum = ea.vectors.transposed().matvec(&ones);
    let bsum = eb.vectors.transposed().matvec(&ones);

    let m = DenseMatrix::from_fn(n, n, |i, j| {
        let d = ea.values[i] - eb.values[j];
        asum[i] * bsum[j] / (d * d + eta * eta)
    });
    let x = ea.vectors.matmul(&m).matmul(&eb.vectors.transposed());

    CostMatrix::from_vec(n, n, x.as_slice().to_vec()).expect("similarity is finite")
}

/// Result of one alignment run.
#[derive(Debug, Clone)]
pub struct AlignmentOutcome {
    /// The node correspondence (rows of `a` to columns of `b`).
    pub matching: Assignment,
    /// The LSAP solver's report (runtime accounting, certificate).
    pub report: SolveReport,
}

/// Aligns `a` to `b`: GRAMPA similarity → cost conversion → LSAP solve
/// with the provided solver.
///
/// # Errors
/// Propagates solver errors (e.g. FastHA's power-of-two requirement —
/// pad the similarity first via [`pad_for_pow2_solver`]).
pub fn align_with(
    a: &Graph,
    b: &Graph,
    eta: f64,
    solver: &mut dyn LsapSolver,
) -> Result<AlignmentOutcome, LsapError> {
    let sim = grampa_similarity(a, b, eta);
    let cost = sim.similarity_to_cost();
    let report = solver.solve(&cost)?;
    Ok(AlignmentOutcome {
        matching: report.assignment.clone(),
        report,
    })
}

/// Pads a similarity-derived cost matrix with zero rows/columns to the
/// next power-of-two size, as the paper does for FastHA (§V-C), and
/// returns the padded matrix plus the original size for truncating the
/// solution afterwards.
pub fn pad_for_pow2_solver(cost: &CostMatrix) -> (CostMatrix, usize) {
    cost.padded_to_pow2(0.0)
}

/// Fraction of nodes mapped to their ground-truth counterpart
/// ("node correctness" in the alignment literature).
///
/// `truth[i]` is the correct column for row `i`.
pub fn node_correctness(matching: &Assignment, truth: &[usize]) -> f64 {
    let n = truth.len();
    if n == 0 {
        return 1.0;
    }
    let correct = truth
        .iter()
        .enumerate()
        .filter(|&(i, &t)| matching.col_of(i) == Some(t))
        .count();
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_hungarian::JonkerVolgenant;
    use graphs::erdos_renyi_gnm;

    #[test]
    fn identical_graphs_align_to_identity_like_quality() {
        // Aligning a graph to itself: GRAMPA should recover most nodes
        // (spectrally distinguishable ones).
        let g = erdos_renyi_gnm(24, 80, 11);
        let mut solver = JonkerVolgenant::new();
        let out = align_with(&g, &g, DEFAULT_ETA, &mut solver).unwrap();
        let truth: Vec<usize> = (0..g.n()).collect();
        let nc = node_correctness(&out.matching, &truth);
        assert!(nc >= 0.8, "self-alignment correctness {nc}");
    }

    #[test]
    fn permuted_graph_is_recovered() {
        let g = erdos_renyi_gnm(20, 70, 3);
        // Permute node labels; ground truth maps node i of g to perm[i].
        let perm: Vec<usize> = (0..20).map(|i| (i * 7 + 3) % 20).collect();
        let h = g.permuted(&perm);
        let mut solver = JonkerVolgenant::new();
        let out = align_with(&g, &h, DEFAULT_ETA, &mut solver).unwrap();
        let nc = node_correctness(&out.matching, &perm);
        assert!(nc >= 0.8, "permutation recovery {nc}");
    }

    #[test]
    fn similarity_is_finite_and_shaped() {
        let a = erdos_renyi_gnm(12, 30, 1);
        let b = erdos_renyi_gnm(12, 30, 2);
        let s = grampa_similarity(&a, &b, DEFAULT_ETA);
        assert_eq!(s.rows(), 12);
        assert_eq!(s.cols(), 12);
        let (lo, hi) = s.min_max();
        assert!(lo.is_finite() && hi.is_finite());
    }

    #[test]
    fn node_correctness_counts_matches() {
        let a = Assignment::from_permutation(vec![1, 0, 2, 3]);
        assert_eq!(node_correctness(&a, &[1, 0, 3, 2]), 0.5);
        assert_eq!(node_correctness(&a, &[1, 0, 2, 3]), 1.0);
    }

    #[test]
    fn padding_helper_rounds_up() {
        let c = CostMatrix::filled(12, 1.0).unwrap();
        let (p, orig) = pad_for_pow2_solver(&c);
        assert_eq!(p.n(), 16);
        assert_eq!(orig, 12);
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn size_mismatch_rejected() {
        let a = erdos_renyi_gnm(5, 4, 0);
        let b = erdos_renyi_gnm(6, 4, 0);
        grampa_similarity(&a, &b, DEFAULT_ETA);
    }
}
