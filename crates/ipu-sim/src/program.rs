//! Static program trees: the control-flow skeleton compiled ahead of
//! execution, as in Poplar.

use crate::graph::ComputeSetId;
use crate::tensor::{Tensor, TensorSlice};

/// A static program over a compiled graph.
///
/// The only data-dependent construct is [`Program::RepeatWhileTrue`],
/// whose predicate is a device scalar — exactly the control Poplar offers.
/// Everything else (sequences, repeats, copies) is fixed at compile time
/// (challenge C4 of the paper).
#[derive(Debug, Clone)]
pub enum Program {
    /// Run sub-programs in order.
    Sequence(Vec<Program>),
    /// Run all vertices of a compute set as one BSP superstep.
    Execute(ComputeSetId),
    /// Exchange: copy `src` into `dst` (same length and dtype, disjoint).
    Copy {
        /// Source region.
        src: TensorSlice,
        /// Destination region.
        dst: TensorSlice,
    },
    /// Exchange: replicate `src` into `dst` (`dst.len()` must be a
    /// multiple of `src.len()`), e.g. broadcasting a scalar to a per-tile
    /// mirror.
    Broadcast {
        /// Source region.
        src: TensorSlice,
        /// Destination region (filled with repetitions of `src`).
        dst: TensorSlice,
    },
    /// Exchange: perform many independent copies in **one** exchange
    /// phase (one sync, one setup; the busiest tile bounds the duration).
    /// This is how Poplar compiles the per-pair transfers of a reduction
    /// tree or a gather into a single phase.
    Exchange(Vec<(TensorSlice, TensorSlice)>),
    /// Run `body` a fixed number of times.
    Repeat {
        /// Iteration count (fixed at compile time).
        count: u64,
        /// The loop body.
        body: Box<Program>,
    },
    /// Run `body` while the device scalar `predicate` is nonzero,
    /// checking before each iteration.
    RepeatWhileTrue {
        /// 1-element i32 tensor evaluated between supersteps.
        predicate: Tensor,
        /// The loop body.
        body: Box<Program>,
    },
    /// Run `then_body` if the device scalar `predicate` is nonzero, else
    /// `else_body` (Poplar's `program::If`).
    If {
        /// 1-element i32 tensor evaluated between supersteps.
        predicate: Tensor,
        /// Branch taken when the predicate is nonzero.
        then_body: Box<Program>,
        /// Branch taken when the predicate is zero.
        else_body: Box<Program>,
    },
}

impl Program {
    /// A sequence of sub-programs.
    pub fn seq(items: Vec<Program>) -> Self {
        Program::Sequence(items)
    }

    /// Execute one compute set.
    pub fn execute(cs: ComputeSetId) -> Self {
        Program::Execute(cs)
    }

    /// An exchange copy.
    pub fn copy(src: TensorSlice, dst: TensorSlice) -> Self {
        Program::Copy { src, dst }
    }

    /// A replicating exchange copy.
    pub fn broadcast(src: TensorSlice, dst: TensorSlice) -> Self {
        Program::Broadcast { src, dst }
    }

    /// Many copies fused into one exchange phase.
    pub fn exchange(pairs: Vec<(TensorSlice, TensorSlice)>) -> Self {
        Program::Exchange(pairs)
    }

    /// A counted loop.
    pub fn repeat(count: u64, body: Program) -> Self {
        Program::Repeat {
            count,
            body: Box::new(body),
        }
    }

    /// A device-predicated loop.
    pub fn while_true(predicate: Tensor, body: Program) -> Self {
        Program::RepeatWhileTrue {
            predicate,
            body: Box::new(body),
        }
    }

    /// A device-predicated branch.
    pub fn if_true(predicate: Tensor, then_body: Program) -> Self {
        Program::If {
            predicate,
            then_body: Box::new(then_body),
            else_body: Box::new(Program::Sequence(Vec::new())),
        }
    }

    /// A device-predicated branch with an else arm.
    pub fn if_else(predicate: Tensor, then_body: Program, else_body: Program) -> Self {
        Program::If {
            predicate,
            then_body: Box::new(then_body),
            else_body: Box::new(else_body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        let p = Program::seq(vec![Program::execute(ComputeSetId(0))]);
        match p {
            Program::Sequence(v) => assert_eq!(v.len(), 1),
            _ => panic!("expected sequence"),
        }
        let r = Program::repeat(3, Program::seq(vec![]));
        match r {
            Program::Repeat { count, .. } => assert_eq!(count, 3),
            _ => panic!("expected repeat"),
        }
    }
}
