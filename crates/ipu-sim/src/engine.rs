//! The execution engine: interprets a compiled program against tensor
//! buffers, enforcing BSP semantics and charging the cycle model.
//!
//! Supersteps are executed **tile-parallel on the host** when the engine
//! resolves more than one host thread (see [`Engine::host_threads`]): each
//! compute set's vertices are partitioned by tile into contiguous shards
//! (precomputed once at construction), shards run on a persistent scoped
//! worker pool, and per-worker partial results are merged on the main
//! thread. Results are **bit-identical** to sequential execution at any
//! thread count: vertices within a compute set touch pairwise-disjoint
//! write regions (proved by `Graph::validate_races` at compile), per-slot
//! instruction loads are u64 sums (commutative and associative — exact in
//! any order), the superstep cost is a max-reduction over those sums, and
//! fault draws stay on the serial post-join path in program order.

use crate::calibration::{self, VERTEX_OVERHEAD};
use crate::codelet::{FieldBuf, VertexCtx};
use crate::config::{ExecMode, IpuConfig};
use crate::error::GraphError;
use crate::exec::{self, ExecNode};
use crate::fault::{FaultPlan, FaultState};
use crate::graph::{Graph, VertexInfo};
use crate::plan::{self, CopySeg, ExecPlan, PlanOp, PlanShared, PlanVertex};
use crate::pool::{PoolSync, ShutdownGuard};
use crate::profile::{ProfileConfig, ProfileReport, Profiler, BROADCAST_TILE, HOST_TILE};
use crate::program::Program;
use crate::stats::{CycleStats, StepBreakdown};
use crate::tensor::{DType, Tensor, TensorSlice};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Default minimum vertices in a compute set (or fused plan run) before
/// a superstep is worth dispatching to the worker pool — below this,
/// pool handoff latency beats the win. Re-tuned for the lowered
/// execution plan: with per-vertex setup gone, a vertex costs tens of
/// nanoseconds, so dispatch only pays once a run carries thousands of
/// them (measured on the wallbench suite: 128 made 8 host threads
/// *slower* than one; 8192 is the crossover neighbourhood). Override
/// with `IpuConfig::parallel_threshold` or `SIM_PARALLEL_THRESHOLD`.
const PARALLEL_THRESHOLD: usize = 8192;

/// Hard cap on host worker lanes (shard bookkeeping stays negligible).
const MAX_HOST_THREADS: usize = 64;

/// Cap applied when the thread count is auto-detected — beyond this the
/// merge path dominates and extra lanes stop paying for themselves.
const AUTO_THREAD_CAP: usize = 16;

/// Typed storage for one tensor.
#[derive(Clone)]
enum Buffer {
    F32(Vec<f32>),
    I32(Vec<i32>),
}

/// A checkpoint of device memory and accounting, taken with
/// [`Engine::snapshot`] and reinstated with [`Engine::restore`].
///
/// Snapshots are opaque and tied to the engine (same graph, same tensor
/// set) that produced them. The fault RNG is deliberately *not* part of a
/// snapshot — see [`crate::FaultPlan`] — so a retry after `restore` draws
/// fresh faults instead of deterministically replaying the ones that
/// forced the rewind.
pub struct EngineSnapshot {
    buffers: Vec<Buffer>,
    stats: CycleStats,
}

/// Raw view of a buffer, used to hand out disjoint slices to vertex
/// fields without re-borrowing the `Vec` per field.
#[derive(Clone, Copy)]
enum RawBuf {
    F32(*mut f32, usize),
    I32(*mut i32, usize),
}

/// Raw base pointers for every tensor buffer, hoisted out of the superstep
/// hot path: built once at [`Engine::new`] and rebuilt only on
/// [`Engine::restore`]. All post-construction buffer mutation (host
/// writes, exchanges, bit flips, vertex fields) goes through this view, so
/// the pointers stay valid for the engine's whole lifetime.
pub(crate) struct RawBufs(Vec<RawBuf>);

// SAFETY: the pointers target heap allocations owned by the engine's
// `buffers`, which outlive every view and are not reallocated while views
// exist. Sharing across worker threads during a superstep is race-free
// because `Graph::validate_races` proved, at compile time, that within a
// compute set every write-connected region is disjoint from every other
// field region — so any partition of a compute set's vertices over
// threads touches pairwise-disjoint memory through this view.
unsafe impl Send for RawBufs {}
unsafe impl Sync for RawBufs {}

impl RawBufs {
    fn of(buffers: &mut [Buffer]) -> Self {
        Self(
            buffers
                .iter_mut()
                .map(|b| match b {
                    Buffer::F32(v) => RawBuf::F32(v.as_mut_ptr(), v.len()),
                    Buffer::I32(v) => RawBuf::I32(v.as_mut_ptr(), v.len()),
                })
                .collect(),
        )
    }

    fn tensor_len(&self, id: usize) -> usize {
        match self.0[id] {
            RawBuf::F32(_, n) | RawBuf::I32(_, n) => n,
        }
    }

    /// Base pointer, element count, and dtype of one tensor buffer — the
    /// execution-plan builder resolves field views against this once at
    /// compile instead of re-deriving them per vertex per superstep.
    pub(crate) fn raw_parts(&self, id: usize) -> (*mut u8, usize, DType) {
        match self.0[id] {
            RawBuf::F32(p, n) => (p.cast(), n, DType::F32),
            RawBuf::I32(p, n) => (p.cast(), n, DType::I32),
        }
    }

    /// # Safety
    /// `id` must be an f32 tensor with `start + len` in bounds, and no
    /// aliasing mutable view of the region may be alive.
    unsafe fn f32(&self, id: usize, start: usize, len: usize) -> &[f32] {
        match self.0[id] {
            RawBuf::F32(p, n) => {
                debug_assert!(start + len <= n);
                std::slice::from_raw_parts(p.add(start), len)
            }
            RawBuf::I32(..) => unreachable!("dtype validated at compile"),
        }
    }

    /// # Safety
    /// As [`RawBufs::f32`], plus: no other view of the region (shared or
    /// mutable) may be alive.
    #[allow(clippy::mut_from_ref)] // raw-pointer view; aliasing is the caller's obligation
    unsafe fn f32_mut(&self, id: usize, start: usize, len: usize) -> &mut [f32] {
        match self.0[id] {
            RawBuf::F32(p, n) => {
                debug_assert!(start + len <= n);
                std::slice::from_raw_parts_mut(p.add(start), len)
            }
            RawBuf::I32(..) => unreachable!("dtype validated at compile"),
        }
    }

    /// # Safety
    /// `id` must be an i32 tensor with `start + len` in bounds, and no
    /// aliasing mutable view of the region may be alive.
    unsafe fn i32(&self, id: usize, start: usize, len: usize) -> &[i32] {
        match self.0[id] {
            RawBuf::I32(p, n) => {
                debug_assert!(start + len <= n);
                std::slice::from_raw_parts(p.add(start), len)
            }
            RawBuf::F32(..) => unreachable!("dtype validated at compile"),
        }
    }

    /// # Safety
    /// As [`RawBufs::i32`], plus: no other view of the region (shared or
    /// mutable) may be alive.
    #[allow(clippy::mut_from_ref)] // raw-pointer view; aliasing is the caller's obligation
    unsafe fn i32_mut(&self, id: usize, start: usize, len: usize) -> &mut [i32] {
        match self.0[id] {
            RawBuf::I32(p, n) => {
                debug_assert!(start + len <= n);
                std::slice::from_raw_parts_mut(p.add(start), len)
            }
            RawBuf::F32(..) => unreachable!("dtype validated at compile"),
        }
    }

    /// # Safety
    /// `element` must be in bounds of tensor `id`, and no view of that
    /// element may be alive.
    unsafe fn flip_bit(&self, id: usize, element: usize, bit: usize) {
        match self.0[id] {
            RawBuf::F32(p, n) => {
                debug_assert!(element < n);
                let q = p.add(element);
                *q = f32::from_bits((*q).to_bits() ^ (1u32 << bit));
            }
            RawBuf::I32(p, n) => {
                debug_assert!(element < n);
                let q = p.add(element);
                *q ^= 1i32 << bit;
            }
        }
    }
}

/// One compute set's host-parallel decomposition: vertices stably sorted
/// by tile, plus per-lane cut points. Precomputed at [`Engine::new`] and
/// recut (bounds only) when the lane count changes.
struct CsShards {
    /// Vertex ids of the compute set, stably sorted by tile.
    order: Vec<u32>,
    /// `workers + 1` monotone cut indices into `order`; lane `w` executes
    /// `order[bounds[w]..bounds[w + 1]]`. Cuts fall on tile boundaries so
    /// one tile's vertices never split across lanes.
    bounds: Vec<u32>,
}

/// The parts of the engine shared read-only with worker threads during a
/// superstep.
struct Shared {
    graph: Graph,
    /// Round-robin-resolved hardware thread of each vertex.
    vertex_thread: Vec<usize>,
    /// Per-compute-set shard decomposition (parallel to
    /// `graph.compute_sets`).
    shards: Vec<CsShards>,
    /// Resolved host worker lanes (1 = sequential).
    workers: usize,
    /// Minimum vertices before a superstep is dispatched to the pool.
    parallel_threshold: usize,
}

/// The mutable run state, kept separate from [`Shared`] so the main
/// thread can update accounting while workers hold `&Shared`.
struct RunState {
    stats: CycleStats,
    /// Scratch: instruction load per (tile, thread) during a superstep.
    thread_load: Vec<u64>,
    /// Scratch: (tile, thread) slots touched in the current superstep —
    /// lets the hot path avoid sweeping all 8832 slots per superstep.
    touched_slots: Vec<u32>,
    /// Memoized exchange cost per lowered copy node, indexed by the dense
    /// `cost_id` assigned in `exec::lower` (the mapping is static, so two
    /// executions of one node always move the same bytes).
    copy_cost: Vec<Option<u64>>,
    /// Reused staging buffers for exchanges (copies go through staging,
    /// mirroring the real hardware's send/receive and keeping the
    /// semantics simple when source and destination share a tensor).
    scratch_f32: Vec<f32>,
    scratch_i32: Vec<i32>,
    /// Installed fault-injection state, if any.
    faults: Option<FaultState>,
    /// Installed profiler, if any. Recording happens exclusively on the
    /// serial path (after worker lanes join), so profiles are
    /// bit-identical at any host thread count.
    profiler: Option<Profiler>,
}

/// What the superstep fault hook actually injected (profiler input).
#[derive(Default, Clone, Copy)]
struct InjectedFaults {
    straggler_extra: u64,
    bit_flips: u64,
}

/// One worker lane's result slot for the current job.
#[derive(Default)]
struct ShardSlot {
    /// `(slot, instructions)` per executed vertex, in shard order.
    loads: Vec<(u32, u64)>,
    /// End offsets into `loads` per superstep of a fused run (plan
    /// execution only; the interpreted path dispatches one step per job
    /// and ignores this).
    groups: Vec<u32>,
    /// Payload of a codelet panic, re-raised by the main thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Handle to the live worker pool, present only inside `run` when the
/// engine decided to parallelize.
#[derive(Clone, Copy)]
struct Pool<'a> {
    sync: &'a PoolSync,
    slots: &'a [Mutex<ShardSlot>],
}

/// A compiled, runnable IPU program with its device state.
///
/// Obtained from [`Graph::compile`]; by then every static property
/// (mapping, memory, locality, race-freedom) has been validated, so
/// `run` can only fail on divergence of `RepeatWhileTrue`.
pub struct Engine {
    sh: Shared,
    buffers: Vec<Buffer>,
    raw: RawBufs,
    program: ExecNode,
    /// The straight-line lowering of `program`, built once at compile
    /// (see `plan.rs`); the default execution path.
    plan: ExecPlan,
    /// Resolved execution path for subsequent runs (never `Auto`).
    exec_mode: ExecMode,
    st: RunState,
    /// Modeled one-time cost of loading this program onto the device,
    /// fixed at compile time (see [`Engine::program_load_cycles`]).
    program_load_cycles: u64,
    /// Iteration guard for `RepeatWhileTrue`, initialized from
    /// [`crate::IpuConfig::max_while_iterations`] (overridable per engine).
    pub max_while_iterations: u64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tensors", &self.sh.graph.tensors.len())
            .field("compute_sets", &self.sh.graph.compute_sets.len())
            .field("vertices", &self.sh.graph.vertices.len())
            .field("host_threads", &self.sh.workers)
            .field("stats", &self.st.stats)
            .finish_non_exhaustive()
    }
}

/// The host thread count when none was requested explicitly.
fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(AUTO_THREAD_CAP)
}

/// Resolves the host lane count: an explicit `config.host_threads` wins,
/// then the `SIM_THREADS` environment variable, then auto-detection.
pub(crate) fn resolve_host_threads(config: &IpuConfig) -> usize {
    let requested = if config.host_threads > 0 {
        config.host_threads
    } else {
        std::env::var("SIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    };
    let n = if requested > 0 {
        requested
    } else {
        auto_threads()
    };
    n.clamp(1, MAX_HOST_THREADS)
}

fn build_shards(graph: &Graph, workers: usize) -> Vec<CsShards> {
    graph
        .compute_sets
        .iter()
        .map(|cs| {
            let mut order: Vec<u32> = cs.vertices.iter().map(|&v| v as u32).collect();
            // Stable: within a tile, program order is preserved (loads
            // sum per slot, so any order is bit-identical anyway).
            order.sort_by_key(|&v| graph.vertices[v as usize].tile);
            let bounds = shard_bounds(&order, &graph.vertices, workers);
            CsShards { order, bounds }
        })
        .collect()
}

/// Cuts `order` into `workers` near-even contiguous shards, each cut
/// advanced to the next tile boundary.
fn shard_bounds(order: &[u32], vertices: &[VertexInfo], workers: usize) -> Vec<u32> {
    let n = order.len();
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0u32);
    for w in 1..workers {
        let mut cut = (n * w / workers).max(*bounds.last().unwrap() as usize);
        while cut > 0
            && cut < n
            && vertices[order[cut] as usize].tile == vertices[order[cut - 1] as usize].tile
        {
            cut += 1;
        }
        bounds.push(cut as u32);
    }
    bounds.push(n as u32);
    bounds
}

/// Executes one vertex against the raw buffer views, returning the thread
/// instructions to charge (codelet cost plus dispatch overhead).
///
/// # Safety
/// `Graph::compile` validated that (a) every slice is in bounds of its
/// tensor, and (b) within the vertex's compute set, any region connected
/// with a write access overlaps no other connected region. The derived
/// references are dropped (with `ctx`) before this returns, so the only
/// simultaneous references *on this thread* are the fields of one vertex —
/// disjoint whenever one of them is mutable, shared otherwise. Across
/// threads, (b) guarantees any two concurrently executing vertices of one
/// compute set touch disjoint memory whenever either writes. The caller
/// must ensure `raw` is current (no buffer reallocation since it was
/// built) and that no other code holds views of these regions.
unsafe fn exec_vertex(v: &VertexInfo, raw: &RawBufs) -> u64 {
    let mut fields = Vec::with_capacity(v.fields.len());
    for (slice, access) in &v.fields {
        let field = match (raw.0[slice.tensor.id], access.is_exclusive()) {
            (RawBuf::F32(p, len), true) => {
                debug_assert!(slice.end <= len);
                FieldBuf::F32Mut {
                    ptr: p.add(slice.start),
                    len: slice.len() as u32,
                }
            }
            (RawBuf::F32(p, len), false) => {
                debug_assert!(slice.end <= len);
                FieldBuf::F32 {
                    ptr: p.add(slice.start),
                    len: slice.len() as u32,
                }
            }
            (RawBuf::I32(p, len), true) => {
                debug_assert!(slice.end <= len);
                FieldBuf::I32Mut {
                    ptr: p.add(slice.start),
                    len: slice.len() as u32,
                }
            }
            (RawBuf::I32(p, len), false) => {
                debug_assert!(slice.end <= len);
                FieldBuf::I32 {
                    ptr: p.add(slice.start),
                    len: slice.len() as u32,
                }
            }
        };
        fields.push(RefCell::new(field));
    }
    let ctx = VertexCtx::new(&fields);
    (v.codelet)(&ctx) + VERTEX_OVERHEAD
}

/// Executes one plan vertex against its slice of the pre-built cell
/// arena (see [`PlanShared::cell_arena`]) — no per-vertex setup at all,
/// just an index into the arena and the codelet call.
///
/// # Safety
/// Same contract as [`exec_vertex`] — the plan's field pointers target
/// the same buffers and were bounds-validated at build — plus: `cells`
/// must have been built (or rebuilt) from the plan's *current* field
/// pointers, i.e. after any `Engine::restore` rebind. The cells hold
/// plain pointer/length data between calls; typed views only exist
/// inside the codelet and are gone when it returns or unwinds (the
/// `Ref`/`RefMut` guards restore the borrow flags either way).
unsafe fn exec_plan_vertex(graph: &Graph, pv: &PlanVertex, cells: &[RefCell<FieldBuf>]) -> u64 {
    let lo = pv.field_start as usize;
    let ctx = VertexCtx::new(&cells[lo..lo + pv.field_count as usize]);
    (graph.vertices[pv.vid as usize].codelet)(&ctx) + VERTEX_OVERHEAD
}

/// Executes lane `lane` of compute set `cs`, appending `(slot, load)`
/// pairs to `out`.
fn run_shard(sh: &Shared, raw: &RawBufs, cs: usize, lane: usize, out: &mut Vec<(u32, u64)>) {
    let shard = &sh.shards[cs];
    let lo = shard.bounds[lane] as usize;
    let hi = shard.bounds[lane + 1] as usize;
    let tpt = sh.graph.config.threads_per_tile;
    for &vid in &shard.order[lo..hi] {
        let vid = vid as usize;
        let v = &sh.graph.vertices[vid];
        // SAFETY: see `exec_vertex` — cross-thread disjointness comes from
        // `validate_races`, and the main thread only merges after all
        // lanes finished.
        let instructions = unsafe { exec_vertex(v, raw) };
        out.push(((v.tile * tpt + sh.vertex_thread[vid]) as u32, instructions));
    }
}

/// One pool worker: waits for superstep jobs, runs its shard, publishes
/// the per-slot loads (or a panic payload) and signals completion.
fn worker_loop(sh: &Shared, raw: &RawBufs, sync: &PoolSync, slot: &Mutex<ShardSlot>, lane: usize) {
    let mut seen = 0u64;
    let mut out: Vec<(u32, u64)> = Vec::new();
    while let Some((cs, _)) = sync.next_job(&mut seen) {
        out.clear();
        let result = catch_unwind(AssertUnwindSafe(|| run_shard(sh, raw, cs, lane, &mut out)));
        {
            let mut s = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match result {
                // Swap, not copy: the allocations ping-pong between the
                // worker and its slot across supersteps.
                Ok(()) => std::mem::swap(&mut s.loads, &mut out),
                Err(payload) => s.panic = Some(payload),
            }
        }
        sync.finish_job();
    }
}

/// One plan-execution pool worker: waits for fused-run jobs
/// (`(first step, step count)` into the plan's step sequence), executes
/// its tile shard of **every** step of the run back-to-back with no
/// intermediate barrier (Parendi-style partition persistence — the lane
/// owns its tiles for the whole run), then publishes per-step load groups.
fn plan_worker_loop(
    graph: &Graph,
    plan: &PlanShared,
    sync: &PoolSync,
    slot: &Mutex<ShardSlot>,
    lane: usize,
) {
    let mut seen = 0u64;
    let mut out: Vec<(u32, u64)> = Vec::new();
    let mut groups: Vec<u32> = Vec::new();
    // Lane-local cell arena, built once for the pool's lifetime: the pool
    // is scoped to a single `run`, and field pointers can only be rebound
    // (`Engine::restore`) between runs.
    let cells = plan.cell_arena();
    while let Some((first, count)) = sync.next_job(&mut seen) {
        out.clear();
        groups.clear();
        let result = catch_unwind(AssertUnwindSafe(|| {
            for j in 0..count {
                let step = &plan.steps[plan.step_seq[first + j] as usize];
                let lo = step.bounds[lane] as usize;
                let hi = step.bounds[lane + 1] as usize;
                for pv in &step.verts[lo..hi] {
                    // SAFETY: see `exec_plan_vertex` and the fused-run
                    // race argument in `plan.rs` — the tile→lane
                    // partition is global, so across the whole run this
                    // lane only touches memory owned by its tiles (plus
                    // replicated read-only data no step of a run writes).
                    let load = unsafe { exec_plan_vertex(graph, pv, &cells) };
                    out.push((pv.slot, load));
                }
                groups.push(out.len() as u32);
            }
        }));
        {
            let mut s = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match result {
                Ok(()) => {
                    std::mem::swap(&mut s.loads, &mut out);
                    std::mem::swap(&mut s.groups, &mut groups);
                }
                Err(payload) => s.panic = Some(payload),
            }
        }
        sync.finish_job();
    }
}

/// Per-run execution context: disjoint borrows of the engine's shared and
/// mutable halves, plus the worker pool when one is live.
struct ExecCtx<'a> {
    sh: &'a Shared,
    raw: &'a RawBufs,
    st: &'a mut RunState,
    pool: Option<Pool<'a>>,
    max_while_iterations: u64,
}

impl ExecCtx<'_> {
    fn exec(&mut self, node: &ExecNode) -> Result<(), GraphError> {
        match node {
            ExecNode::Seq(items) => {
                for p in items {
                    self.exec(p)?;
                }
                Ok(())
            }
            ExecNode::Execute(cs) => {
                self.exec_compute_set(*cs);
                Ok(())
            }
            ExecNode::Copy {
                src,
                dst,
                reps,
                cost_id,
            } => {
                self.move_data(src, dst, *reps);
                let pair = [(*src, *dst)];
                self.charge_exchange(*cost_id, &pair);
                self.inject_exchange_fault(std::slice::from_ref(dst));
                Ok(())
            }
            ExecNode::Exchange { pairs, cost_id } => {
                for (src, dst) in pairs {
                    self.move_data(src, dst, 1);
                }
                self.charge_exchange(*cost_id, pairs);
                if self.st.faults.is_some() {
                    let dsts: Vec<TensorSlice> = pairs.iter().map(|&(_, dst)| dst).collect();
                    self.inject_exchange_fault(&dsts);
                }
                Ok(())
            }
            ExecNode::Repeat { count, body } => {
                for _ in 0..*count {
                    self.exec(body)?;
                }
                Ok(())
            }
            ExecNode::If {
                predicate,
                then_body,
                else_body,
            } => {
                let cc = self.sh.graph.config.control_cycles;
                self.st.stats.control_cycles += cc;
                let taken = self.read_flag(predicate) != 0;
                if let Some(p) = self.st.profiler.as_mut() {
                    p.record_control(cc, "if", taken);
                }
                if taken {
                    self.exec(then_body)
                } else {
                    self.exec(else_body)
                }
            }
            ExecNode::While { predicate, body } => {
                // Fault: the loop is declared non-convergent up front. The
                // watchdog would fire after `max_while_iterations` wasted
                // iterations; model that terminal state directly instead of
                // simulating millions of no-progress supersteps.
                if let Some(fs) = self.st.faults.as_mut() {
                    if fs.plan.diverge_rate > 0.0
                        && fs.armed(self.st.stats.supersteps)
                        && fs.draw() < fs.plan.diverge_rate
                    {
                        self.st.stats.faults.forced_divergences += 1;
                        let cc = self.sh.graph.config.control_cycles;
                        self.st.stats.control_cycles += cc;
                        if let Some(p) = self.st.profiler.as_mut() {
                            p.record_control(cc, "while", true);
                            p.record_fault("forced_divergence", 1);
                        }
                        return Err(GraphError::Divergence {
                            limit: self.max_while_iterations,
                            context: self.loop_context(body),
                        });
                    }
                }
                let mut iterations = 0u64;
                loop {
                    let cc = self.sh.graph.config.control_cycles;
                    self.st.stats.control_cycles += cc;
                    let taken = self.read_flag(predicate) != 0;
                    if let Some(p) = self.st.profiler.as_mut() {
                        p.record_control(cc, "while", taken);
                    }
                    if !taken {
                        return Ok(());
                    }
                    iterations += 1;
                    if iterations > self.max_while_iterations {
                        return Err(GraphError::Divergence {
                            limit: self.max_while_iterations,
                            context: self.loop_context(body),
                        });
                    }
                    self.exec(body)?;
                }
            }
        }
    }

    /// Reads a device control scalar (predicate dtype/shape validated at
    /// compile).
    fn read_flag(&self, predicate: &Tensor) -> i32 {
        // SAFETY: a 1-element i32 tensor, and no vertex views are alive
        // between supersteps.
        unsafe { self.raw.i32(predicate.id, 0, 1)[0] }
    }

    /// Executes one compute set as a BSP superstep.
    ///
    /// The parallel and sequential paths differ only in *who* runs the
    /// codelets; the per-slot load sums, the max-reduction, and the fault
    /// hook below are identical, which is what makes the two paths
    /// bit-identical.
    fn exec_compute_set(&mut self, cs: usize) {
        let tpt = self.sh.graph.config.threads_per_tile;
        debug_assert!(self.st.thread_load.iter().all(|&x| x == 0));
        self.st.touched_slots.clear();
        let vertices = &self.sh.graph.compute_sets[cs].vertices;

        let mut dispatched = false;
        if let Some(pool) = self.pool {
            if vertices.len() >= self.sh.parallel_threshold {
                pool.sync.run_job((cs, 0), self.sh.workers);
                // Merge in lane order. Order is irrelevant to the result
                // (per-slot u64 sums commute; the reduction below is a
                // max), but a fixed order keeps panic propagation
                // deterministic: the lowest panicking lane wins.
                for slot in pool.slots {
                    let mut s = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(payload) = s.panic.take() {
                        drop(s);
                        resume_unwind(payload);
                    }
                    for &(si, load) in &s.loads {
                        let si = si as usize;
                        if self.st.thread_load[si] == 0 {
                            self.st.touched_slots.push(si as u32);
                        }
                        self.st.thread_load[si] += load;
                    }
                }
                dispatched = true;
            }
        }
        if !dispatched {
            for &vid in vertices {
                let v = &self.sh.graph.vertices[vid];
                // SAFETY: see `exec_vertex`; vertices run one at a time
                // on this thread and no other views are alive.
                let instructions = unsafe { exec_vertex(v, self.raw) };
                let slot = v.tile * tpt + self.sh.vertex_thread[vid];
                if self.st.thread_load[slot] == 0 {
                    self.st.touched_slots.push(slot as u32);
                }
                self.st.thread_load[slot] += instructions;
            }
        }
        finish_superstep(self.sh, self.raw, self.st, cs);
    }

    /// Diagnostic label for a diverging loop: the name of the first
    /// compute set executed in its body.
    fn loop_context(&self, body: &ExecNode) -> String {
        match body.first_compute_set() {
            Some(cs) => self.sh.graph.compute_sets[cs].name.clone(),
            None => "<empty loop body>".to_string(),
        }
    }

    fn inject_exchange_fault(&mut self, dsts: &[TensorSlice]) {
        inject_exchange_fault(self.raw, self.st, dsts);
    }

    fn move_data(&mut self, src: &TensorSlice, dst: &TensorSlice, reps: usize) {
        move_data(self.raw, self.st, src, dst, reps);
    }

    /// Charges one exchange phase covering all `pairs`, memoized by the
    /// node's compile-time `cost_id` (the mapping is static, so the cost
    /// of a lowered node never changes).
    fn charge_exchange(&mut self, cost_id: u32, pairs: &[(TensorSlice, TensorSlice)]) {
        let cost = match self.st.copy_cost[cost_id as usize] {
            Some(c) => c,
            None => {
                let c = exchange_cost(&self.sh.graph, pairs);
                self.st.copy_cost[cost_id as usize] = Some(c);
                c
            }
        };
        let bytes: u64 = pairs.iter().map(|(_, dst)| dst.bytes() as u64).sum();
        self.st.stats.exchange_cycles += cost;
        self.st.stats.sync_cycles += self.sh.graph.config.sync_cycles;
        self.st.stats.exchanges += 1;
        self.st.stats.exchange_bytes += bytes;
        if let Some(profiler) = self.st.profiler.as_mut() {
            let pair_bytes = exchange_pair_bytes(&self.sh.graph, pairs);
            let sync = self.sh.graph.config.sync_cycles;
            profiler.record_exchange(cost, sync, bytes, &pair_bytes);
        }
    }
}

/// The shared superstep epilogue: converts the merged per-slot loads in
/// `st.thread_load`/`st.touched_slots` into the modeled superstep cost,
/// updates statistics, and runs the fault/profiler hooks. Both execution
/// paths (interpreted and plan) funnel through here — one epilogue is the
/// easiest bit-identity proof there is.
///
/// When neither a profiler nor faults are installed, the lean fast path
/// skips every recording branch: the hot loop pays for instrumentation
/// only when instrumentation is on.
fn finish_superstep(sh: &Shared, raw: &RawBufs, st: &mut RunState, cs: usize) {
    let tpt = sh.graph.config.threads_per_tile;
    // Tile cost: the barrel scheduler rotates over all `tpt` thread
    // slots, so a tile finishes after `tpt * max_thread(instructions)`
    // cycles; the superstep lasts as long as the slowest tile (C3).
    // The chip-wide max over tiles equals `tpt *` the max over all
    // touched slots.
    if st.profiler.is_none() && st.faults.is_none() {
        let mut worst = 0u64;
        for &slot in &st.touched_slots {
            worst = worst.max(st.thread_load[slot as usize]);
            st.thread_load[slot as usize] = 0;
        }
        let superstep = worst * tpt as u64;
        st.stats.compute_cycles += superstep;
        st.stats.sync_cycles += sh.graph.config.sync_cycles;
        st.stats.supersteps += 1;
        let b = &mut st.stats.per_compute_set[cs];
        b.executions += 1;
        b.compute_cycles += superstep;
        return;
    }

    // Profiling first, while loads are still live: per-tile barrel
    // cost and thread occupancy. `touched_slots` arrives in a
    // thread-count-dependent order (lane merge vs. program order), so
    // sort — the reduction below is order-independent either way, but
    // the recorded detail must be bit-identical at any thread count.
    let tile_detail: Option<Vec<(u32, u64, u32)>> = st.profiler.is_some().then(|| {
        st.touched_slots.sort_unstable();
        let mut detail: Vec<(u32, u64, u32)> = Vec::new();
        let mut prev_slot = u32::MAX;
        for &slot in &st.touched_slots {
            if slot == prev_slot {
                continue; // zero-load slots can be pushed twice
            }
            prev_slot = slot;
            let tile = slot / tpt as u32;
            let load = st.thread_load[slot as usize];
            match detail.last_mut() {
                Some(d) if d.0 == tile => {
                    d.1 = d.1.max(load);
                    d.2 += 1;
                }
                _ => detail.push((tile, load, 1)),
            }
        }
        for d in &mut detail {
            d.1 *= tpt as u64;
        }
        detail
    });

    let mut worst = 0u64;
    for &slot in &st.touched_slots {
        worst = worst.max(st.thread_load[slot as usize]);
        st.thread_load[slot as usize] = 0;
    }
    let superstep = worst * tpt as u64;
    st.stats.compute_cycles += superstep;
    st.stats.sync_cycles += sh.graph.config.sync_cycles;
    st.stats.supersteps += 1;
    let b = &mut st.stats.per_compute_set[cs];
    b.executions += 1;
    b.compute_cycles += superstep;
    let injected = if st.faults.is_some() {
        inject_superstep_faults(raw, st, cs, superstep)
    } else {
        InjectedFaults::default()
    };
    if let Some(detail) = tile_detail {
        let sync = sh.graph.config.sync_cycles;
        let p = st.profiler.as_mut().expect("profiler checked above");
        p.record_superstep(cs, &detail, sync, injected.straggler_extra);
        if injected.straggler_extra > 0 {
            p.record_fault("straggler", injected.straggler_extra);
        }
        if injected.bit_flips > 0 {
            p.record_fault("bit_flip", injected.bit_flips);
        }
    }
}

/// Fault hook run after each superstep: straggler inflation and SRAM
/// bit flips (see [`FaultPlan`]). Always on the serial post-join path,
/// so the draw sequence is independent of the host thread count.
/// Returns what landed, for the profiler.
fn inject_superstep_faults(
    raw: &RawBufs,
    st: &mut RunState,
    cs: usize,
    superstep: u64,
) -> InjectedFaults {
    let mut injected = InjectedFaults::default();
    let Some(fs) = st.faults.as_mut() else {
        return injected;
    };
    if !fs.armed(st.stats.supersteps) {
        return injected;
    }
    if fs.plan.straggler_rate > 0.0 && fs.draw() < fs.plan.straggler_rate {
        // The slowest tile ran `straggler_factor` times slower; under
        // BSP the whole chip waits for it (C3).
        let extra = (superstep as f64 * (fs.plan.straggler_factor - 1.0)).ceil() as u64;
        st.stats.compute_cycles += extra;
        st.stats.per_compute_set[cs].compute_cycles += extra;
        st.stats.faults.stragglers += 1;
        st.stats.faults.straggler_cycles += extra;
        injected.straggler_extra = extra;
    }
    if fs.plan.bit_flip_rate > 0.0
        && !fs.flip_targets.is_empty()
        && fs.draw() < fs.plan.bit_flip_rate
    {
        let target = fs.draw_index(fs.flip_targets.len());
        let tensor = fs.flip_targets[target];
        let element = fs.draw_index(raw.tensor_len(tensor));
        let bit = fs.draw_index(32);
        // SAFETY: element in bounds; no vertex views alive between
        // supersteps.
        unsafe { raw.flip_bit(tensor, element, bit) };
        st.stats.faults.bit_flips += 1;
        injected.bit_flips += 1;
    }
    injected
}

/// Fault hook run after each exchange phase: corrupts one delivered
/// element of one destination slice.
fn inject_exchange_fault(raw: &RawBufs, st: &mut RunState, dsts: &[TensorSlice]) {
    let Some(fs) = st.faults.as_mut() else {
        return;
    };
    if fs.plan.exchange_rate == 0.0
        || dsts.is_empty()
        || !fs.armed(st.stats.supersteps)
        || fs.draw() >= fs.plan.exchange_rate
    {
        return;
    }
    let slice = dsts[fs.draw_index(dsts.len())];
    if slice.is_empty() {
        return;
    }
    let element = slice.start + fs.draw_index(slice.len());
    let bit = fs.draw_index(32);
    // SAFETY: element in bounds of the destination tensor; no vertex
    // views alive between supersteps.
    unsafe { raw.flip_bit(slice.tensor.id, element, bit) };
    st.stats.faults.exchange_corruptions += 1;
    if let Some(p) = st.profiler.as_mut() {
        p.record_fault("exchange_corruption", 1);
    }
}

/// Moves data for one copy: `dst` receives `reps` repetitions of `src`
/// (1 for plain copies), staged through the run-state scratch buffers
/// (which also handles broadcast replication and source/destination
/// sharing a tensor).
fn move_data(raw: &RawBufs, st: &mut RunState, src: &TensorSlice, dst: &TensorSlice, reps: usize) {
    match src.tensor.dtype {
        DType::F32 => {
            let tmp = &mut st.scratch_f32;
            tmp.clear();
            // SAFETY: endpoints validated at compile (bounds, dtype,
            // lengths); staging means source and destination views
            // are never alive at once, and no vertex views exist
            // between supersteps.
            unsafe {
                tmp.extend_from_slice(raw.f32(src.tensor.id, src.start, src.len()));
                let out = raw.f32_mut(dst.tensor.id, dst.start, reps * tmp.len());
                for chunk in out.chunks_exact_mut(tmp.len()) {
                    chunk.copy_from_slice(tmp);
                }
            }
        }
        DType::I32 => {
            let tmp = &mut st.scratch_i32;
            tmp.clear();
            // SAFETY: as the F32 arm.
            unsafe {
                tmp.extend_from_slice(raw.i32(src.tensor.id, src.start, src.len()));
                let out = raw.i32_mut(dst.tensor.id, dst.start, reps * tmp.len());
                for chunk in out.chunks_exact_mut(tmp.len()) {
                    chunk.copy_from_slice(tmp);
                }
            }
        }
    }
}

/// Direct (unstaged) execution of one flattened copy segment:
/// `memcpy`-style, no scratch round-trip. Only used when the builder
/// proved source and destination disjoint (every overlapping shape except
/// same-tensor broadcast was rejected at compile; that one case stays on
/// the staged path).
///
/// # Safety
/// No vertex views may be alive (copies run between supersteps), and the
/// segment's endpoints were bounds/dtype-validated at compile.
unsafe fn direct_copy(raw: &RawBufs, seg: &CopySeg) {
    let (src, dst, reps) = (&seg.src, &seg.dst, seg.reps as usize);
    match raw.0[src.tensor.id] {
        RawBuf::F32(sp, sn) => {
            let RawBuf::F32(dp, dn) = raw.0[dst.tensor.id] else {
                unreachable!("dtype validated at compile");
            };
            let sl = src.len();
            debug_assert!(src.end <= sn && dst.start + reps * sl <= dn);
            let s = sp.add(src.start);
            let mut d = dp.add(dst.start);
            for _ in 0..reps {
                std::ptr::copy_nonoverlapping(s, d, sl);
                d = d.add(sl);
            }
        }
        RawBuf::I32(sp, sn) => {
            let RawBuf::I32(dp, dn) = raw.0[dst.tensor.id] else {
                unreachable!("dtype validated at compile");
            };
            let sl = src.len();
            debug_assert!(src.end <= sn && dst.start + reps * sl <= dn);
            let s = sp.add(src.start);
            let mut d = dp.add(dst.start);
            for _ in 0..reps {
                std::ptr::copy_nonoverlapping(s, d, sl);
                d = d.add(sl);
            }
        }
    }
}

/// Models the duration of one exchange phase covering all `pairs`.
///
/// The phase duration is bounded by the busiest tile: bytes it sends
/// plus bytes it receives at the on-chip fabric bandwidth, plus any
/// bytes it moves **across a chip boundary** at the (much slower)
/// IPU-Link bandwidth — multi-IPU systems share one exchange address
/// space (§III) but not one fabric. A broadcast source is charged
/// once per receiving chip — the exchange is a per-tile wire every
/// same-chip destination can listen to (multicast).
pub(crate) fn exchange_cost(graph: &Graph, pairs: &[(TensorSlice, TensorSlice)]) -> u64 {
    let config = &graph.config;
    let tiles = config.tiles;
    let mut local = vec![0u64; tiles];
    let mut remote = vec![0u64; tiles];
    let mut host_bytes = 0u64;
    for (src, dst) in pairs {
        let si = &graph.tensors[src.tensor.id];
        let di = &graph.tensors[dst.tensor.id];
        if si.host || di.host {
            // One endpoint sits behind the PCIe link. The link is a
            // single serial stream shared by every pair in the phase, so
            // its bytes accumulate rather than racing per tile; the
            // device endpoint still lands its bytes on the exchange
            // fabric of the tiles it is mapped to.
            let bytes = (dst.len() * dst.tensor.dtype.size_bytes()) as u64;
            host_bytes += bytes;
            let dev = if si.host { (di, dst) } else { (si, src) };
            dev.0.bytes_per_tile(dev.1.start, dev.1.end, &mut local);
            continue;
        }
        if di.replicated {
            // Every tile receives its replica on-chip; the source
            // pushes one copy across each other chip's links.
            let bytes = (dst.len() * dst.tensor.dtype.size_bytes()) as u64;
            local.iter_mut().for_each(|b| *b += bytes);
            si.bytes_per_tile(src.start, src.end, &mut local);
            if config.ipus > 1 {
                let mut src_only = vec![0u64; tiles];
                si.bytes_per_tile(src.start, src.end, &mut src_only);
                for (t, &b) in src_only.iter().enumerate() {
                    remote[t] += b * (config.ipus as u64 - 1);
                }
            }
            continue;
        }
        // Walk src/dst intervals in lockstep, classifying each
        // overlapped segment as on-chip or chip-crossing.
        let esz = src.tensor.dtype.size_bytes() as u64;
        let mut o = 0usize;
        while o < src.len() {
            let (se, st) = si.interval_at(src.start + o);
            let (de, dt) = di.interval_at(dst.start + o);
            let seg_end = (se - src.start).min(de - dst.start).min(src.len());
            let bytes = (seg_end - o) as u64 * esz;
            if config.ipu_of(st) == config.ipu_of(dt) {
                local[st] += bytes;
                local[dt] += bytes;
            } else {
                remote[st] += bytes;
                remote[dt] += bytes;
            }
            o = seg_end;
        }
    }
    let mut worst = 0.0f64;
    for t in 0..tiles {
        let cycles = local[t] as f64 / config.exchange_bytes_per_cycle
            + remote[t] as f64 / config.inter_ipu_bytes_per_cycle;
        worst = worst.max(cycles);
    }
    // Fabric unloading and the serial PCIe stream overlap; the phase
    // ends when the slower of the two finishes.
    let host = host_bytes as f64 / config.host_io_bytes_per_cycle;
    config.exchange_setup_cycles + worst.max(host).ceil() as u64
}

/// Attributes one exchange phase's delivered bytes to `(src_tile,
/// dst_tile)` pairs for the profiler's heatmap.
///
/// The returned bytes sum to **exactly** what `charge_exchange` adds to
/// `CycleStats::exchange_bytes` (`Σ dst.bytes()` over pairs) — the
/// profiler's accounting invariant. A replicated destination (broadcast
/// refresh) is attributed per source segment against
/// [`BROADCAST_TILE`]; a `Copy` with `dst.len() == reps * src.len()`
/// maps destination element `d` to source element `d % src.len()`.
fn exchange_pair_bytes(
    graph: &Graph,
    pairs: &[(TensorSlice, TensorSlice)],
) -> Vec<(u32, u32, u64)> {
    let mut acc: std::collections::BTreeMap<(u32, u32), u64> = std::collections::BTreeMap::new();
    for (src, dst) in pairs {
        if src.is_empty() || dst.is_empty() {
            continue;
        }
        let si = &graph.tensors[src.tensor.id];
        let di = &graph.tensors[dst.tensor.id];
        let esz = dst.tensor.dtype.size_bytes() as u64;
        if si.host || di.host {
            // Attribute the streamed bytes against the device endpoint's
            // tiles, with the host side as the HOST_TILE pseudo-tile.
            let (dev, slice, host_is_src) = if si.host {
                (di, dst, true)
            } else {
                (si, src, false)
            };
            let mut per_tile = vec![0u64; graph.config.tiles];
            dev.bytes_per_tile(slice.start, slice.end, &mut per_tile);
            for (t, &b) in per_tile.iter().enumerate() {
                if b > 0 {
                    let key = if host_is_src {
                        (HOST_TILE, t as u32)
                    } else {
                        (t as u32, HOST_TILE)
                    };
                    *acc.entry(key).or_insert(0) += b;
                }
            }
            continue;
        }
        if di.replicated {
            // Every tile receives a replica; `exchange_bytes` counts one
            // replica's worth, attributed here per source segment.
            debug_assert_eq!(src.len(), dst.len());
            let mut o = 0usize;
            while o < src.len() {
                let (se, stile) = si.interval_at(src.start + o);
                let seg_end = (se - src.start).min(src.len());
                *acc.entry((stile as u32, BROADCAST_TILE)).or_insert(0) +=
                    (seg_end - o) as u64 * esz;
                o = seg_end;
            }
            continue;
        }
        let srclen = src.len();
        let mut o = 0usize;
        while o < dst.len() {
            let (de, dtile) = di.interval_at(dst.start + o);
            let so = o % srclen;
            let (se, stile) = si.interval_at(src.start + so);
            // The segment ends at the first of: dst interval end, src
            // interval end (translated), replication-chunk boundary,
            // slice end.
            let seg_end = (de - dst.start)
                .min(o + (se - src.start - so))
                .min((o / srclen + 1) * srclen)
                .min(dst.len());
            *acc.entry((stile as u32, dtile as u32)).or_insert(0) += (seg_end - o) as u64 * esz;
            o = seg_end;
        }
    }
    acc.into_iter().map(|((s, d), b)| (s, d, b)).collect()
}

/// Per-run execution context for the lowered plan path: an instruction
/// pointer over [`PlanOp`]s, runtime counter slots for loops, and a
/// reusable cell arena so executing a vertex allocates nothing.
///
/// Shares `RunState`, [`finish_superstep`], and the fault hooks with the
/// interpreter, which is what keeps the two paths bit-identical.
struct PlanExec<'a> {
    sh: &'a Shared,
    raw: &'a RawBufs,
    st: &'a mut RunState,
    plan: &'a ExecPlan,
    pool: Option<Pool<'a>>,
    /// Runtime slots: repeat counters and while watchdogs.
    counters: Vec<u64>,
    /// Pre-built cell arena for the serial vertex path (pool lanes build
    /// their own — the borrow flags are not thread-safe).
    cells: Vec<RefCell<FieldBuf>>,
    max_while_iterations: u64,
}

impl<'a> PlanExec<'a> {
    fn exec(&mut self) -> Result<(), GraphError> {
        let plan = self.plan;
        let mut ip = 0usize;
        while let Some(op) = plan.ops.get(ip) {
            match op {
                PlanOp::Run {
                    first,
                    count,
                    verts,
                } => {
                    self.exec_run(*first as usize, *count as usize, *verts as usize);
                    ip += 1;
                }
                PlanOp::Copy(id) => {
                    self.exec_copy(*id as usize);
                    ip += 1;
                }
                PlanOp::LoopInit { slot, count, exit } => {
                    if *count == 0 {
                        ip = *exit as usize;
                    } else {
                        self.counters[*slot as usize] = *count;
                        ip += 1;
                    }
                }
                PlanOp::LoopBack { slot, target } => {
                    let c = &mut self.counters[*slot as usize];
                    *c -= 1;
                    if *c > 0 {
                        ip = *target as usize;
                    } else {
                        ip += 1;
                    }
                }
                PlanOp::WhileEnter { iters, context } => {
                    // Fault: the loop is declared non-convergent up front
                    // — drawn ONCE per loop entry, exactly as the
                    // interpreter draws it, so the fault RNG streams stay
                    // aligned across execution modes.
                    if let Some(fs) = self.st.faults.as_mut() {
                        if fs.plan.diverge_rate > 0.0
                            && fs.armed(self.st.stats.supersteps)
                            && fs.draw() < fs.plan.diverge_rate
                        {
                            self.st.stats.faults.forced_divergences += 1;
                            let cc = self.sh.graph.config.control_cycles;
                            self.st.stats.control_cycles += cc;
                            if let Some(p) = self.st.profiler.as_mut() {
                                p.record_control(cc, "while", true);
                                p.record_fault("forced_divergence", 1);
                            }
                            return Err(GraphError::Divergence {
                                limit: self.max_while_iterations,
                                context: plan.contexts[*context as usize].clone(),
                            });
                        }
                    }
                    self.counters[*iters as usize] = 0;
                    ip += 1;
                }
                PlanOp::WhileHead {
                    predicate,
                    exit,
                    iters,
                    context,
                } => {
                    let cc = self.sh.graph.config.control_cycles;
                    self.st.stats.control_cycles += cc;
                    // SAFETY: a 1-element i32 tensor, and no vertex views
                    // are alive between supersteps.
                    let taken = unsafe { self.raw.i32(predicate.id, 0, 1)[0] } != 0;
                    if let Some(p) = self.st.profiler.as_mut() {
                        p.record_control(cc, "while", taken);
                    }
                    if !taken {
                        ip = *exit as usize;
                        continue;
                    }
                    let c = &mut self.counters[*iters as usize];
                    *c += 1;
                    if *c > self.max_while_iterations {
                        return Err(GraphError::Divergence {
                            limit: self.max_while_iterations,
                            context: plan.contexts[*context as usize].clone(),
                        });
                    }
                    ip += 1;
                }
                PlanOp::Jump(target) => ip = *target as usize,
                PlanOp::IfHead {
                    predicate,
                    else_target,
                } => {
                    let cc = self.sh.graph.config.control_cycles;
                    self.st.stats.control_cycles += cc;
                    // SAFETY: as `WhileHead`.
                    let taken = unsafe { self.raw.i32(predicate.id, 0, 1)[0] } != 0;
                    if let Some(p) = self.st.profiler.as_mut() {
                        p.record_control(cc, "if", taken);
                    }
                    if taken {
                        ip += 1;
                    } else {
                        ip = *else_target as usize;
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes a fused run of `count` consecutive supersteps.
    fn exec_run(&mut self, first: usize, count: usize, verts: usize) {
        // Bit flips mutate buffers *between* supersteps and fault draws
        // consume the superstep counter, so fused execution is unsound
        // under faults; degrade to step-at-a-time with a per-step pool
        // decision, which matches the interpreter exactly.
        if self.st.faults.is_none() {
            if let Some(pool) = self.pool {
                if verts >= self.sh.parallel_threshold {
                    self.exec_steps_pooled(pool, first, count);
                    return;
                }
            }
        }
        for j in 0..count {
            self.exec_step(first + j);
        }
    }

    /// Executes one superstep (step `seq` of the flattened sequence),
    /// mirroring the interpreter's `exec_compute_set`.
    fn exec_step(&mut self, seq: usize) {
        let plan = self.plan;
        let cs = plan.shared.step_seq[seq] as usize;
        let step = &plan.shared.steps[cs];
        debug_assert!(self.st.thread_load.iter().all(|&x| x == 0));
        self.st.touched_slots.clear();

        let mut dispatched = false;
        if let Some(pool) = self.pool {
            if step.verts.len() >= self.sh.parallel_threshold {
                pool.sync.run_job((seq, 1), self.sh.workers);
                for slot in pool.slots {
                    let mut s = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(payload) = s.panic.take() {
                        drop(s);
                        resume_unwind(payload);
                    }
                    for &(si, load) in &s.loads {
                        let si = si as usize;
                        if self.st.thread_load[si] == 0 {
                            self.st.touched_slots.push(si as u32);
                        }
                        self.st.thread_load[si] += load;
                    }
                }
                dispatched = true;
            }
        }
        if !dispatched {
            for pv in &step.verts {
                // SAFETY: see `exec_plan_vertex`; vertices run one at a
                // time on this thread and no other views are alive.
                let load = unsafe { exec_plan_vertex(&self.sh.graph, pv, &self.cells) };
                let si = pv.slot as usize;
                if self.st.thread_load[si] == 0 {
                    self.st.touched_slots.push(pv.slot);
                }
                self.st.thread_load[si] += load;
            }
        }
        finish_superstep(self.sh, self.raw, self.st, cs);
    }

    /// Dispatches a whole fused run as ONE pool job: each lane executes
    /// its tile shard of every step back-to-back (no intra-run barrier),
    /// then the per-step load groups are merged and charged here, in
    /// program order, on the serial path.
    fn exec_steps_pooled(&mut self, pool: Pool<'a>, first: usize, count: usize) {
        let plan = self.plan;
        pool.sync.run_job((first, count), self.sh.workers);
        let mut guards: Vec<_> = pool
            .slots
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect();
        // Deterministic panic propagation: the lowest panicking lane wins.
        let mut panic = None;
        for g in guards.iter_mut() {
            if panic.is_none() {
                panic = g.panic.take();
            }
        }
        if let Some(payload) = panic {
            drop(guards);
            resume_unwind(payload);
        }
        let mut cursor = [0usize; MAX_HOST_THREADS];
        for j in 0..count {
            debug_assert!(self.st.thread_load.iter().all(|&x| x == 0));
            self.st.touched_slots.clear();
            for (lane, g) in guards.iter().enumerate() {
                let end = g.groups[j] as usize;
                for &(si, load) in &g.loads[cursor[lane]..end] {
                    let si = si as usize;
                    if self.st.thread_load[si] == 0 {
                        self.st.touched_slots.push(si as u32);
                    }
                    self.st.thread_load[si] += load;
                }
                cursor[lane] = end;
            }
            finish_superstep(
                self.sh,
                self.raw,
                self.st,
                plan.shared.step_seq[first + j] as usize,
            );
        }
    }

    /// Executes one flattened exchange phase: run the copy list, charge
    /// the precomputed cost, then the profiler/fault hooks — in the
    /// interpreter's order.
    fn exec_copy(&mut self, id: usize) {
        let plan = self.plan;
        let copy = &plan.copies[id];
        for seg in &copy.exec_segs {
            if seg.staged {
                move_data(self.raw, self.st, &seg.src, &seg.dst, seg.reps as usize);
            } else {
                // SAFETY: the builder proved source and destination
                // disjoint for unstaged segments; no vertex views are
                // alive between supersteps.
                unsafe { direct_copy(self.raw, seg) };
            }
        }
        self.st.stats.exchange_cycles += copy.cost;
        self.st.stats.sync_cycles += self.sh.graph.config.sync_cycles;
        self.st.stats.exchanges += 1;
        self.st.stats.exchange_bytes += copy.bytes;
        if let Some(p) = self.st.profiler.as_mut() {
            let pairs: Vec<(TensorSlice, TensorSlice)> =
                copy.segs.iter().map(|s| (s.src, s.dst)).collect();
            let pair_bytes = exchange_pair_bytes(&self.sh.graph, &pairs);
            p.record_exchange(
                copy.cost,
                self.sh.graph.config.sync_cycles,
                copy.bytes,
                &pair_bytes,
            );
        }
        if self.st.faults.is_some() {
            let dsts: Vec<TensorSlice> = copy.segs.iter().map(|s| s.dst).collect();
            inject_exchange_fault(self.raw, self.st, &dsts);
        }
    }
}

/// Resolves the pool-dispatch threshold (minimum vertices in a superstep
/// or fused run before it is worth a pool handoff): an explicit
/// `config.parallel_threshold` wins, then the `SIM_PARALLEL_THRESHOLD`
/// environment variable, then the tuned default.
pub(crate) fn resolve_parallel_threshold(config: &IpuConfig) -> usize {
    let requested = if config.parallel_threshold > 0 {
        config.parallel_threshold
    } else {
        std::env::var("SIM_PARALLEL_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    };
    if requested > 0 {
        requested
    } else {
        PARALLEL_THRESHOLD
    }
}

fn exec_mode_from_env() -> ExecMode {
    match std::env::var("SIM_EXEC").as_deref() {
        Ok("interp") | Ok("interpreted") => ExecMode::Interpreted,
        _ => ExecMode::Plan,
    }
}

/// Resolves the execution mode: an explicit config choice wins; `Auto`
/// consults the `SIM_EXEC` environment variable (`interp`/`interpreted`
/// selects the tree-walking interpreter) and otherwise picks the lowered
/// execution plan. Modeled results are bit-identical either way.
pub(crate) fn resolve_exec_mode(config: &IpuConfig) -> ExecMode {
    match config.exec_mode {
        ExecMode::Auto => exec_mode_from_env(),
        m => m,
    }
}

impl Engine {
    pub(crate) fn new(graph: Graph, program: Program) -> Self {
        let mut buffers: Vec<Buffer> = graph
            .tensors
            .iter()
            .map(|t| match t.dtype {
                DType::F32 => Buffer::F32(vec![0.0; t.len]),
                DType::I32 => Buffer::I32(vec![0; t.len]),
            })
            .collect();
        let raw = RawBufs::of(&mut buffers);
        // Resolve auto threads round-robin per (compute set, tile).
        let mut counters: HashMap<(usize, usize), usize> = HashMap::new();
        let tpt = graph.config.threads_per_tile;
        let vertex_thread: Vec<usize> = graph
            .vertices
            .iter()
            .map(|v| match v.thread {
                Some(t) => t,
                None => {
                    let c = counters.entry((v.cs, v.tile)).or_insert(0);
                    let t = *c % tpt;
                    *c += 1;
                    t
                }
            })
            .collect();
        let stats = CycleStats {
            per_compute_set: graph
                .compute_sets
                .iter()
                .map(|cs| StepBreakdown {
                    name: cs.name.clone(),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        let thread_load = vec![0u64; graph.config.tiles * tpt];
        let max_while_iterations = graph.config.max_while_iterations;
        let (program, cost_slots) = exec::lower(&program);
        // Modeled program-image size: codelet descriptors + edge tables
        // per vertex, variable descriptors per tensor, and the lowered
        // control/exchange tree. Streamed over host I/O on top of the
        // fixed attach cost — a static property of the compiled engine,
        // deliberately NOT part of `CycleStats` (which accounts runs).
        let image_bytes = graph.vertices.len() as u64 * calibration::IMAGE_BYTES_PER_VERTEX
            + graph.tensors.len() as u64 * calibration::IMAGE_BYTES_PER_TENSOR
            + program.node_count() * calibration::IMAGE_BYTES_PER_NODE;
        let program_load_cycles = graph.config.program_load_base_cycles
            + (image_bytes as f64 / graph.config.host_io_bytes_per_cycle).ceil() as u64;
        let workers = resolve_host_threads(&graph.config);
        let shards = build_shards(&graph, workers);
        let parallel_threshold = resolve_parallel_threshold(&graph.config);
        let exec_mode = resolve_exec_mode(&graph.config);
        let plan = plan::build(&graph, &program, &vertex_thread, &raw, workers);
        Self {
            sh: Shared {
                graph,
                vertex_thread,
                shards,
                workers,
                parallel_threshold,
            },
            buffers,
            raw,
            program,
            plan,
            exec_mode,
            st: RunState {
                stats,
                thread_load,
                touched_slots: Vec::new(),
                copy_cost: vec![None; cost_slots],
                scratch_f32: Vec::new(),
                scratch_i32: Vec::new(),
                faults: None,
                profiler: None,
            },
            program_load_cycles,
            max_while_iterations,
        }
    }

    /// Modeled one-time cost of loading this compiled program onto the
    /// device (attach + streaming the program image over host I/O).
    ///
    /// This is a *static property* of the engine, not part of
    /// [`Engine::stats`]: `CycleStats` accounts what runs execute, and a
    /// loaded program can be run (and re-run via snapshot/restore) any
    /// number of times. Sequential single-instance serving pays this per
    /// solve; batched serving pays it once per program — the gap is the
    /// amortization the batch bench measures.
    pub fn program_load_cycles(&self) -> u64 {
        self.program_load_cycles
    }

    /// [`Engine::program_load_cycles`] converted at the device clock.
    pub fn program_load_seconds(&self) -> f64 {
        self.sh
            .graph
            .config
            .cycles_to_seconds(self.program_load_cycles)
    }

    /// The accumulated cycle statistics.
    pub fn stats(&self) -> &CycleStats {
        &self.st.stats
    }

    /// Peak SRAM bytes resident on any one tile — the same accounting
    /// `Graph::compile` enforces against the per-tile budget (host DRAM
    /// tensors excluded, replicated tensors charged to every tile).
    /// Out-of-core layouts are judged by this number: it is what must
    /// stay bounded while `n` grows.
    pub fn peak_tile_bytes(&self) -> usize {
        let graph = &self.sh.graph;
        let mut per_tile = vec![0u64; graph.config.tiles];
        for info in &graph.tensors {
            if info.host {
                continue;
            }
            if info.replicated {
                let bytes = (info.len * info.dtype.size_bytes()) as u64;
                per_tile.iter_mut().for_each(|b| *b += bytes);
            } else {
                info.bytes_per_tile(0, info.len, &mut per_tile);
            }
        }
        per_tile.iter().copied().max().unwrap_or(0) as usize
    }

    /// Zeroes the cycle statistics (buffers are untouched).
    pub fn reset_stats(&mut self) {
        self.st.stats.reset();
    }

    /// Modeled device seconds for everything run so far.
    pub fn modeled_seconds(&self) -> f64 {
        self.sh
            .graph
            .config
            .cycles_to_seconds(self.st.stats.total_cycles())
    }

    /// The device configuration.
    pub fn config(&self) -> &crate::IpuConfig {
        &self.sh.graph.config
    }

    /// The resolved host worker lane count (see
    /// [`crate::IpuConfig::host_threads`] for the resolution order). The
    /// thread count affects wall-clock only; modeled results are
    /// bit-identical at any value.
    pub fn host_threads(&self) -> usize {
        self.sh.workers
    }

    /// Overrides the host worker lane count for subsequent runs; `0`
    /// re-resolves automatically from the machine. Values are clamped to
    /// a sane range. Shard cuts are recomputed to match.
    pub fn set_host_threads(&mut self, threads: usize) {
        let workers = if threads == 0 {
            auto_threads()
        } else {
            threads.clamp(1, MAX_HOST_THREADS)
        };
        self.sh.workers = workers;
        let Shared { graph, shards, .. } = &mut self.sh;
        for shard in shards.iter_mut() {
            shard.bounds = shard_bounds(&shard.order, &graph.vertices, workers);
        }
        self.plan.shared.recut(&self.sh.graph, workers);
    }

    /// Overrides the minimum vertex count before a superstep is
    /// dispatched to the worker pool (default tuned for real programs;
    /// tests lower it to force parallel execution on tiny graphs).
    pub fn set_parallel_threshold(&mut self, min_vertices: usize) {
        self.sh.parallel_threshold = min_vertices.max(1);
    }

    /// The resolved execution path for subsequent runs (never
    /// [`ExecMode::Auto`]).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Overrides the execution path for subsequent runs;
    /// [`ExecMode::Auto`] re-resolves from the `SIM_EXEC` environment
    /// variable. Buffers, statistics, faults, and profiles are
    /// bit-identical across modes — the choice affects host wall-clock
    /// only.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = match mode {
            ExecMode::Auto => exec_mode_from_env(),
            m => m,
        };
    }

    /// Installs a profiler: subsequent execution records a per-superstep
    /// timeline with per-tile detail (see [`Profiler`]). Replaces any
    /// previously installed profiler and its recordings.
    ///
    /// With no profiler installed the engine takes none of the recording
    /// paths — `CycleStats` and solve results are identical either way,
    /// and a profile recorded at any host thread count is bit-identical
    /// to a sequential one.
    pub fn enable_profiling(&mut self, config: ProfileConfig) {
        let c = &self.sh.graph.config;
        self.st.profiler = Some(Profiler::new(
            config,
            c.tiles,
            c.threads_per_tile,
            c.ipus,
            c.tiles_per_ipu,
        ));
    }

    /// Removes the installed profiler, returning its recordings.
    pub fn disable_profiling(&mut self) -> Option<Profiler> {
        self.st.profiler.take()
    }

    /// The installed profiler's recordings so far, if any.
    pub fn profile(&self) -> Option<&Profiler> {
        self.st.profiler.as_ref()
    }

    /// Summary report of the installed profiler, if any.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.st.profiler.as_ref().map(Profiler::report)
    }

    /// Chrome-trace rendering of the installed profiler's timeline, if
    /// any. `pid` is the process lane, `process` its display name in
    /// the viewer (use distinct pids when merging several engines into
    /// one file).
    pub fn chrome_trace(&self, pid: u64, process: &str) -> Option<trace::ChromeTrace> {
        let p = self.st.profiler.as_ref()?;
        let names: Vec<String> = self
            .sh
            .graph
            .compute_sets
            .iter()
            .map(|cs| cs.name.clone())
            .collect();
        Some(p.chrome_trace(pid, process, self.sh.graph.config.clock_hz, &names))
    }

    /// Installs a fault plan: subsequent execution draws from the plan's
    /// deterministic fault stream (see [`FaultPlan`]). Replaces any
    /// previously installed plan and resets its RNG stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let flip_targets = self
            .sh
            .graph
            .tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                // Host DRAM is ECC-protected end to end in this model;
                // the injected SEUs target tile SRAM only.
                t.len > 0
                    && !t.host
                    && plan
                        .flip_target
                        .as_deref()
                        .is_none_or(|needle| t.name.contains(needle))
            })
            .map(|(id, _)| id)
            .collect();
        self.st.faults = Some(FaultState::new(plan, flip_targets));
    }

    /// Removes the installed fault plan; execution becomes fault-free.
    pub fn clear_fault_plan(&mut self) {
        self.st.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.st.faults.as_ref().map(|f| &f.plan)
    }

    /// Checkpoints device memory and accounting.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            buffers: self.buffers.clone(),
            stats: self.st.stats.clone(),
        }
    }

    /// Reinstates a checkpoint taken with [`Engine::snapshot`] on this
    /// engine: tensor contents and cycle accounting rewind; the fault RNG
    /// keeps advancing (see [`EngineSnapshot`]).
    ///
    /// # Panics
    /// Panics if the snapshot came from an engine with a different tensor
    /// set (a static programming error).
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        assert_eq!(
            self.buffers.len(),
            snapshot.buffers.len(),
            "snapshot is from a different graph"
        );
        for (dst, src) in self.buffers.iter_mut().zip(&snapshot.buffers) {
            match (dst, src) {
                (Buffer::F32(d), Buffer::F32(s)) => d.clone_from(s),
                (Buffer::I32(d), Buffer::I32(s)) => d.clone_from(s),
                _ => panic!("snapshot is from a different graph"),
            }
        }
        self.st.stats.clone_from(&snapshot.stats);
        // The element-wise clone keeps allocations in place for same-graph
        // snapshots, but rebuild the raw views regardless — this is the
        // only point (besides construction) where they may be refreshed.
        self.raw = RawBufs::of(&mut self.buffers);
        self.plan.shared.rebind_fields(&self.raw);
    }

    /// Host → device write of a whole f32 tensor (not charged to device
    /// time; bytes recorded in `stats.host_bytes`).
    pub fn write_f32(&mut self, tensor: Tensor, data: &[f32]) -> Result<(), GraphError> {
        match self.raw.0[tensor.id] {
            RawBuf::F32(_, len) if len == data.len() => {
                // SAFETY: whole-tensor write, in bounds; no vertex views
                // alive outside `run`. Going through the raw view avoids
                // re-borrowing the Vec, keeping the hoisted pointers valid.
                unsafe { self.raw.f32_mut(tensor.id, 0, len) }.copy_from_slice(data);
                self.st.stats.host_bytes += (data.len() * 4) as u64;
                Ok(())
            }
            RawBuf::F32(_, len) => Err(GraphError::Invalid {
                detail: format!(
                    "write_f32: tensor has {len} elements, data has {}",
                    data.len()
                ),
            }),
            RawBuf::I32(..) => Err(GraphError::Invalid {
                detail: "write_f32 on an i32 tensor".into(),
            }),
        }
    }

    /// Host → device write of a whole i32 tensor.
    pub fn write_i32(&mut self, tensor: Tensor, data: &[i32]) -> Result<(), GraphError> {
        match self.raw.0[tensor.id] {
            RawBuf::I32(_, len) if len == data.len() => {
                // SAFETY: as `write_f32`.
                unsafe { self.raw.i32_mut(tensor.id, 0, len) }.copy_from_slice(data);
                self.st.stats.host_bytes += (data.len() * 4) as u64;
                Ok(())
            }
            RawBuf::I32(_, len) => Err(GraphError::Invalid {
                detail: format!(
                    "write_i32: tensor has {len} elements, data has {}",
                    data.len()
                ),
            }),
            RawBuf::F32(..) => Err(GraphError::Invalid {
                detail: "write_i32 on an f32 tensor".into(),
            }),
        }
    }

    /// Device → host read of a whole f32 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not f32 (a static programming error).
    pub fn read_f32(&mut self, tensor: Tensor) -> Vec<f32> {
        self.st.stats.host_bytes += (tensor.len * 4) as u64;
        match &self.buffers[tensor.id] {
            Buffer::F32(v) => v.clone(),
            _ => panic!("read_f32 on an i32 tensor"),
        }
    }

    /// Device → host read of a whole i32 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not i32 (a static programming error).
    pub fn read_i32(&mut self, tensor: Tensor) -> Vec<i32> {
        self.st.stats.host_bytes += (tensor.len * 4) as u64;
        match &self.buffers[tensor.id] {
            Buffer::I32(v) => v.clone(),
            _ => panic!("read_i32 on an f32 tensor"),
        }
    }

    /// Runs the compiled program once.
    ///
    /// Execution takes the pre-resolved plan path by default (see
    /// [`ExecMode`] and `plan.rs`); `ExecMode::Interpreted` walks the
    /// lowered tree instead. With more than one host thread resolved (and
    /// enough vertices to parallelize), a scoped worker pool is spawned
    /// for the duration of the run and supersteps execute tile-parallel;
    /// results are bit-identical across modes and thread counts.
    ///
    /// # Errors
    /// [`GraphError::Divergence`] if a `RepeatWhileTrue` exceeds
    /// [`Engine::max_while_iterations`].
    pub fn run(&mut self) -> Result<(), GraphError> {
        match self.exec_mode {
            ExecMode::Interpreted => self.run_interpreted(),
            _ => self.run_plan(),
        }
    }

    /// Runs via the straight-line execution plan (the default path).
    fn run_plan(&mut self) -> Result<(), GraphError> {
        let sh = &self.sh;
        let raw = &self.raw;
        let st = &mut self.st;
        let plan = &self.plan;
        let max_while_iterations = self.max_while_iterations;
        let pooled = sh.workers > 1 && plan.max_run_verts >= sh.parallel_threshold;
        if !pooled {
            PlanExec {
                sh,
                raw,
                st,
                plan,
                pool: None,
                counters: vec![0; plan.n_slots],
                cells: plan.shared.cell_arena(),
                max_while_iterations,
            }
            .exec()
        } else {
            let sync = PoolSync::new();
            let slots: Vec<Mutex<ShardSlot>> = (0..sh.workers)
                .map(|_| Mutex::new(ShardSlot::default()))
                .collect();
            std::thread::scope(|scope| {
                for (lane, slot) in slots.iter().enumerate() {
                    let sync = &sync;
                    let graph = &sh.graph;
                    let shared = &plan.shared;
                    scope.spawn(move || plan_worker_loop(graph, shared, sync, slot, lane));
                }
                // Shut the pool down even if a re-raised codelet panic
                // unwinds out of `exec`, so the scope can join.
                let _guard = ShutdownGuard(&sync);
                PlanExec {
                    sh,
                    raw,
                    st,
                    plan,
                    pool: Some(Pool {
                        sync: &sync,
                        slots: &slots,
                    }),
                    counters: vec![0; plan.n_slots],
                    cells: plan.shared.cell_arena(),
                    max_while_iterations,
                }
                .exec()
            })
        }
    }

    /// Runs via the tree-walking interpreter (the reference path the
    /// differential tests compare the plan against).
    fn run_interpreted(&mut self) -> Result<(), GraphError> {
        let program = std::mem::replace(&mut self.program, ExecNode::Seq(Vec::new()));
        let sh = &self.sh;
        let raw = &self.raw;
        let st = &mut self.st;
        let max_while_iterations = self.max_while_iterations;
        let pooled = sh.workers > 1
            && sh
                .graph
                .compute_sets
                .iter()
                .any(|cs| cs.vertices.len() >= sh.parallel_threshold);
        let result = if !pooled {
            ExecCtx {
                sh,
                raw,
                st,
                pool: None,
                max_while_iterations,
            }
            .exec(&program)
        } else {
            let sync = PoolSync::new();
            let slots: Vec<Mutex<ShardSlot>> = (0..sh.workers)
                .map(|_| Mutex::new(ShardSlot::default()))
                .collect();
            std::thread::scope(|scope| {
                for (lane, slot) in slots.iter().enumerate() {
                    let sync = &sync;
                    scope.spawn(move || worker_loop(sh, raw, sync, slot, lane));
                }
                // Shut the pool down even if a re-raised codelet panic
                // unwinds out of `exec`, so the scope can join.
                let _guard = ShutdownGuard(&sync);
                ExecCtx {
                    sh,
                    raw,
                    st,
                    pool: Some(Pool {
                        sync: &sync,
                        slots: &slots,
                    }),
                    max_while_iterations,
                }
                .exec(&program)
            })
        };
        self.program = program;
        result
    }

    /// Direct (host-side) peek at an f32 region — intended for tests and
    /// debugging; does not touch accounting.
    pub fn peek_f32(&self, slice: TensorSlice) -> Vec<f32> {
        match &self.buffers[slice.tensor.id] {
            Buffer::F32(v) => v[slice.range()].to_vec(),
            _ => panic!("peek_f32 on an i32 tensor"),
        }
    }

    /// Direct (host-side) peek at an i32 region.
    pub fn peek_i32(&self, slice: TensorSlice) -> Vec<i32> {
        match &self.buffers[slice.tensor.id] {
            Buffer::I32(v) => v[slice.range()].to_vec(),
            _ => panic!("peek_i32 on an f32 tensor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cost, Access, DType, FaultPlan, Graph, IpuConfig, Program};

    #[test]
    fn simple_compute_runs_and_charges_cycles() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let x = g.add_tensor("x", DType::F32, 4);
        g.map_to_tile(x, 0).unwrap();
        let cs = g.add_compute_set("inc");
        let v = g
            .add_vertex(cs, 0, "inc", |ctx| {
                let mut x = ctx.f32_mut(0);
                for e in x.iter_mut() {
                    *e += 1.0;
                }
                cost::f32_update(x.len())
            })
            .unwrap();
        g.connect(v, x.whole(), Access::ReadWrite).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.write_f32(x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(x), vec![2.0, 3.0, 4.0, 5.0]);
        assert!(e.stats().compute_cycles > 0);
        assert_eq!(e.stats().supersteps, 1);
        assert!(e.modeled_seconds() > 0.0);
    }

    #[test]
    fn program_load_is_static_and_outside_run_stats() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let cs = g.add_compute_set("w");
        g.add_vertex(cs, 0, "v", |_| 10).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        let load = e.program_load_cycles();
        // At least the fixed attach cost, plus a nonzero image charge.
        assert!(load > e.config().program_load_base_cycles);
        assert!(e.program_load_seconds() > 0.0);
        // Static property: unchanged by running, and never charged into
        // the run statistics (which account executed supersteps only).
        assert_eq!(e.stats().total_cycles(), 0);
        e.run().unwrap();
        assert_eq!(e.program_load_cycles(), load);
        let run_cycles = e.stats().total_cycles();
        e.run().unwrap();
        assert_eq!(e.stats().total_cycles(), 2 * run_cycles);
        assert_eq!(e.program_load_cycles(), load);
    }

    #[test]
    fn bigger_programs_cost_more_to_load() {
        let small = {
            let mut g = Graph::new(IpuConfig::tiny(2));
            let cs = g.add_compute_set("w");
            g.add_vertex(cs, 0, "v", |_| 10).unwrap();
            g.compile(Program::execute(cs))
                .unwrap()
                .program_load_cycles()
        };
        let big = {
            let mut g = Graph::new(IpuConfig::tiny(2));
            let cs = g.add_compute_set("w");
            for i in 0..512 {
                g.add_vertex(cs, i % 2, "v", |_| 10).unwrap();
            }
            for i in 0..64 {
                let name = format!("t{i}");
                let t = g.add_tensor(&name, DType::F32, 8);
                g.map_to_tile(t, 0).unwrap();
            }
            g.compile(Program::execute(cs))
                .unwrap()
                .program_load_cycles()
        };
        assert!(big > small);
    }

    #[test]
    fn superstep_cost_is_max_over_tiles_times_thread_slots() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let cs = g.add_compute_set("work");
        // Tile 0: 100-instruction vertex; tile 1: 10-instruction vertex.
        g.add_vertex(cs, 0, "heavy", |_| 100).unwrap();
        g.add_vertex(cs, 1, "light", |_| 10).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.run().unwrap();
        // Max thread load on the slowest tile = 100 + overhead, times the
        // 6 barrel slots.
        assert_eq!(e.stats().compute_cycles, (100 + VERTEX_OVERHEAD) * 6);
    }

    #[test]
    fn balanced_threads_beat_single_thread() {
        // 600 instructions on one thread vs 100 on each of six threads:
        // the balanced version is 6x faster (C3: workload balance).
        let single = {
            let mut g = Graph::new(IpuConfig::tiny(1));
            let cs = g.add_compute_set("w");
            g.add_vertex_on_thread(cs, 0, 0, "all", |_| 600).unwrap();
            let mut e = g.compile(Program::execute(cs)).unwrap();
            e.run().unwrap();
            e.stats().compute_cycles
        };
        let balanced = {
            let mut g = Graph::new(IpuConfig::tiny(1));
            let cs = g.add_compute_set("w");
            for t in 0..6 {
                g.add_vertex_on_thread(cs, 0, t, "seg", |_| 100).unwrap();
            }
            let mut e = g.compile(Program::execute(cs)).unwrap();
            e.run().unwrap();
            e.stats().compute_cycles
        };
        assert!(single > 5 * balanced);
    }

    #[test]
    fn copy_moves_data_and_charges_exchange() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let a = g.add_tensor("a", DType::I32, 4);
        let b = g.add_tensor("b", DType::I32, 4);
        g.map_to_tile(a, 0).unwrap();
        g.map_to_tile(b, 1).unwrap();
        let mut e = g.compile(Program::copy(a.whole(), b.whole())).unwrap();
        e.write_i32(a, &[1, 2, 3, 4]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(b), vec![1, 2, 3, 4]);
        assert!(e.stats().exchange_cycles > 0);
        assert_eq!(e.stats().exchanges, 1);
        assert_eq!(e.stats().exchange_bytes, 16);
    }

    #[test]
    fn host_stream_exchange_charges_serial_pcie() {
        // 8 pairs of 64 f32 each, host -> one tile apiece: every tile
        // unloads 256 B at 4 B/cycle (64 cycles), but the PCIe stream
        // carries all 2048 B serially at 24 B/cycle (85.33 cycles) and
        // bounds the phase.
        let mut g = Graph::new(IpuConfig::tiny(8));
        let h = g.add_host_tensor("host_cost", DType::F32, 512);
        let d = g.add_tensor("work", DType::F32, 512);
        for t in 0..8 {
            g.map_slice(d.slice(t * 64..(t + 1) * 64), t).unwrap();
        }
        let pairs: Vec<_> = (0..8)
            .map(|t| (h.slice(t * 64..(t + 1) * 64), d.slice(t * 64..(t + 1) * 64)))
            .collect();
        let mut e = g.compile(Program::exchange(pairs)).unwrap();
        let data: Vec<f32> = (0..512).map(|i| i as f32).collect();
        e.write_f32(h, &data).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(d), data);
        let cfg = e.config().clone();
        let host_cycles = (2048.0 / cfg.host_io_bytes_per_cycle).ceil() as u64;
        assert_eq!(
            e.stats().exchange_cycles,
            cfg.exchange_setup_cycles + host_cycles
        );
        assert_eq!(e.stats().exchange_bytes, 2048);
    }

    #[test]
    fn device_to_host_copy_streams_back() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let d = g.add_tensor("acc", DType::I32, 4);
        let h = g.add_host_tensor("spool", DType::I32, 4);
        g.map_to_tile(d, 1).unwrap();
        let mut e = g.compile(Program::copy(d.whole(), h.whole())).unwrap();
        e.write_i32(d, &[9, 8, 7, 6]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(h), vec![9, 8, 7, 6]);
        assert!(e.stats().exchange_cycles > 0);
    }

    #[test]
    fn host_tensor_exempt_from_sram_budget() {
        // 800 KB on any single tile would blow the 624 KiB budget; as
        // host DRAM it compiles (and can round-trip through a resident
        // window).
        let mut g = Graph::new(IpuConfig::tiny(2));
        let h = g.add_host_tensor("big", DType::F32, 200_000);
        let w = g.add_tensor("window", DType::F32, 64);
        g.map_to_tile(w, 0).unwrap();
        let mut e = g
            .compile(Program::copy(h.slice(100_000..100_064), w.whole()))
            .unwrap();
        let mut data = vec![0.0f32; 200_000];
        data[100_001] = 5.0;
        e.write_f32(h, &data).unwrap();
        e.run().unwrap();
        assert_eq!(e.peek_f32(w.slice(1..2)), vec![5.0]);
    }

    #[test]
    fn host_tensor_misuse_rejected() {
        // Mapping a host tensor is a contradiction.
        let mut g = Graph::new(IpuConfig::tiny(2));
        let h = g.add_host_tensor("h", DType::F32, 8);
        assert!(matches!(
            g.map_to_tile(h, 0),
            Err(GraphError::BadSlice { .. })
        ));
        // A vertex can never reach host DRAM directly.
        let cs = g.add_compute_set("cs");
        let v = g.add_vertex(cs, 0, "reader", |_| 1).unwrap();
        g.connect(v, h.slice(0..8), Access::Read).unwrap();
        assert!(matches!(
            g.compile(Program::execute(cs)),
            Err(GraphError::NotOnTile { .. })
        ));
        // Host endpoints are not broadcast sources or destinations.
        let mut g = Graph::new(IpuConfig::tiny(2));
        let h = g.add_host_tensor("h", DType::F32, 8);
        let d = g.add_tensor("d", DType::F32, 8);
        g.map_to_tile(d, 0).unwrap();
        assert!(g.compile(Program::broadcast(h.whole(), d.whole())).is_err());
        // Host-to-host never touches the device.
        let mut g = Graph::new(IpuConfig::tiny(2));
        let a = g.add_host_tensor("a", DType::F32, 8);
        let b = g.add_host_tensor("b", DType::F32, 8);
        assert!(g.compile(Program::copy(a.whole(), b.whole())).is_err());
    }

    #[test]
    fn bit_flips_never_target_host_tensors() {
        // A flip plan aimed at the host tensor's name finds no eligible
        // target, so the armed engine stays fault-free.
        let mut g = Graph::new(IpuConfig::tiny(2));
        let h = g.add_host_tensor("spool", DType::F32, 16);
        let d = g.add_tensor("work", DType::F32, 16);
        g.map_to_tile(d, 0).unwrap();
        let mut e = g.compile(Program::copy(h.whole(), d.whole())).unwrap();
        e.set_fault_plan(FaultPlan::new(7).with_bit_flips(1.0).targeting("spool"));
        let data = vec![3.0f32; 16];
        e.write_f32(h, &data).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(d), data);
        assert_eq!(e.stats().faults.bit_flips, 0);
    }

    #[test]
    fn broadcast_replicates() {
        let mut g = Graph::new(IpuConfig::tiny(4));
        let s = g.add_tensor("s", DType::F32, 1);
        let d = g.add_tensor("d", DType::F32, 4);
        g.map_to_tile(s, 0).unwrap();
        g.map_evenly(d).unwrap();
        let mut e = g.compile(Program::broadcast(s.whole(), d.whole())).unwrap();
        e.write_f32(s, &[7.5]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(d), vec![7.5; 4]);
    }

    #[test]
    fn repeat_runs_body_n_times() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let x = g.add_tensor("x", DType::I32, 1);
        g.map_to_tile(x, 0).unwrap();
        let cs = g.add_compute_set("inc");
        let v = g
            .add_vertex(cs, 0, "inc", |ctx| {
                ctx.i32_mut(0)[0] += 1;
                1
            })
            .unwrap();
        g.connect(v, x.whole(), Access::ReadWrite).unwrap();
        let mut e = g.compile(Program::repeat(5, Program::execute(cs))).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(x), vec![5]);
        assert_eq!(e.stats().supersteps, 5);
    }

    #[test]
    fn while_loop_runs_until_predicate_clears() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let flag = g.add_tensor("flag", DType::I32, 1);
        let count = g.add_tensor("count", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        g.map_to_tile(count, 0).unwrap();
        let cs = g.add_compute_set("tick");
        let v = g
            .add_vertex(cs, 0, "tick", |ctx| {
                let mut c = ctx.i32_mut(1);
                c[0] += 1;
                let mut f = ctx.i32_mut(0);
                f[0] = i32::from(c[0] < 7);
                3
            })
            .unwrap();
        g.connect(v, flag.whole(), Access::ReadWrite).unwrap();
        g.connect(v, count.whole(), Access::ReadWrite).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::execute(cs)))
            .unwrap();
        e.write_i32(flag, &[1]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(count), vec![7]);
        assert!(e.stats().control_cycles > 0);
    }

    #[test]
    fn diverging_while_is_caught() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let flag = g.add_tensor("flag", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::seq(vec![])))
            .unwrap();
        e.max_while_iterations = 100;
        e.write_i32(flag, &[1]).unwrap();
        assert!(matches!(
            e.run(),
            Err(GraphError::Divergence { limit: 100, .. })
        ));
    }

    #[test]
    fn divergence_guard_comes_from_config_and_names_the_loop() {
        let mut g = Graph::new(IpuConfig {
            max_while_iterations: 25,
            ..IpuConfig::tiny(1)
        });
        let flag = g.add_tensor("flag", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        let cs = g.add_compute_set("spin_step");
        let v = g.add_vertex(cs, 0, "noop", |_| 1).unwrap();
        g.connect(v, flag.whole(), Access::Read).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::execute(cs)))
            .unwrap();
        e.write_i32(flag, &[1]).unwrap();
        let err = e.run().unwrap_err();
        match &err {
            GraphError::Divergence { limit, context } => {
                assert_eq!(*limit, 25);
                assert_eq!(context, "spin_step");
            }
            other => panic!("expected Divergence, got {other:?}"),
        }
        assert!(err.to_string().contains("spin_step"));
    }

    #[test]
    fn stats_reset_and_rerun() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let cs = g.add_compute_set("w");
        g.add_vertex(cs, 0, "v", |_| 10).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.run().unwrap();
        let first = e.stats().total_cycles();
        e.reset_stats();
        assert_eq!(e.stats().total_cycles(), 0);
        e.run().unwrap();
        assert_eq!(e.stats().total_cycles(), first);
        assert_eq!(e.stats().per_compute_set[0].executions, 1);
    }

    #[test]
    fn per_compute_set_breakdown_accumulates() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let cs1 = g.add_compute_set("first");
        let cs2 = g.add_compute_set("second");
        g.add_vertex(cs1, 0, "a", |_| 5).unwrap();
        g.add_vertex(cs2, 0, "b", |_| 7).unwrap();
        let prog = Program::seq(vec![
            Program::execute(cs1),
            Program::execute(cs2),
            Program::execute(cs1),
        ]);
        let mut e = g.compile(prog).unwrap();
        e.run().unwrap();
        let b = &e.stats().per_compute_set;
        assert_eq!(b[0].name, "first");
        assert_eq!(b[0].executions, 2);
        assert_eq!(b[1].executions, 1);
    }

    #[test]
    fn host_io_validates_shape_and_dtype() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let x = g.add_tensor("x", DType::F32, 4);
        g.map_to_tile(x, 0).unwrap();
        let mut e = g.compile(Program::seq(vec![])).unwrap();
        assert!(e.write_f32(x, &[0.0; 3]).is_err());
        assert!(e.write_i32(x, &[0; 4]).is_err());
        assert!(e.write_f32(x, &[0.0; 4]).is_ok());
    }

    /// A multi-tile graph with enough per-tile state to make parallel
    /// execution meaningful: each of `tiles` tiles owns a slice of `x`
    /// updated by `verts_per_tile` vertices.
    fn sharded_increment_graph(tiles: usize, verts_per_tile: usize) -> (Graph, Tensor) {
        let mut g = Graph::new(IpuConfig::tiny(tiles));
        let n = tiles * verts_per_tile;
        let x = g.add_tensor("x", DType::F32, n);
        for t in 0..tiles {
            g.map_slice(x.slice(t * verts_per_tile..(t + 1) * verts_per_tile), t)
                .unwrap();
        }
        let cs = g.add_compute_set("inc");
        for i in 0..n {
            let tile = i / verts_per_tile;
            let v = g
                .add_vertex(cs, tile, "inc", move |ctx| {
                    ctx.f32_mut(0)[0] += (i % 7) as f32 + 1.0;
                    // Uneven loads exercise the max-reduction.
                    5 + (i % 11) as u64
                })
                .unwrap();
            g.connect(v, x.element(i), Access::ReadWrite).unwrap();
        }
        (g, x)
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let run_with = |threads: usize| {
            let (g, x) = sharded_increment_graph(4, 16);
            let mut e = g
                .compile(Program::repeat(3, Program::execute(ComputeSetId(0))))
                .unwrap();
            e.set_host_threads(threads);
            e.set_parallel_threshold(1);
            e.write_f32(x, &[0.25; 64]).unwrap();
            e.run().unwrap();
            (e.read_f32(x), e.stats().clone())
        };
        let (seq_buf, seq_stats) = run_with(1);
        for threads in [2, 3, 8] {
            let (buf, stats) = run_with(threads);
            let seq_bits: Vec<u32> = seq_buf.iter().map(|v| v.to_bits()).collect();
            let bits: Vec<u32> = buf.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, seq_bits, "buffers diverged at {threads} threads");
            assert_eq!(stats, seq_stats, "stats diverged at {threads} threads");
        }
    }

    use crate::ComputeSetId;

    #[test]
    fn shard_bounds_are_monotone_tile_aligned_and_cover() {
        let (g, _) = sharded_increment_graph(5, 7);
        // 5 tiles * 7 vertices, cut for 3 lanes.
        let order: Vec<u32> = g.compute_sets[0]
            .vertices
            .iter()
            .map(|&v| v as u32)
            .collect();
        let bounds = shard_bounds(&order, &g.vertices, 3);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&(order.len() as u32)));
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1]);
            let cut = w[1] as usize;
            if cut > 0 && cut < order.len() {
                assert_ne!(
                    g.vertices[order[cut] as usize].tile,
                    g.vertices[order[cut - 1] as usize].tile,
                    "cut at {cut} splits a tile"
                );
            }
        }
    }

    #[test]
    fn more_lanes_than_vertices_is_harmless() {
        let (g, x) = sharded_increment_graph(2, 2);
        let mut e = g.compile(Program::execute(ComputeSetId(0))).unwrap();
        e.set_host_threads(16);
        e.set_parallel_threshold(1);
        e.write_f32(x, &[0.0; 4]).unwrap();
        e.run().unwrap();
        assert_eq!(e.host_threads(), 16);
        assert!(e.read_f32(x).iter().all(|&v| v > 0.0));
    }

    #[test]
    fn auto_thread_resolution_is_positive_and_clamped() {
        let (g, _) = sharded_increment_graph(2, 2);
        let mut e = g.compile(Program::execute(ComputeSetId(0))).unwrap();
        e.set_host_threads(0);
        assert!((1..=AUTO_THREAD_CAP).contains(&e.host_threads()));
        e.set_host_threads(10_000);
        assert_eq!(e.host_threads(), MAX_HOST_THREADS);
    }

    #[test]
    fn worker_panic_propagates_and_pool_shuts_down() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let cs = g.add_compute_set("boom");
        for t in 0..2 {
            g.add_vertex(cs, t, "v", move |_| {
                if t == 1 {
                    panic!("codelet exploded");
                }
                1
            })
            .unwrap();
        }
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.set_host_threads(2);
        e.set_parallel_threshold(1);
        let err = catch_unwind(AssertUnwindSafe(|| e.run())).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("codelet exploded"),
            "got panic payload {msg:?}"
        );
    }

    #[test]
    fn restore_rebuilds_raw_views() {
        let (g, x) = sharded_increment_graph(2, 4);
        let mut e = g.compile(Program::execute(ComputeSetId(0))).unwrap();
        e.set_host_threads(2);
        e.set_parallel_threshold(1);
        e.write_f32(x, &[1.0; 8]).unwrap();
        let snap = e.snapshot();
        e.run().unwrap();
        let after_first = e.read_f32(x);
        e.restore(&snap);
        assert_eq!(e.read_f32(x), vec![1.0; 8]);
        e.run().unwrap();
        assert_eq!(e.read_f32(x), after_first);
    }

    /// A program touching every profiled path: uneven compute, a
    /// cross-tile copy, and a repeat.
    fn profiled_program(tiles: usize, verts_per_tile: usize) -> (Graph, Tensor, Program) {
        let (mut g, x) = {
            let (g, x) = sharded_increment_graph(tiles, verts_per_tile);
            (g, x)
        };
        let y = g.add_tensor("y", DType::F32, verts_per_tile);
        g.map_to_tile(y, tiles - 1).unwrap();
        let program = Program::repeat(
            3,
            Program::seq(vec![
                Program::execute(ComputeSetId(0)),
                Program::copy(x.slice(0..verts_per_tile), y.whole()),
            ]),
        );
        (g, x, program)
    }

    #[test]
    fn profiler_reconciles_with_cycle_stats() {
        let (g, x, program) = profiled_program(4, 8);
        let mut e = g.compile(program).unwrap();
        e.enable_profiling(ProfileConfig::default());
        e.write_f32(x, &[0.0; 32]).unwrap();
        e.run().unwrap();
        let p = e.profile().unwrap().clone();
        let s = e.stats().clone();
        assert_eq!(p.compute_cycles, s.compute_cycles);
        assert_eq!(p.sync_cycles, s.sync_cycles);
        assert_eq!(p.exchange_cycles, s.exchange_cycles);
        assert_eq!(p.control_cycles, s.control_cycles);
        assert_eq!(p.supersteps, s.supersteps);
        assert_eq!(p.exchanges, s.exchanges);
        assert_eq!(p.exchange_bytes, s.exchange_bytes);
        assert_eq!(p.total_cycles(), s.total_cycles());
        assert_eq!(p.heatmap.values().sum::<u64>(), s.exchange_bytes);
        assert_eq!(p.occupancy.iter().sum::<u64>(), p.tile_supersteps);
        assert!(p.tile_compute.iter().sum::<u64>() > 0);
        // Per-superstep sum over events: cycles add up to the total.
        let event_compute: u64 = p
            .events
            .iter()
            .filter_map(|ev| match ev {
                crate::ProfileEvent::Superstep(ss) => Some(ss.cycles),
                _ => None,
            })
            .sum();
        assert_eq!(event_compute, s.compute_cycles);
    }

    #[test]
    fn profiling_disabled_changes_nothing() {
        let run = |profile: bool| {
            let (g, x, program) = profiled_program(4, 8);
            let mut e = g.compile(program).unwrap();
            if profile {
                e.enable_profiling(ProfileConfig::default());
            }
            e.write_f32(x, &[0.5; 32]).unwrap();
            e.run().unwrap();
            (e.stats().clone(), e.read_f32(x))
        };
        let (stats_off, buf_off) = run(false);
        let (stats_on, buf_on) = run(true);
        assert_eq!(stats_off, stats_on);
        assert_eq!(buf_off, buf_on);
    }

    #[test]
    fn profile_bit_identical_across_thread_counts() {
        let run_with = |threads: usize| {
            let (g, x, program) = profiled_program(4, 16);
            let mut e = g.compile(program).unwrap();
            e.set_host_threads(threads);
            e.set_parallel_threshold(1);
            e.enable_profiling(ProfileConfig::default());
            e.write_f32(x, &[0.0; 64]).unwrap();
            e.run().unwrap();
            (
                e.profile().unwrap().clone(),
                e.profile_report().unwrap(),
                e.chrome_trace(1, "ipu-sim").unwrap().to_json(),
            )
        };
        let base = run_with(1);
        for threads in [2, 3, 8] {
            let other = run_with(threads);
            assert_eq!(base.0, other.0, "raw profile diverged at {threads} threads");
            assert_eq!(base.1, other.1, "report diverged at {threads} threads");
            assert_eq!(base.2, other.2, "trace diverged at {threads} threads");
        }
    }

    #[test]
    fn chrome_trace_from_engine_validates() {
        let (g, x, program) = profiled_program(2, 4);
        let mut e = g.compile(program).unwrap();
        e.enable_profiling(ProfileConfig::default());
        e.write_f32(x, &[0.0; 8]).unwrap();
        e.run().unwrap();
        let json = e.chrome_trace(1, "ipu-sim").unwrap().to_json();
        let summary = trace::ChromeTrace::validate_json(&json).expect("schema-valid trace");
        assert!(summary.complete_events > 0);
        assert!(summary.span_us > 0.0);
    }

    #[test]
    fn broadcast_exchange_lands_in_heatmap_as_broadcast() {
        let mut g = Graph::new(IpuConfig::tiny(4));
        let s = g.add_tensor("s", DType::F32, 2);
        let d = g.add_replicated("d", DType::F32, 2);
        g.map_to_tile(s, 1).unwrap();
        let mut e = g.compile(Program::broadcast(s.whole(), d.whole())).unwrap();
        e.enable_profiling(ProfileConfig::default());
        e.write_f32(s, &[1.0, 2.0]).unwrap();
        e.run().unwrap();
        let p = e.profile().unwrap();
        assert_eq!(p.heatmap.len(), 1);
        assert_eq!(p.heatmap[&(1, BROADCAST_TILE)], 8);
        assert_eq!(p.heatmap.values().sum::<u64>(), e.stats().exchange_bytes);
    }

    #[test]
    fn profiler_ring_drops_oldest_but_keeps_aggregates() {
        let (g, x, program) = profiled_program(2, 4);
        let mut e = g.compile(program).unwrap();
        e.enable_profiling(ProfileConfig {
            max_events: 2,
            ..Default::default()
        });
        e.write_f32(x, &[0.0; 8]).unwrap();
        e.run().unwrap();
        let p = e.profile().unwrap();
        assert_eq!(p.events.len(), 2);
        assert!(p.dropped > 0);
        assert_eq!(p.compute_cycles, e.stats().compute_cycles);
    }
}
