//! The execution engine: interprets a compiled program against tensor
//! buffers, enforcing BSP semantics and charging the cycle model.

use crate::calibration::VERTEX_OVERHEAD;
use crate::codelet::{FieldBuf, VertexCtx};
use crate::error::GraphError;
use crate::fault::{FaultPlan, FaultState};
use crate::graph::Graph;
use crate::program::Program;
use crate::stats::{CycleStats, StepBreakdown};
use crate::tensor::{DType, Tensor, TensorSlice};
use std::collections::HashMap;

/// Typed storage for one tensor.
#[derive(Clone)]
enum Buffer {
    F32(Vec<f32>),
    I32(Vec<i32>),
}

/// A checkpoint of device memory and accounting, taken with
/// [`Engine::snapshot`] and reinstated with [`Engine::restore`].
///
/// Snapshots are opaque and tied to the engine (same graph, same tensor
/// set) that produced them. The fault RNG is deliberately *not* part of a
/// snapshot — see [`crate::FaultPlan`] — so a retry after `restore` draws
/// fresh faults instead of deterministically replaying the ones that
/// forced the rewind.
pub struct EngineSnapshot {
    buffers: Vec<Buffer>,
    stats: CycleStats,
}

/// Raw view of a buffer, used to hand out disjoint slices to vertex
/// fields without re-borrowing the `Vec` per field.
#[derive(Clone, Copy)]
enum RawBuf {
    F32(*mut f32, usize),
    I32(*mut i32, usize),
}

/// A compiled, runnable IPU program with its device state.
///
/// Obtained from [`Graph::compile`]; by then every static property
/// (mapping, memory, locality, race-freedom) has been validated, so
/// `run` can only fail on divergence of `RepeatWhileTrue`.
pub struct Engine {
    graph: Graph,
    program: Program,
    buffers: Vec<Buffer>,
    stats: CycleStats,
    /// Round-robin-resolved hardware thread of each vertex.
    vertex_thread: Vec<usize>,
    /// Scratch: instruction load per (tile, thread) during a superstep.
    thread_load: Vec<u64>,
    /// Scratch: (tile, thread) slots touched in the current superstep —
    /// lets the hot path avoid sweeping all 8832 slots per superstep.
    touched_slots: Vec<u32>,
    /// Memoized exchange cost per set of copy endpoints.
    copy_cost: HashMap<Vec<(TensorSlice, TensorSlice)>, u64>,
    /// Reused staging buffers for exchanges (copies go through staging,
    /// mirroring the real hardware's send/receive and keeping the
    /// semantics simple when source and destination share a tensor).
    scratch_f32: Vec<f32>,
    scratch_i32: Vec<i32>,
    /// Iteration guard for `RepeatWhileTrue`, initialized from
    /// [`crate::IpuConfig::max_while_iterations`] (overridable per engine).
    pub max_while_iterations: u64,
    /// Installed fault-injection state, if any.
    faults: Option<FaultState>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tensors", &self.graph.tensors.len())
            .field("compute_sets", &self.graph.compute_sets.len())
            .field("vertices", &self.graph.vertices.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Engine {
    pub(crate) fn new(graph: Graph, program: Program) -> Self {
        let buffers = graph
            .tensors
            .iter()
            .map(|t| match t.dtype {
                DType::F32 => Buffer::F32(vec![0.0; t.len]),
                DType::I32 => Buffer::I32(vec![0; t.len]),
            })
            .collect();
        // Resolve auto threads round-robin per (compute set, tile).
        let mut counters: HashMap<(usize, usize), usize> = HashMap::new();
        let tpt = graph.config.threads_per_tile;
        let vertex_thread = graph
            .vertices
            .iter()
            .map(|v| match v.thread {
                Some(t) => t,
                None => {
                    let c = counters.entry((v.cs, v.tile)).or_insert(0);
                    let t = *c % tpt;
                    *c += 1;
                    t
                }
            })
            .collect();
        let stats = CycleStats {
            per_compute_set: graph
                .compute_sets
                .iter()
                .map(|cs| StepBreakdown {
                    name: cs.name.clone(),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        let thread_load = vec![0u64; graph.config.tiles * tpt];
        let max_while_iterations = graph.config.max_while_iterations;
        Self {
            graph,
            program,
            buffers,
            stats,
            vertex_thread,
            thread_load,
            touched_slots: Vec::new(),
            copy_cost: HashMap::new(),
            scratch_f32: Vec::new(),
            scratch_i32: Vec::new(),
            max_while_iterations,
            faults: None,
        }
    }

    /// The accumulated cycle statistics.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// Zeroes the cycle statistics (buffers are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Modeled device seconds for everything run so far.
    pub fn modeled_seconds(&self) -> f64 {
        self.graph
            .config
            .cycles_to_seconds(self.stats.total_cycles())
    }

    /// The device configuration.
    pub fn config(&self) -> &crate::IpuConfig {
        &self.graph.config
    }

    /// Installs a fault plan: subsequent execution draws from the plan's
    /// deterministic fault stream (see [`FaultPlan`]). Replaces any
    /// previously installed plan and resets its RNG stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let flip_targets = self
            .graph
            .tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.len > 0
                    && plan
                        .flip_target
                        .as_deref()
                        .is_none_or(|needle| t.name.contains(needle))
            })
            .map(|(id, _)| id)
            .collect();
        self.faults = Some(FaultState::new(plan, flip_targets));
    }

    /// Removes the installed fault plan; execution becomes fault-free.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Checkpoints device memory and accounting.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            buffers: self.buffers.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Reinstates a checkpoint taken with [`Engine::snapshot`] on this
    /// engine: tensor contents and cycle accounting rewind; the fault RNG
    /// keeps advancing (see [`EngineSnapshot`]).
    ///
    /// # Panics
    /// Panics if the snapshot came from an engine with a different tensor
    /// set (a static programming error).
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        assert_eq!(
            self.buffers.len(),
            snapshot.buffers.len(),
            "snapshot is from a different graph"
        );
        self.buffers.clone_from(&snapshot.buffers);
        self.stats.clone_from(&snapshot.stats);
    }

    /// Host → device write of a whole f32 tensor (not charged to device
    /// time; bytes recorded in `stats.host_bytes`).
    pub fn write_f32(&mut self, tensor: Tensor, data: &[f32]) -> Result<(), GraphError> {
        match &mut self.buffers[tensor.id] {
            Buffer::F32(v) if v.len() == data.len() => {
                v.copy_from_slice(data);
                self.stats.host_bytes += (data.len() * 4) as u64;
                Ok(())
            }
            Buffer::F32(v) => Err(GraphError::Invalid {
                detail: format!(
                    "write_f32: tensor has {} elements, data has {}",
                    v.len(),
                    data.len()
                ),
            }),
            _ => Err(GraphError::Invalid {
                detail: "write_f32 on an i32 tensor".into(),
            }),
        }
    }

    /// Host → device write of a whole i32 tensor.
    pub fn write_i32(&mut self, tensor: Tensor, data: &[i32]) -> Result<(), GraphError> {
        match &mut self.buffers[tensor.id] {
            Buffer::I32(v) if v.len() == data.len() => {
                v.copy_from_slice(data);
                self.stats.host_bytes += (data.len() * 4) as u64;
                Ok(())
            }
            Buffer::I32(v) => Err(GraphError::Invalid {
                detail: format!(
                    "write_i32: tensor has {} elements, data has {}",
                    v.len(),
                    data.len()
                ),
            }),
            _ => Err(GraphError::Invalid {
                detail: "write_i32 on an f32 tensor".into(),
            }),
        }
    }

    /// Device → host read of a whole f32 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not f32 (a static programming error).
    pub fn read_f32(&mut self, tensor: Tensor) -> Vec<f32> {
        self.stats.host_bytes += (tensor.len * 4) as u64;
        match &self.buffers[tensor.id] {
            Buffer::F32(v) => v.clone(),
            _ => panic!("read_f32 on an i32 tensor"),
        }
    }

    /// Device → host read of a whole i32 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not i32 (a static programming error).
    pub fn read_i32(&mut self, tensor: Tensor) -> Vec<i32> {
        self.stats.host_bytes += (tensor.len * 4) as u64;
        match &self.buffers[tensor.id] {
            Buffer::I32(v) => v.clone(),
            _ => panic!("read_i32 on an f32 tensor"),
        }
    }

    /// Runs the compiled program once.
    ///
    /// # Errors
    /// [`GraphError::Divergence`] if a `RepeatWhileTrue` exceeds
    /// [`Engine::max_while_iterations`].
    pub fn run(&mut self) -> Result<(), GraphError> {
        let program = std::mem::replace(&mut self.program, Program::Sequence(Vec::new()));
        let result = self.exec(&program);
        self.program = program;
        result
    }

    fn exec(&mut self, program: &Program) -> Result<(), GraphError> {
        match program {
            Program::Sequence(items) => {
                for p in items {
                    self.exec(p)?;
                }
                Ok(())
            }
            Program::Execute(cs) => {
                self.exec_compute_set(cs.0);
                Ok(())
            }
            Program::Copy { src, dst } => {
                self.move_data(src, dst, 1);
                self.charge_exchange(std::slice::from_ref(&(*src, *dst)));
                self.inject_exchange_fault(std::slice::from_ref(dst));
                Ok(())
            }
            Program::Broadcast { src, dst } => {
                let reps = dst.len() / src.len();
                self.move_data(src, dst, reps);
                self.charge_exchange(std::slice::from_ref(&(*src, *dst)));
                self.inject_exchange_fault(std::slice::from_ref(dst));
                Ok(())
            }
            Program::Exchange(pairs) => {
                for (src, dst) in pairs {
                    self.move_data(src, dst, 1);
                }
                self.charge_exchange(pairs);
                if self.faults.is_some() {
                    let dsts: Vec<TensorSlice> = pairs.iter().map(|&(_, dst)| dst).collect();
                    self.inject_exchange_fault(&dsts);
                }
                Ok(())
            }
            Program::Repeat { count, body } => {
                for _ in 0..*count {
                    self.exec(body)?;
                }
                Ok(())
            }
            Program::If {
                predicate,
                then_body,
                else_body,
            } => {
                self.stats.control_cycles += self.graph.config.control_cycles;
                let flag = match &self.buffers[predicate.id] {
                    Buffer::I32(v) => v[0],
                    _ => unreachable!("predicate dtype validated at compile"),
                };
                if flag != 0 {
                    self.exec(then_body)
                } else {
                    self.exec(else_body)
                }
            }
            Program::RepeatWhileTrue { predicate, body } => {
                // Fault: the loop is declared non-convergent up front. The
                // watchdog would fire after `max_while_iterations` wasted
                // iterations; model that terminal state directly instead of
                // simulating millions of no-progress supersteps.
                if let Some(fs) = self.faults.as_mut() {
                    if fs.plan.diverge_rate > 0.0
                        && fs.armed(self.stats.supersteps)
                        && fs.draw() < fs.plan.diverge_rate
                    {
                        self.stats.faults.forced_divergences += 1;
                        self.stats.control_cycles += self.graph.config.control_cycles;
                        return Err(GraphError::Divergence {
                            limit: self.max_while_iterations,
                            context: self.loop_context(body),
                        });
                    }
                }
                let mut iterations = 0u64;
                loop {
                    self.stats.control_cycles += self.graph.config.control_cycles;
                    let flag = match &self.buffers[predicate.id] {
                        Buffer::I32(v) => v[0],
                        _ => unreachable!("predicate dtype validated at compile"),
                    };
                    if flag == 0 {
                        return Ok(());
                    }
                    iterations += 1;
                    if iterations > self.max_while_iterations {
                        return Err(GraphError::Divergence {
                            limit: self.max_while_iterations,
                            context: self.loop_context(body),
                        });
                    }
                    self.exec(body)?;
                }
            }
        }
    }

    /// Executes one compute set as a BSP superstep.
    fn exec_compute_set(&mut self, cs: usize) {
        let tpt = self.graph.config.threads_per_tile;
        debug_assert!(self.thread_load.iter().all(|&x| x == 0));
        self.touched_slots.clear();

        // Take raw base pointers once; field slices derive from these
        // without re-borrowing the Vecs (see SAFETY below).
        let raw: Vec<RawBuf> = self
            .buffers
            .iter_mut()
            .map(|b| match b {
                Buffer::F32(v) => RawBuf::F32(v.as_mut_ptr(), v.len()),
                Buffer::I32(v) => RawBuf::I32(v.as_mut_ptr(), v.len()),
            })
            .collect();

        for &vid in &self.graph.compute_sets[cs].vertices {
            let v = &self.graph.vertices[vid];
            let mut fields = Vec::with_capacity(v.fields.len());
            for (slice, access) in &v.fields {
                // SAFETY: `Graph::compile` validated that (a) every slice
                // is in bounds of its tensor, and (b) within this compute
                // set, any region connected with a write access overlaps
                // no other connected region. Vertices execute one at a
                // time and the derived references are dropped (with `ctx`)
                // before the next vertex runs, so the only simultaneous
                // references are the fields of one vertex — disjoint
                // whenever one of them is mutable, shared otherwise.
                // The raw base pointers stay valid for the whole loop:
                // `self.buffers` is not reallocated or re-borrowed here.
                let field = unsafe {
                    match (raw[slice.tensor.id], access.is_exclusive()) {
                        (RawBuf::F32(p, len), true) => {
                            debug_assert!(slice.end <= len);
                            FieldBuf::F32Mut(std::slice::from_raw_parts_mut(
                                p.add(slice.start),
                                slice.len(),
                            ))
                        }
                        (RawBuf::F32(p, len), false) => {
                            debug_assert!(slice.end <= len);
                            FieldBuf::F32(std::slice::from_raw_parts(
                                p.add(slice.start),
                                slice.len(),
                            ))
                        }
                        (RawBuf::I32(p, len), true) => {
                            debug_assert!(slice.end <= len);
                            FieldBuf::I32Mut(std::slice::from_raw_parts_mut(
                                p.add(slice.start),
                                slice.len(),
                            ))
                        }
                        (RawBuf::I32(p, len), false) => {
                            debug_assert!(slice.end <= len);
                            FieldBuf::I32(std::slice::from_raw_parts(
                                p.add(slice.start),
                                slice.len(),
                            ))
                        }
                    }
                };
                fields.push(field);
            }
            let ctx = VertexCtx::new(fields);
            let instructions = (v.codelet)(&ctx) + VERTEX_OVERHEAD;
            drop(ctx);
            let slot = v.tile * tpt + self.vertex_thread[vid];
            if self.thread_load[slot] == 0 {
                self.touched_slots.push(slot as u32);
            }
            self.thread_load[slot] += instructions;
        }

        // Tile cost: the barrel scheduler rotates over all `tpt` thread
        // slots, so a tile finishes after `tpt * max_thread(instructions)`
        // cycles; the superstep lasts as long as the slowest tile (C3).
        // The chip-wide max over tiles equals `tpt *` the max over all
        // touched slots.
        let mut worst = 0u64;
        for &slot in &self.touched_slots {
            worst = worst.max(self.thread_load[slot as usize]);
            self.thread_load[slot as usize] = 0;
        }
        let superstep = worst * tpt as u64;
        self.stats.compute_cycles += superstep;
        self.stats.sync_cycles += self.graph.config.sync_cycles;
        self.stats.supersteps += 1;
        let b = &mut self.stats.per_compute_set[cs];
        b.executions += 1;
        b.compute_cycles += superstep;
        if self.faults.is_some() {
            self.inject_superstep_faults(cs, superstep);
        }
    }

    /// Fault hook run after each superstep: straggler inflation and SRAM
    /// bit flips (see [`FaultPlan`]).
    fn inject_superstep_faults(&mut self, cs: usize, superstep: u64) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        if !fs.armed(self.stats.supersteps) {
            return;
        }
        if fs.plan.straggler_rate > 0.0 && fs.draw() < fs.plan.straggler_rate {
            // The slowest tile ran `straggler_factor` times slower; under
            // BSP the whole chip waits for it (C3).
            let extra = (superstep as f64 * (fs.plan.straggler_factor - 1.0)).ceil() as u64;
            self.stats.compute_cycles += extra;
            self.stats.per_compute_set[cs].compute_cycles += extra;
            self.stats.faults.stragglers += 1;
            self.stats.faults.straggler_cycles += extra;
        }
        if fs.plan.bit_flip_rate > 0.0
            && !fs.flip_targets.is_empty()
            && fs.draw() < fs.plan.bit_flip_rate
        {
            let target = fs.draw_index(fs.flip_targets.len());
            let tensor = fs.flip_targets[target];
            let (element, bit) = match &self.buffers[tensor] {
                Buffer::F32(v) => (fs.draw_index(v.len()), fs.draw_index(32)),
                Buffer::I32(v) => (fs.draw_index(v.len()), fs.draw_index(32)),
            };
            Self::flip_bit(&mut self.buffers[tensor], element, bit);
            self.stats.faults.bit_flips += 1;
        }
    }

    /// Fault hook run after each exchange phase: corrupts one delivered
    /// element of one destination slice.
    fn inject_exchange_fault(&mut self, dsts: &[TensorSlice]) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        if fs.plan.exchange_rate == 0.0
            || dsts.is_empty()
            || !fs.armed(self.stats.supersteps)
            || fs.draw() >= fs.plan.exchange_rate
        {
            return;
        }
        let slice = dsts[fs.draw_index(dsts.len())];
        if slice.is_empty() {
            return;
        }
        let element = slice.start + fs.draw_index(slice.len());
        let bit = fs.draw_index(32);
        Self::flip_bit(&mut self.buffers[slice.tensor.id], element, bit);
        self.stats.faults.exchange_corruptions += 1;
    }

    fn flip_bit(buffer: &mut Buffer, element: usize, bit: usize) {
        match buffer {
            Buffer::F32(v) => v[element] = f32::from_bits(v[element].to_bits() ^ (1u32 << bit)),
            Buffer::I32(v) => v[element] ^= 1i32 << bit,
        }
    }

    /// Diagnostic label for a diverging loop: the name of the first
    /// compute set executed in its body.
    fn loop_context(&self, body: &Program) -> String {
        fn first_cs(p: &Program) -> Option<usize> {
            match p {
                Program::Execute(cs) => Some(cs.0),
                Program::Sequence(items) => items.iter().find_map(first_cs),
                Program::Repeat { body, .. } => first_cs(body),
                Program::RepeatWhileTrue { body, .. } => first_cs(body),
                Program::If {
                    then_body,
                    else_body,
                    ..
                } => first_cs(then_body).or_else(|| first_cs(else_body)),
                _ => None,
            }
        }
        match first_cs(body) {
            Some(cs) => self.graph.compute_sets[cs].name.clone(),
            None => "<empty loop body>".to_string(),
        }
    }

    /// Moves data for one copy: `dst` receives `reps` repetitions of
    /// `src` (1 for plain copies).
    fn move_data(&mut self, src: &TensorSlice, dst: &TensorSlice, reps: usize) {
        // Move the data through a temporary, which also handles
        // broadcast replication. (Copies were validated non-overlapping.)
        match src.tensor.dtype {
            DType::F32 => {
                let tmp = &mut self.scratch_f32;
                tmp.clear();
                match &self.buffers[src.tensor.id] {
                    Buffer::F32(v) => tmp.extend_from_slice(&v[src.range()]),
                    _ => unreachable!("dtype validated"),
                };
                match &mut self.buffers[dst.tensor.id] {
                    Buffer::F32(v) => {
                        for r in 0..reps {
                            let off = dst.start + r * tmp.len();
                            v[off..off + tmp.len()].copy_from_slice(tmp);
                        }
                    }
                    _ => unreachable!("dtype validated"),
                }
            }
            DType::I32 => {
                let tmp = &mut self.scratch_i32;
                tmp.clear();
                match &self.buffers[src.tensor.id] {
                    Buffer::I32(v) => tmp.extend_from_slice(&v[src.range()]),
                    _ => unreachable!("dtype validated"),
                };
                match &mut self.buffers[dst.tensor.id] {
                    Buffer::I32(v) => {
                        for r in 0..reps {
                            let off = dst.start + r * tmp.len();
                            v[off..off + tmp.len()].copy_from_slice(tmp);
                        }
                    }
                    _ => unreachable!("dtype validated"),
                }
            }
        }
    }

    /// Charges one exchange phase covering all `pairs`.
    ///
    /// The phase duration is bounded by the busiest tile: bytes it sends
    /// plus bytes it receives at the on-chip fabric bandwidth, plus any
    /// bytes it moves **across a chip boundary** at the (much slower)
    /// IPU-Link bandwidth — multi-IPU systems share one exchange address
    /// space (§III) but not one fabric. A broadcast source is charged
    /// once per receiving chip — the exchange is a per-tile wire every
    /// same-chip destination can listen to (multicast). Costs are
    /// memoized per pair set (the mapping is static).
    fn charge_exchange(&mut self, pairs: &[(TensorSlice, TensorSlice)]) {
        let cost = if let Some(&c) = self.copy_cost.get(pairs) {
            c
        } else {
            let config = &self.graph.config;
            let tiles = config.tiles;
            let mut local = vec![0u64; tiles];
            let mut remote = vec![0u64; tiles];
            for (src, dst) in pairs {
                let si = &self.graph.tensors[src.tensor.id];
                let di = &self.graph.tensors[dst.tensor.id];
                if di.replicated {
                    // Every tile receives its replica on-chip; the source
                    // pushes one copy across each other chip's links.
                    let bytes = (dst.len() * dst.tensor.dtype.size_bytes()) as u64;
                    local.iter_mut().for_each(|b| *b += bytes);
                    si.bytes_per_tile(src.start, src.end, &mut local);
                    if config.ipus > 1 {
                        let mut src_only = vec![0u64; tiles];
                        si.bytes_per_tile(src.start, src.end, &mut src_only);
                        for (t, &b) in src_only.iter().enumerate() {
                            remote[t] += b * (config.ipus as u64 - 1);
                        }
                    }
                    continue;
                }
                // Walk src/dst intervals in lockstep, classifying each
                // overlapped segment as on-chip or chip-crossing.
                let esz = src.tensor.dtype.size_bytes() as u64;
                let mut o = 0usize;
                while o < src.len() {
                    let (se, st) = si.interval_at(src.start + o);
                    let (de, dt) = di.interval_at(dst.start + o);
                    let seg_end = (se - src.start).min(de - dst.start).min(src.len());
                    let bytes = (seg_end - o) as u64 * esz;
                    if config.ipu_of(st) == config.ipu_of(dt) {
                        local[st] += bytes;
                        local[dt] += bytes;
                    } else {
                        remote[st] += bytes;
                        remote[dt] += bytes;
                    }
                    o = seg_end;
                }
            }
            let mut worst = 0.0f64;
            for t in 0..tiles {
                let cycles = local[t] as f64 / config.exchange_bytes_per_cycle
                    + remote[t] as f64 / config.inter_ipu_bytes_per_cycle;
                worst = worst.max(cycles);
            }
            let c = config.exchange_setup_cycles + worst.ceil() as u64;
            self.copy_cost.insert(pairs.to_vec(), c);
            c
        };
        self.stats.exchange_cycles += cost;
        self.stats.sync_cycles += self.graph.config.sync_cycles;
        self.stats.exchanges += 1;
        self.stats.exchange_bytes += pairs.iter().map(|(_, dst)| dst.bytes() as u64).sum::<u64>();
    }

    /// Direct (host-side) peek at an f32 region — intended for tests and
    /// debugging; does not touch accounting.
    pub fn peek_f32(&self, slice: TensorSlice) -> Vec<f32> {
        match &self.buffers[slice.tensor.id] {
            Buffer::F32(v) => v[slice.range()].to_vec(),
            _ => panic!("peek_f32 on an i32 tensor"),
        }
    }

    /// Direct (host-side) peek at an i32 region.
    pub fn peek_i32(&self, slice: TensorSlice) -> Vec<i32> {
        match &self.buffers[slice.tensor.id] {
            Buffer::I32(v) => v[slice.range()].to_vec(),
            _ => panic!("peek_i32 on an f32 tensor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cost, Access, DType, Graph, IpuConfig, Program};

    #[test]
    fn simple_compute_runs_and_charges_cycles() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let x = g.add_tensor("x", DType::F32, 4);
        g.map_to_tile(x, 0).unwrap();
        let cs = g.add_compute_set("inc");
        let v = g
            .add_vertex(cs, 0, "inc", |ctx| {
                let mut x = ctx.f32_mut(0);
                for e in x.iter_mut() {
                    *e += 1.0;
                }
                cost::f32_update(x.len())
            })
            .unwrap();
        g.connect(v, x.whole(), Access::ReadWrite).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.write_f32(x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(x), vec![2.0, 3.0, 4.0, 5.0]);
        assert!(e.stats().compute_cycles > 0);
        assert_eq!(e.stats().supersteps, 1);
        assert!(e.modeled_seconds() > 0.0);
    }

    #[test]
    fn superstep_cost_is_max_over_tiles_times_thread_slots() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let cs = g.add_compute_set("work");
        // Tile 0: 100-instruction vertex; tile 1: 10-instruction vertex.
        g.add_vertex(cs, 0, "heavy", |_| 100).unwrap();
        g.add_vertex(cs, 1, "light", |_| 10).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.run().unwrap();
        // Max thread load on the slowest tile = 100 + overhead, times the
        // 6 barrel slots.
        assert_eq!(e.stats().compute_cycles, (100 + VERTEX_OVERHEAD) * 6);
    }

    #[test]
    fn balanced_threads_beat_single_thread() {
        // 600 instructions on one thread vs 100 on each of six threads:
        // the balanced version is 6x faster (C3: workload balance).
        let single = {
            let mut g = Graph::new(IpuConfig::tiny(1));
            let cs = g.add_compute_set("w");
            g.add_vertex_on_thread(cs, 0, 0, "all", |_| 600).unwrap();
            let mut e = g.compile(Program::execute(cs)).unwrap();
            e.run().unwrap();
            e.stats().compute_cycles
        };
        let balanced = {
            let mut g = Graph::new(IpuConfig::tiny(1));
            let cs = g.add_compute_set("w");
            for t in 0..6 {
                g.add_vertex_on_thread(cs, 0, t, "seg", |_| 100).unwrap();
            }
            let mut e = g.compile(Program::execute(cs)).unwrap();
            e.run().unwrap();
            e.stats().compute_cycles
        };
        assert!(single > 5 * balanced);
    }

    #[test]
    fn copy_moves_data_and_charges_exchange() {
        let mut g = Graph::new(IpuConfig::tiny(2));
        let a = g.add_tensor("a", DType::I32, 4);
        let b = g.add_tensor("b", DType::I32, 4);
        g.map_to_tile(a, 0).unwrap();
        g.map_to_tile(b, 1).unwrap();
        let mut e = g.compile(Program::copy(a.whole(), b.whole())).unwrap();
        e.write_i32(a, &[1, 2, 3, 4]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(b), vec![1, 2, 3, 4]);
        assert!(e.stats().exchange_cycles > 0);
        assert_eq!(e.stats().exchanges, 1);
        assert_eq!(e.stats().exchange_bytes, 16);
    }

    #[test]
    fn broadcast_replicates() {
        let mut g = Graph::new(IpuConfig::tiny(4));
        let s = g.add_tensor("s", DType::F32, 1);
        let d = g.add_tensor("d", DType::F32, 4);
        g.map_to_tile(s, 0).unwrap();
        g.map_evenly(d).unwrap();
        let mut e = g.compile(Program::broadcast(s.whole(), d.whole())).unwrap();
        e.write_f32(s, &[7.5]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(d), vec![7.5; 4]);
    }

    #[test]
    fn repeat_runs_body_n_times() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let x = g.add_tensor("x", DType::I32, 1);
        g.map_to_tile(x, 0).unwrap();
        let cs = g.add_compute_set("inc");
        let v = g
            .add_vertex(cs, 0, "inc", |ctx| {
                ctx.i32_mut(0)[0] += 1;
                1
            })
            .unwrap();
        g.connect(v, x.whole(), Access::ReadWrite).unwrap();
        let mut e = g.compile(Program::repeat(5, Program::execute(cs))).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(x), vec![5]);
        assert_eq!(e.stats().supersteps, 5);
    }

    #[test]
    fn while_loop_runs_until_predicate_clears() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let flag = g.add_tensor("flag", DType::I32, 1);
        let count = g.add_tensor("count", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        g.map_to_tile(count, 0).unwrap();
        let cs = g.add_compute_set("tick");
        let v = g
            .add_vertex(cs, 0, "tick", |ctx| {
                let mut c = ctx.i32_mut(1);
                c[0] += 1;
                let mut f = ctx.i32_mut(0);
                f[0] = i32::from(c[0] < 7);
                3
            })
            .unwrap();
        g.connect(v, flag.whole(), Access::ReadWrite).unwrap();
        g.connect(v, count.whole(), Access::ReadWrite).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::execute(cs)))
            .unwrap();
        e.write_i32(flag, &[1]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(count), vec![7]);
        assert!(e.stats().control_cycles > 0);
    }

    #[test]
    fn diverging_while_is_caught() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let flag = g.add_tensor("flag", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::seq(vec![])))
            .unwrap();
        e.max_while_iterations = 100;
        e.write_i32(flag, &[1]).unwrap();
        assert!(matches!(
            e.run(),
            Err(GraphError::Divergence { limit: 100, .. })
        ));
    }

    #[test]
    fn divergence_guard_comes_from_config_and_names_the_loop() {
        let mut g = Graph::new(IpuConfig {
            max_while_iterations: 25,
            ..IpuConfig::tiny(1)
        });
        let flag = g.add_tensor("flag", DType::I32, 1);
        g.map_to_tile(flag, 0).unwrap();
        let cs = g.add_compute_set("spin_step");
        let v = g.add_vertex(cs, 0, "noop", |_| 1).unwrap();
        g.connect(v, flag.whole(), Access::Read).unwrap();
        let mut e = g
            .compile(Program::while_true(flag, Program::execute(cs)))
            .unwrap();
        e.write_i32(flag, &[1]).unwrap();
        let err = e.run().unwrap_err();
        match &err {
            GraphError::Divergence { limit, context } => {
                assert_eq!(*limit, 25);
                assert_eq!(context, "spin_step");
            }
            other => panic!("expected Divergence, got {other:?}"),
        }
        assert!(err.to_string().contains("spin_step"));
    }

    #[test]
    fn stats_reset_and_rerun() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let cs = g.add_compute_set("w");
        g.add_vertex(cs, 0, "v", |_| 10).unwrap();
        let mut e = g.compile(Program::execute(cs)).unwrap();
        e.run().unwrap();
        let first = e.stats().total_cycles();
        e.reset_stats();
        assert_eq!(e.stats().total_cycles(), 0);
        e.run().unwrap();
        assert_eq!(e.stats().total_cycles(), first);
        assert_eq!(e.stats().per_compute_set[0].executions, 1);
    }

    #[test]
    fn per_compute_set_breakdown_accumulates() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let cs1 = g.add_compute_set("first");
        let cs2 = g.add_compute_set("second");
        g.add_vertex(cs1, 0, "a", |_| 5).unwrap();
        g.add_vertex(cs2, 0, "b", |_| 7).unwrap();
        let prog = Program::seq(vec![
            Program::execute(cs1),
            Program::execute(cs2),
            Program::execute(cs1),
        ]);
        let mut e = g.compile(prog).unwrap();
        e.run().unwrap();
        let b = &e.stats().per_compute_set;
        assert_eq!(b[0].name, "first");
        assert_eq!(b[0].executions, 2);
        assert_eq!(b[1].executions, 1);
    }

    #[test]
    fn host_io_validates_shape_and_dtype() {
        let mut g = Graph::new(IpuConfig::tiny(1));
        let x = g.add_tensor("x", DType::F32, 4);
        g.map_to_tile(x, 0).unwrap();
        let mut e = g.compile(Program::seq(vec![])).unwrap();
        assert!(e.write_f32(x, &[0.0; 3]).is_err());
        assert!(e.write_i32(x, &[0; 4]).is_err());
        assert!(e.write_f32(x, &[0.0; 4]).is_ok());
    }
}
