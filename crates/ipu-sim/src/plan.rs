//! Pre-resolved execution plans: the straight-line lowering of a compiled
//! program.
//!
//! The interpreted engine (`ExecCtx` in `engine.rs`) walks the
//! [`ExecNode`] tree every run, re-deriving per-vertex field views from
//! `RawBufs` each superstep and re-deciding shard cuts and exchange costs
//! as it goes. For large instances that interpretive overhead — enum
//! dispatch per node, a `Vec` of field views allocated per vertex per
//! superstep, cost memo lookups per exchange — dominates the host
//! wall-clock. This module flattens the whole program once, at
//! [`crate::Graph::compile`], into:
//!
//! - a flat op list ([`PlanOp`]) executed with an instruction pointer —
//!   loops become `LoopInit`/`LoopBack` over runtime counter slots,
//!   while-loops become `WhileEnter`/`WhileHead`/`Jump`, and **maximal
//!   runs of consecutive compute sets become a single [`PlanOp::Run`]**
//!   that a worker pool executes with no intra-run barriers;
//! - per-vertex field views resolved to raw pointers once ([`PlanField`]),
//!   so executing a vertex is "wrap pointers, call closure" with zero
//!   allocation;
//! - exchange programs flattened to static copy lists ([`PlanCopy`]) with
//!   the modeled cost and byte count precomputed at build time, executed
//!   as direct `memcpy`-style copies (per-pair overlap was rejected at
//!   compile, so staging through scratch is needed only for the one
//!   overlap-capable case: a broadcast within one tensor).
//!
//! **Fused runs are race-free** because workers own *tiles*, not slices
//! of a compute set: the tile→lane partition is global (consistent across
//! every step of a run), `Graph::validate_locality` proved every
//! non-replicated vertex field wholly tile-local, and replicated tensors
//! are vertex-read-only and only written by exchanges — which always
//! terminate a run. So a lane racing ahead to step *k+1* on its tiles
//! can only touch memory no other lane reads or writes during the run.
//!
//! The plan executor itself lives in `engine.rs` (it shares `RunState`,
//! the fault hooks, and the profiler epilogue with the interpreter — one
//! epilogue, bit-identical results); this module owns the data layout and
//! the builder.

use crate::codelet::FieldBuf;
use crate::engine::{exchange_cost, RawBufs};
use crate::exec::ExecNode;
use crate::graph::{Graph, VertexInfo};
use crate::tensor::{Tensor, TensorSlice};

/// Dtype + access of one pre-resolved field view.
#[derive(Clone, Copy)]
pub(crate) enum FieldKind {
    F32,
    F32Mut,
    I32,
    I32Mut,
}

/// One vertex field, resolved to a raw base pointer at plan build.
///
/// `tensor`/`start` are kept so the pointer can be re-derived after
/// [`crate::Engine::restore`] rebuilds the raw buffer views.
pub(crate) struct PlanField {
    ptr: *mut u8,
    len: u32,
    kind: FieldKind,
    tensor: u32,
    start: u32,
}

impl PlanField {
    fn new(raw: &RawBufs, slice: &TensorSlice, exclusive: bool) -> Self {
        let (base, len, dtype) = raw.raw_parts(slice.tensor.id);
        debug_assert!(slice.end <= len);
        let kind = match (dtype, exclusive) {
            (crate::tensor::DType::F32, false) => FieldKind::F32,
            (crate::tensor::DType::F32, true) => FieldKind::F32Mut,
            (crate::tensor::DType::I32, false) => FieldKind::I32,
            (crate::tensor::DType::I32, true) => FieldKind::I32Mut,
        };
        // SAFETY: `slice.end <= len` was validated at compile, so the
        // offset stays inside the tensor's allocation.
        let ptr = unsafe { base.add(slice.start * dtype.size_bytes()) };
        Self {
            ptr,
            len: slice.len() as u32,
            kind,
            tensor: slice.tensor.id as u32,
            start: slice.start as u32,
        }
    }

    /// Re-derives the pointer from a rebuilt [`RawBufs`] (after
    /// `Engine::restore`).
    fn rebind(&mut self, raw: &RawBufs) {
        let (base, _, dtype) = raw.raw_parts(self.tensor as usize);
        // SAFETY: same offset that was validated at construction.
        self.ptr = unsafe { base.add(self.start as usize * dtype.size_bytes()) };
    }

    /// The plain-data field view for the cell arena. No reference is
    /// created here — the typed slices are materialized inside the
    /// `VertexCtx` accessors under the engine's aliasing contract — so
    /// an arena of these can be built once per run and reused for every
    /// superstep. The pointer must be current (rebind after `restore`).
    #[inline]
    pub(crate) fn buf(&self) -> FieldBuf {
        let len = self.len;
        match self.kind {
            FieldKind::F32 => FieldBuf::F32 {
                ptr: self.ptr as *const f32,
                len,
            },
            FieldKind::F32Mut => FieldBuf::F32Mut {
                ptr: self.ptr as *mut f32,
                len,
            },
            FieldKind::I32 => FieldBuf::I32 {
                ptr: self.ptr as *const i32,
                len,
            },
            FieldKind::I32Mut => FieldBuf::I32Mut {
                ptr: self.ptr as *mut i32,
                len,
            },
        }
    }
}

/// One vertex of a plan step: everything the hot loop needs, pre-resolved.
pub(crate) struct PlanVertex {
    /// Index into `graph.vertices` (for the codelet closure).
    pub(crate) vid: u32,
    /// `tile * threads_per_tile + thread` — the load-accounting slot.
    pub(crate) slot: u32,
    /// First field in the [`PlanShared::fields`] arena.
    pub(crate) field_start: u32,
    /// Number of fields.
    pub(crate) field_count: u32,
}

/// One compute set, pre-sharded: vertices stably sorted by tile, with
/// lane bounds derived from the **global** tile→lane partition (the same
/// partition for every step, which is what makes fused runs race-free).
pub(crate) struct PlanStep {
    pub(crate) verts: Vec<PlanVertex>,
    /// `workers + 1` monotone cut indices into `verts`; lane `w` executes
    /// `verts[bounds[w]..bounds[w + 1]]`.
    pub(crate) bounds: Vec<u32>,
}

/// The plan data shared read-only with worker threads.
pub(crate) struct PlanShared {
    /// Field-view arena, indexed by [`PlanVertex::field_start`].
    pub(crate) fields: Vec<PlanField>,
    /// Per-compute-set pre-sharded steps (parallel to
    /// `graph.compute_sets`).
    pub(crate) steps: Vec<PlanStep>,
    /// Compute-set id of every `Execute` occurrence, in flattened program
    /// order; [`PlanOp::Run`] indexes a contiguous range of this.
    pub(crate) step_seq: Vec<u32>,
}

// SAFETY: `PlanField` pointers target the same heap allocations as
// `RawBufs` (see its Send/Sync justification in `engine.rs`): owned by
// the engine's buffers, never reallocated while views exist, and proved
// race-free across any tile-aligned partition by the compile-time
// validation. Workers only read the plan tables themselves.
unsafe impl Send for PlanShared {}
unsafe impl Sync for PlanShared {}

impl PlanShared {
    /// Recomputes every step's lane bounds for a new worker count.
    pub(crate) fn recut(&mut self, graph: &Graph, workers: usize) {
        let cuts = tile_cuts(graph, workers);
        for step in &mut self.steps {
            step.bounds = step_bounds(&step.verts, &graph.vertices, &cuts);
        }
    }

    /// Re-derives every field pointer after the raw buffer views were
    /// rebuilt (the `Engine::restore` path).
    pub(crate) fn rebind_fields(&mut self, raw: &RawBufs) {
        for f in &mut self.fields {
            f.rebind(raw);
        }
    }

    /// Builds the per-run cell arena: one `RefCell<FieldBuf>` per plan
    /// field, indexed exactly like [`PlanShared::fields`]. Executing a
    /// vertex is then just slicing `arena[field_start..field_start +
    /// field_count]` — zero per-vertex setup. Each execution lane builds
    /// its own arena (the borrow flags are not thread-safe); the flags
    /// always return to "unborrowed" when a codelet returns or unwinds,
    /// so one arena serves every superstep of a run.
    pub(crate) fn cell_arena(&self) -> Vec<std::cell::RefCell<FieldBuf>> {
        self.fields
            .iter()
            .map(|f| std::cell::RefCell::new(f.buf()))
            .collect()
    }
}

/// One copy of a flattened exchange phase.
#[derive(Clone)]
pub(crate) struct CopySeg {
    pub(crate) src: TensorSlice,
    pub(crate) dst: TensorSlice,
    /// Repetitions of `src` delivered into `dst` (broadcast replication).
    pub(crate) reps: u32,
    /// Stage through scratch instead of copying directly. Only a
    /// broadcast within one tensor can overlap (every other copy shape
    /// was rejected at compile if its endpoints overlapped), but the flag
    /// is computed generally.
    pub(crate) staged: bool,
}

/// One exchange phase, flattened to a static copy list with its modeled
/// cost and byte count precomputed at build (the mapping is static, so
/// they never change between executions).
pub(crate) struct PlanCopy {
    /// The original per-pair segments. The profiler (per-pair tile
    /// bytes) and fault injection (per-destination draws) iterate these,
    /// which is what keeps profiles and `FaultStats` bit-identical to
    /// the interpreter's per-pair walk.
    pub(crate) segs: Vec<CopySeg>,
    /// Exec-only view with adjacent segments coalesced (see
    /// [`merge_exec_segs`]): a scatter that lands contiguously — the
    /// common case for gather/mirror exchanges — becomes one `memcpy`
    /// instead of hundreds. Writes the same bytes in the same order as
    /// `segs`. Modeled cost/bytes are computed from the original pairs.
    pub(crate) exec_segs: Vec<CopySeg>,
    pub(crate) cost: u64,
    pub(crate) bytes: u64,
}

/// One instruction of the flattened program.
pub(crate) enum PlanOp {
    /// Execute `count` consecutive supersteps
    /// (`step_seq[first..first + count]`), fused into one pool dispatch
    /// when parallel; `verts` is the total vertex count across them.
    Run { first: u32, count: u32, verts: u32 },
    /// Execute one exchange phase (index into [`ExecPlan::copies`]).
    Copy(u32),
    /// Enter a counted loop: set counter `slot` to `count`, or jump to
    /// `exit` when `count == 0`.
    LoopInit { slot: u32, count: u64, exit: u32 },
    /// Bottom of a counted loop: decrement counter `slot`, jump to
    /// `target` while nonzero.
    LoopBack { slot: u32, target: u32 },
    /// Entry of a device-predicated loop: the forced-divergence fault
    /// check (drawn **once** per loop entry, preserving the interpreter's
    /// RNG draw order) and the iteration-counter reset.
    WhileEnter { iters: u32, context: u32 },
    /// Top-of-iteration check of a device-predicated loop: charge control
    /// cycles, read the predicate, jump to `exit` when clear, and trip
    /// the divergence watchdog via counter `iters`.
    WhileHead {
        predicate: Tensor,
        exit: u32,
        iters: u32,
        context: u32,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Device-predicated branch: charge control cycles, read the
    /// predicate, fall through when set, jump to `else_target` when
    /// clear.
    IfHead { predicate: Tensor, else_target: u32 },
}

/// A compiled program lowered to straight-line form. Built once at
/// [`crate::Graph::compile`]; executed by `PlanExec` in `engine.rs`.
pub(crate) struct ExecPlan {
    pub(crate) ops: Vec<PlanOp>,
    pub(crate) copies: Vec<PlanCopy>,
    pub(crate) shared: PlanShared,
    /// Divergence-diagnostic labels, indexed by `WhileEnter`/`WhileHead`.
    pub(crate) contexts: Vec<String>,
    /// Runtime counter slots needed (loop counters + while watchdogs).
    pub(crate) n_slots: usize,
    /// Largest `verts` of any [`PlanOp::Run`] — the pool-spawn gate.
    pub(crate) max_run_verts: usize,
}

/// Cuts tiles into `workers` contiguous ranges balanced by total vertex
/// count across all compute sets. Returns `workers + 1` monotone tile
/// ids starting at 0 and ending at `tiles`.
fn tile_cuts(graph: &Graph, workers: usize) -> Vec<u32> {
    let tiles = graph.config.tiles;
    let mut weight = vec![0u64; tiles];
    for v in &graph.vertices {
        weight[v.tile] += 1;
    }
    let total: u64 = weight.iter().sum();
    let mut cuts = Vec::with_capacity(workers + 1);
    cuts.push(0u32);
    let mut acc = 0u64;
    let mut tile = 0usize;
    for w in 1..workers {
        let target = total * w as u64 / workers as u64;
        while tile < tiles && acc < target {
            acc += weight[tile];
            tile += 1;
        }
        cuts.push(tile as u32);
    }
    cuts.push(tiles as u32);
    cuts
}

/// Translates tile cuts into index bounds over one step's tile-sorted
/// vertex list.
fn step_bounds(verts: &[PlanVertex], vertices: &[VertexInfo], cuts: &[u32]) -> Vec<u32> {
    cuts.iter()
        .map(|&c| verts.partition_point(|pv| (vertices[pv.vid as usize].tile as u32) < c) as u32)
        .collect()
}

fn build_shared(
    graph: &Graph,
    vertex_thread: &[usize],
    raw: &RawBufs,
    workers: usize,
) -> PlanShared {
    let tpt = graph.config.threads_per_tile;
    let mut fields = Vec::new();
    let mut vert_fields = Vec::with_capacity(graph.vertices.len());
    for v in &graph.vertices {
        let start = fields.len() as u32;
        for (slice, access) in &v.fields {
            fields.push(PlanField::new(raw, slice, access.is_exclusive()));
        }
        vert_fields.push((start, v.fields.len() as u32));
    }
    let cuts = tile_cuts(graph, workers);
    let steps = graph
        .compute_sets
        .iter()
        .map(|cs| {
            let mut verts: Vec<PlanVertex> = cs
                .vertices
                .iter()
                .map(|&vid| {
                    let v = &graph.vertices[vid];
                    PlanVertex {
                        vid: vid as u32,
                        slot: (v.tile * tpt + vertex_thread[vid]) as u32,
                        field_start: vert_fields[vid].0,
                        field_count: vert_fields[vid].1,
                    }
                })
                .collect();
            // Stable: within a tile, program order is preserved (loads
            // sum per slot, so any order is bit-identical anyway).
            verts.sort_by_key(|pv| graph.vertices[pv.vid as usize].tile);
            let bounds = step_bounds(&verts, &graph.vertices, &cuts);
            PlanStep { verts, bounds }
        })
        .collect();
    PlanShared {
        fields,
        steps,
        step_seq: Vec::new(),
    }
}

fn seg_overlaps(src: &TensorSlice, dst: &TensorSlice) -> bool {
    src.tensor.id == dst.tensor.id && src.start < dst.end && dst.start < src.end
}

/// Coalesces runs of adjacent copy segments into single segments for
/// execution. Two neighbours merge when both are plain one-shot direct
/// copies (`reps == 1`, unstaged), their sources abut in one tensor,
/// their destinations abut in another, and the widened segment would
/// still be overlap-free (two individually disjoint src/dst ranges in
/// the *same* tensor can overlap once widened — those stay split).
/// Merging preserves byte-for-byte the writes and their order.
fn merge_exec_segs(segs: &[CopySeg]) -> Vec<CopySeg> {
    let mut out: Vec<CopySeg> = Vec::with_capacity(segs.len());
    for seg in segs {
        if let Some(last) = out.last_mut() {
            if last.reps == 1
                && seg.reps == 1
                && !last.staged
                && !seg.staged
                && last.src.tensor.id == seg.src.tensor.id
                && last.dst.tensor.id == seg.dst.tensor.id
                && last.src.end == seg.src.start
                && last.dst.end == seg.dst.start
            {
                let src = TensorSlice {
                    end: seg.src.end,
                    ..last.src
                };
                let dst = TensorSlice {
                    end: seg.dst.end,
                    ..last.dst
                };
                if !seg_overlaps(&src, &dst) {
                    last.src = src;
                    last.dst = dst;
                    continue;
                }
            }
        }
        out.push(seg.clone());
    }
    out
}

/// Diagnostic label for a diverging loop: the name of the first compute
/// set executed in its body.
fn loop_context(graph: &Graph, body: &ExecNode) -> String {
    match body.first_compute_set() {
        Some(cs) => graph.compute_sets[cs].name.clone(),
        None => "<empty loop body>".to_string(),
    }
}

struct Builder<'g> {
    graph: &'g Graph,
    ops: Vec<PlanOp>,
    copies: Vec<PlanCopy>,
    step_seq: Vec<u32>,
    contexts: Vec<String>,
    n_slots: u32,
    /// Accumulating run of consecutive `Execute`s: (first, count, verts).
    pending: Option<(u32, u32, u32)>,
    max_run_verts: usize,
}

impl Builder<'_> {
    fn alloc_slot(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Terminates the pending run, if any. Called before every non-
    /// `Execute` op so runs never cross a control-flow or exchange
    /// boundary.
    fn flush(&mut self) {
        if let Some((first, count, verts)) = self.pending.take() {
            self.max_run_verts = self.max_run_verts.max(verts as usize);
            self.ops.push(PlanOp::Run {
                first,
                count,
                verts,
            });
        }
    }

    fn push_copy(&mut self, segs: Vec<CopySeg>, pairs: &[(TensorSlice, TensorSlice)]) {
        let cost = exchange_cost(self.graph, pairs);
        let bytes: u64 = pairs.iter().map(|(_, dst)| dst.bytes() as u64).sum();
        let exec_segs = merge_exec_segs(&segs);
        let id = self.copies.len() as u32;
        self.copies.push(PlanCopy {
            segs,
            exec_segs,
            cost,
            bytes,
        });
        self.ops.push(PlanOp::Copy(id));
    }

    fn emit(&mut self, node: &ExecNode) {
        match node {
            ExecNode::Seq(items) => {
                for p in items {
                    self.emit(p);
                }
            }
            ExecNode::Execute(cs) => {
                let idx = self.step_seq.len() as u32;
                self.step_seq.push(*cs as u32);
                let nv = self.graph.compute_sets[*cs].vertices.len() as u32;
                match &mut self.pending {
                    Some((_, count, verts)) => {
                        *count += 1;
                        *verts += nv;
                    }
                    None => self.pending = Some((idx, 1, nv)),
                }
            }
            ExecNode::Copy { src, dst, reps, .. } => {
                self.flush();
                let segs = vec![CopySeg {
                    src: *src,
                    dst: *dst,
                    reps: *reps as u32,
                    staged: seg_overlaps(src, dst),
                }];
                self.push_copy(segs, &[(*src, *dst)]);
            }
            ExecNode::Exchange { pairs, .. } => {
                self.flush();
                let segs = pairs
                    .iter()
                    .map(|&(src, dst)| CopySeg {
                        src,
                        dst,
                        reps: 1,
                        staged: seg_overlaps(&src, &dst),
                    })
                    .collect();
                self.push_copy(segs, pairs);
            }
            ExecNode::Repeat { count, body } => {
                self.flush();
                let slot = self.alloc_slot();
                let init_at = self.ops.len();
                self.ops.push(PlanOp::LoopInit {
                    slot,
                    count: *count,
                    exit: 0,
                });
                let head = self.ops.len() as u32;
                self.emit(body);
                self.flush();
                self.ops.push(PlanOp::LoopBack { slot, target: head });
                let exit = self.ops.len() as u32;
                if let PlanOp::LoopInit { exit: e, .. } = &mut self.ops[init_at] {
                    *e = exit;
                }
            }
            ExecNode::While { predicate, body } => {
                self.flush();
                let iters = self.alloc_slot();
                let context = self.contexts.len() as u32;
                self.contexts.push(loop_context(self.graph, body));
                self.ops.push(PlanOp::WhileEnter { iters, context });
                let head = self.ops.len() as u32;
                let head_at = self.ops.len();
                self.ops.push(PlanOp::WhileHead {
                    predicate: *predicate,
                    exit: 0,
                    iters,
                    context,
                });
                self.emit(body);
                self.flush();
                self.ops.push(PlanOp::Jump(head));
                let exit = self.ops.len() as u32;
                if let PlanOp::WhileHead { exit: e, .. } = &mut self.ops[head_at] {
                    *e = exit;
                }
            }
            ExecNode::If {
                predicate,
                then_body,
                else_body,
            } => {
                self.flush();
                let if_at = self.ops.len();
                self.ops.push(PlanOp::IfHead {
                    predicate: *predicate,
                    else_target: 0,
                });
                self.emit(then_body);
                self.flush();
                let jump_at = self.ops.len();
                self.ops.push(PlanOp::Jump(0));
                let else_target = self.ops.len() as u32;
                self.emit(else_body);
                self.flush();
                let end = self.ops.len() as u32;
                if let PlanOp::IfHead { else_target: t, .. } = &mut self.ops[if_at] {
                    *t = else_target;
                }
                if let PlanOp::Jump(t) = &mut self.ops[jump_at] {
                    *t = end;
                }
            }
        }
    }
}

/// Lowers the lowered program tree one step further: to the straight-line
/// [`ExecPlan`]. Built once per engine at compile.
pub(crate) fn build(
    graph: &Graph,
    root: &ExecNode,
    vertex_thread: &[usize],
    raw: &RawBufs,
    workers: usize,
) -> ExecPlan {
    let mut shared = build_shared(graph, vertex_thread, raw, workers);
    let mut b = Builder {
        graph,
        ops: Vec::new(),
        copies: Vec::new(),
        step_seq: Vec::new(),
        contexts: Vec::new(),
        n_slots: 0,
        pending: None,
        max_run_verts: 0,
    };
    b.emit(root);
    b.flush();
    shared.step_seq = b.step_seq;
    ExecPlan {
        ops: b.ops,
        copies: b.copies,
        shared,
        contexts: b.contexts,
        n_slots: b.n_slots as usize,
        max_run_verts: b.max_run_verts,
    }
}
