//! Compute vertices ("codelets") and their execution context.
//!
//! A codelet is the body of one vertex: a closure that receives typed
//! views of the tensor regions connected to the vertex and returns the
//! number of *thread instructions* it executed (see [`cost`]). Codelets
//! run on one hardware thread of one tile and can only see regions mapped
//! to that tile — the graph enforces this before execution ever starts.
//!
//! Because the IPU is MIMD (§III: "each thread has completely distinct
//! code and execution flow without incurring performance penalties"),
//! data-dependent branching inside a codelet costs the same as straight-
//! line code — contrast with the warp-divergence charge of `gpu-sim`.

use std::cell::{Ref, RefCell, RefMut};

/// The signature every codelet implements: inspect/mutate connected
/// fields, return instructions executed.
///
/// Codelets must be `Send + Sync`: the host engine may execute a compute
/// set's vertices on several host threads at once (each codelet still
/// runs on exactly one thread per superstep, and the compile-time race
/// validation guarantees concurrently running codelets touch disjoint
/// memory). In practice this costs nothing — codelets capture plain
/// copied data (indices, lengths, constants), never shared mutable state.
pub type Codelet = dyn Fn(&VertexCtx) -> u64 + Send + Sync;

/// Typed views of the tensor regions connected to a vertex, in connection
/// order.
///
/// Fields are checked out with `f32`/`i32` (read) or `f32_mut`/`i32_mut`
/// (write); dynamic borrow rules allow any set of *distinct* fields to be
/// held simultaneously. Checking out a field with the wrong type or
/// access panics — these are programming errors in the codelet, not data-
/// dependent conditions.
///
/// The context *borrows* its field cells rather than owning them: the
/// engine pre-resolves every vertex's fields into a per-run cell arena
/// (the lowered execution path) or a short-lived `Vec` (the interpreted
/// path), so building a context is just taking a slice of that arena —
/// no allocation, no per-vertex setup. The cells hold raw pointer/length
/// pairs; the typed slice views are materialized inside the accessors,
/// under the engine's aliasing contract (see `exec_vertex` in
/// `engine.rs`).
pub struct VertexCtx<'s> {
    fields: &'s [RefCell<FieldBuf>],
}

/// One resolved field: a raw base pointer and length. Plain data (no
/// borrow), so arenas of these can be built once per run and reused for
/// every superstep; the `RefCell` around each cell still enforces the
/// per-vertex dynamic borrow rules (one writer *or* many readers per
/// field).
#[derive(Clone, Copy)]
pub(crate) enum FieldBuf {
    F32 { ptr: *const f32, len: u32 },
    F32Mut { ptr: *mut f32, len: u32 },
    I32 { ptr: *const i32, len: u32 },
    I32Mut { ptr: *mut i32, len: u32 },
}

impl<'s> VertexCtx<'s> {
    pub(crate) fn new(fields: &'s [RefCell<FieldBuf>]) -> Self {
        Self { fields }
    }

    /// Number of connected fields.
    pub fn n_fields(&self) -> usize {
        self.fields.len()
    }

    /// Read-only view of f32 field `i` (also accepts a writable field).
    pub fn f32(&self, i: usize) -> Ref<'_, [f32]> {
        Ref::map(self.fields[i].borrow(), |b| match *b {
            // SAFETY: the engine resolved `ptr`/`len` from an in-bounds
            // tensor slice, the buffers outlive every context, and the
            // compile-time race validation plus this cell's borrow flag
            // rule out a live mutable alias.
            FieldBuf::F32 { ptr, len } => unsafe { std::slice::from_raw_parts(ptr, len as usize) },
            FieldBuf::F32Mut { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr as *const f32, len as usize)
            },
            _ => panic!("field {i} is not f32"),
        })
    }

    /// Mutable view of f32 field `i`; panics if the field was connected
    /// read-only.
    pub fn f32_mut(&self, i: usize) -> RefMut<'_, [f32]> {
        RefMut::map(self.fields[i].borrow_mut(), |b| match *b {
            // SAFETY: as `f32`; the exclusive borrow of this cell makes
            // the mutable view unique.
            FieldBuf::F32Mut { ptr, len } => unsafe {
                std::slice::from_raw_parts_mut(ptr, len as usize)
            },
            FieldBuf::F32 { .. } => panic!("field {i} was connected read-only"),
            _ => panic!("field {i} is not f32"),
        })
    }

    /// Read-only view of i32 field `i` (also accepts a writable field).
    pub fn i32(&self, i: usize) -> Ref<'_, [i32]> {
        Ref::map(self.fields[i].borrow(), |b| match *b {
            // SAFETY: as `f32`.
            FieldBuf::I32 { ptr, len } => unsafe { std::slice::from_raw_parts(ptr, len as usize) },
            FieldBuf::I32Mut { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr as *const i32, len as usize)
            },
            _ => panic!("field {i} is not i32"),
        })
    }

    /// Mutable view of i32 field `i`; panics if the field was connected
    /// read-only.
    pub fn i32_mut(&self, i: usize) -> RefMut<'_, [i32]> {
        RefMut::map(self.fields[i].borrow_mut(), |b| match *b {
            // SAFETY: as `f32_mut`.
            FieldBuf::I32Mut { ptr, len } => unsafe {
                std::slice::from_raw_parts_mut(ptr, len as usize)
            },
            FieldBuf::I32 { .. } => panic!("field {i} was connected read-only"),
            _ => panic!("field {i} is not i32"),
        })
    }
}

/// Instruction-cost helpers for codelets.
///
/// The unit is *thread instructions*: the engine converts them to tile
/// cycles with the 6-thread barrel model (a tile retires one instruction
/// per cycle across its active threads; see `calibration`).
///
/// The `f32_*` helpers charge `n/2` because the IPU loads and processes
/// two floats at a time — the paper leans on this in Steps 1 and 6
/// ("we retrieve and update from the tile's memory two floats at once").
pub mod cost {
    /// Read + compare/accumulate a run of `n` f32 (e.g. a min scan).
    pub fn f32_scan(n: usize) -> u64 {
        (n as u64).div_ceil(2)
    }

    /// Read-modify-write a run of `n` f32.
    pub fn f32_update(n: usize) -> u64 {
        n as u64
    }

    /// Read + inspect a run of `n` i32 (no 2-at-a-time benefit for the
    /// index/flag manipulation the compressed matrix needs).
    pub fn i32_scan(n: usize) -> u64 {
        n as u64
    }

    /// Read-modify-write a run of `n` i32.
    pub fn i32_update(n: usize) -> u64 {
        2 * n as u64
    }

    /// `n` data-dependent branches. MIMD: one instruction each, no
    /// divergence penalty (the GPU model charges serialization instead).
    pub fn branches(n: usize) -> u64 {
        n as u64
    }

    /// Sorting `n` elements locally on a tile (comparison sort).
    pub fn sort(n: usize) -> u64 {
        if n < 2 {
            return 1;
        }
        let logn = (usize::BITS - (n - 1).leading_zeros()) as u64;
        2 * n as u64 * logn
    }

    /// A handful of scalar instructions (flag checks, index arithmetic).
    pub fn scalar(n: usize) -> u64 {
        n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells_with(f: &mut [f32], i: &mut [i32]) -> Vec<RefCell<FieldBuf>> {
        vec![
            RefCell::new(FieldBuf::F32Mut {
                ptr: f.as_mut_ptr(),
                len: f.len() as u32,
            }),
            RefCell::new(FieldBuf::I32Mut {
                ptr: i.as_mut_ptr(),
                len: i.len() as u32,
            }),
        ]
    }

    #[test]
    fn simultaneous_distinct_fields() {
        let mut f = [1.0_f32, 2.0];
        let mut i = [0_i32; 2];
        let cells = cells_with(&mut f, &mut i);
        let ctx = VertexCtx::new(&cells);
        let src = ctx.f32(0);
        let mut dst = ctx.i32_mut(1);
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d = *s as i32;
        }
        drop((src, dst));
        drop(cells);
        assert_eq!(i, [1, 2]);
    }

    #[test]
    fn mutable_field_readable() {
        let mut f = [3.0_f32];
        let mut i = [0_i32];
        let cells = cells_with(&mut f, &mut i);
        let ctx = VertexCtx::new(&cells);
        assert_eq!(ctx.f32(0)[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn readonly_field_rejects_mut() {
        let f = [1.0_f32];
        let cells = vec![RefCell::new(FieldBuf::F32 {
            ptr: f.as_ptr(),
            len: 1,
        })];
        let ctx = VertexCtx::new(&cells);
        let _ = ctx.f32_mut(0);
    }

    #[test]
    #[should_panic(expected = "not f32")]
    fn wrong_dtype_panics() {
        let i = [1_i32];
        let cells = vec![RefCell::new(FieldBuf::I32 {
            ptr: i.as_ptr(),
            len: 1,
        })];
        let ctx = VertexCtx::new(&cells);
        let _ = ctx.f32(0);
    }

    #[test]
    #[should_panic(expected = "already")]
    fn double_mutable_checkout_panics() {
        let mut f = [1.0_f32];
        let mut i = [0_i32];
        let cells = cells_with(&mut f, &mut i);
        let ctx = VertexCtx::new(&cells);
        let _a = ctx.f32_mut(0);
        let _b = ctx.f32_mut(0);
    }

    #[test]
    fn cost_helpers_match_two_floats_at_a_time() {
        assert_eq!(cost::f32_scan(8), 4);
        assert_eq!(cost::f32_scan(9), 5);
        assert_eq!(cost::f32_update(8), 8);
        assert_eq!(cost::i32_scan(8), 8);
        assert_eq!(cost::branches(3), 3);
        assert!(cost::sort(1024) >= 2 * 1024 * 10);
        assert_eq!(cost::sort(1), 1);
    }
}
