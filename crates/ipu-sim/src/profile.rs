//! Opt-in per-tile execution profiler for the IPU simulator.
//!
//! [`CycleStats`](crate::CycleStats) answers *how much* device time a
//! run cost; the profiler answers *where it went*: which tiles
//! straggled each superstep, how many barrel threads were busy, which
//! tile pairs moved the exchange bytes, what every tile spent waiting
//! at the BSP barrier, which way data-dependent control flow went, and
//! where faults were injected. It is the observability layer the
//! paper's breakdown analyses (compute vs. sync vs. exchange, §V) need.
//!
//! Memory is bounded: the event timeline lives in a ring buffer of
//! [`ProfileConfig::max_events`] entries (older events are dropped and
//! counted), and per-tile detail inside each superstep event is kept
//! only for tiles selected by [`ProfileConfig::tile_sample`] (the
//! superstep's slowest tile is always kept). Per-tile *aggregates* —
//! compute totals, sync wait, occupancy histogram, exchange heatmap —
//! cover every tile and every superstep regardless of sampling, so the
//! accounting invariants hold exactly:
//!
//! - `Profiler::compute_cycles` (sum over supersteps of the max-tile
//!   cost, straggler inflation included) `== CycleStats::compute_cycles`
//! - sum over the exchange heatmap `== CycleStats::exchange_bytes`
//! - sum over the occupancy histogram `== tile_supersteps`
//!
//! All recording happens on the engine's serial path, after worker
//! lanes join and after per-tile loads are reduced in sorted tile
//! order — a profile is **bit-identical at any host thread count**,
//! the same contract the engine's stats obey.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};
use trace::{ChromeTrace, TraceEvent};

/// Destination marker for broadcast exchanges (a replicated tensor
/// refresh delivers to every tile; the heatmap keeps one entry per
/// source tile against this pseudo-destination instead of `tiles`
/// entries).
pub const BROADCAST_TILE: u32 = u32::MAX;

/// Endpoint marker for host-streamed exchanges (a host tensor has no
/// tile; the heatmap records the PCIe link as this pseudo-tile on
/// whichever side of the pair the host sits).
pub const HOST_TILE: u32 = u32::MAX - 1;

/// Trace lane (`tid`) carrying the chip-level timeline.
const CHIP_TID: u64 = 0;
/// Trace lanes `TILE_TID_BASE + tile` carry sampled per-tile detail.
const TILE_TID_BASE: u64 = 1;

/// Profiler knobs. `Default` records everything a 64k-event ring can
/// hold with full per-tile detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Per-tile detail stride inside superstep events: detail is kept
    /// for tiles with `tile % tile_sample == 0` (plus each superstep's
    /// slowest tile). `1` keeps every tile; `0` is treated as `1`.
    /// Aggregates are never sampled.
    #[serde(default = "default_tile_sample")]
    pub tile_sample: usize,
    /// Ring-buffer capacity for timeline events; once full, the oldest
    /// event is dropped (and counted in `events_dropped`). `0` keeps
    /// aggregates only.
    #[serde(default = "default_max_events")]
    pub max_events: usize,
    /// How many tiles the report's straggler table keeps.
    #[serde(default = "default_top_k")]
    pub top_k: usize,
}

fn default_tile_sample() -> usize {
    1
}
fn default_max_events() -> usize {
    65_536
}
fn default_top_k() -> usize {
    8
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            tile_sample: default_tile_sample(),
            max_events: default_max_events(),
            top_k: default_top_k(),
        }
    }
}

/// Per-tile detail inside one superstep event (subject to sampling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSample {
    /// Tile id.
    pub tile: u32,
    /// This tile's barrel cost for the superstep
    /// (`threads_per_tile * max` instruction load over its threads).
    pub cycles: u64,
    /// Hardware threads that ran at least one vertex.
    pub threads_used: u32,
    /// Cycles this tile idled at the BSP barrier: superstep duration
    /// minus its own cost.
    pub sync_wait: u64,
}

/// One compute superstep on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperstepSample {
    /// Compute-set index (resolve names via the graph / engine).
    pub cs: u32,
    /// Timeline cycle at which the superstep began.
    pub start_cycle: u64,
    /// Superstep duration: max over tiles, straggler inflation
    /// included.
    pub cycles: u64,
    /// Sync charge that followed the superstep.
    pub sync_cycles: u64,
    /// Extra cycles injected by a straggler fault (already included in
    /// `cycles`).
    pub straggler_extra: u64,
    /// Tiles that ran at least one vertex.
    pub active_tiles: u32,
    /// The tile that set the superstep duration (lowest id on ties).
    pub slowest_tile: u32,
    /// Sampled per-tile detail, ascending by tile id.
    pub tiles: Vec<TileSample>,
}

/// One exchange phase on the timeline. Per-pair bytes go to the
/// aggregate heatmap, not the event, to keep events small.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeSample {
    /// Timeline cycle at which the exchange began.
    pub start_cycle: u64,
    /// Modeled exchange duration.
    pub cycles: u64,
    /// Sync charge that followed the exchange.
    pub sync_cycles: u64,
    /// Bytes delivered (what `CycleStats::exchange_bytes` counted).
    pub bytes: u64,
    /// Bytes of this phase that crossed an IPU-Link: pair traffic whose
    /// endpoints sit on different chips, plus one link crossing per
    /// remote chip for replicated broadcasts (mirroring the engine's
    /// cost model). Always `0` on single-chip devices.
    pub cross_chip_bytes: u64,
}

/// One data-dependent control-flow decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlSample {
    /// Timeline cycle of the decision.
    pub cycle: u64,
    /// `"if"` or `"while"`.
    pub kind: &'static str,
    /// Branch taken / loop continued.
    pub taken: bool,
}

/// One injected fault (see [`crate::FaultPlan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSample {
    /// Timeline cycle at which the fault landed.
    pub cycle: u64,
    /// `"straggler"`, `"bit_flip"`, `"exchange_corruption"`, or
    /// `"forced_divergence"`.
    pub kind: &'static str,
    /// Fault magnitude: extra cycles for stragglers, `1` otherwise.
    pub magnitude: u64,
}

/// A timeline entry in the profiler's ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileEvent {
    /// A compute superstep.
    Superstep(SuperstepSample),
    /// An exchange phase.
    Exchange(ExchangeSample),
    /// A control-flow decision.
    Control(ControlSample),
    /// An injected fault.
    Fault(FaultSample),
}

/// Per-tile row of the report's straggler table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileReport {
    /// Tile id.
    pub tile: u32,
    /// Total compute cycles across all supersteps (straggler inflation
    /// attributed to the slowest tile).
    pub compute_cycles: u64,
    /// Total cycles idled at BSP barriers.
    pub sync_wait_cycles: u64,
    /// Supersteps in which this tile was the slowest.
    pub led_supersteps: u64,
}

/// One exchange-heatmap cell: bytes moved from `src_tile` to
/// `dst_tile` (or to every tile when `dst_tile` is
/// [`BROADCAST_TILE`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairBytes {
    /// Sending tile.
    pub src_tile: u32,
    /// Receiving tile, or [`BROADCAST_TILE`].
    pub dst_tile: u32,
    /// Bytes moved over the run.
    pub bytes: u64,
}

/// Summary of a profiled run: totals that reconcile exactly with
/// [`CycleStats`](crate::CycleStats), the straggler top-k, the
/// thread-occupancy histogram, and the tile-pair exchange heatmap.
///
/// `PartialEq` is the bit-identity contract: two reports from the same
/// program at different host thread counts compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Compute supersteps observed.
    pub supersteps: u64,
    /// Compute cycles (reconciles with `CycleStats::compute_cycles`).
    pub compute_cycles: u64,
    /// Sync cycles (reconciles with `CycleStats::sync_cycles`).
    pub sync_cycles: u64,
    /// Exchange cycles (reconciles with `CycleStats::exchange_cycles`).
    pub exchange_cycles: u64,
    /// Control cycles (reconciles with `CycleStats::control_cycles`).
    pub control_cycles: u64,
    /// Exchange phases observed.
    pub exchanges: u64,
    /// Exchange bytes; equals the heatmap sum.
    pub exchange_bytes: u64,
    /// Sum of active tiles over supersteps; equals the occupancy
    /// histogram sum.
    pub tile_supersteps: u64,
    /// Timeline events currently held in the ring.
    pub events_recorded: usize,
    /// Timeline events dropped by the ring bound.
    pub events_dropped: u64,
    /// Busiest tiles, descending by compute cycles (ties: lower tile
    /// id first), at most [`ProfileConfig::top_k`] rows.
    pub stragglers: Vec<TileReport>,
    /// `occupancy_histogram[k]` = (tile, superstep) pairs with exactly
    /// `k` busy hardware threads.
    pub occupancy_histogram: Vec<u64>,
    /// Exchange heatmap, ascending by `(src_tile, dst_tile)`.
    pub exchange_heatmap: Vec<PairBytes>,
}

/// The recording state. Obtain one via
/// [`Engine::enable_profiling`](crate::Engine::enable_profiling) and
/// read it back with [`Engine::profile`](crate::Engine::profile).
#[derive(Debug, Clone, PartialEq)]
pub struct Profiler {
    /// The knobs this profiler was created with.
    pub config: ProfileConfig,
    /// Chips on the profiled device (1 = single-chip; chip-level
    /// annotations in traces only appear beyond that).
    pub ipus: usize,
    /// Tiles per chip, for mapping tile ids to chips.
    pub tiles_per_ipu: usize,
    /// Timeline ring buffer, oldest first.
    pub events: VecDeque<ProfileEvent>,
    /// Events dropped by the ring bound.
    pub dropped: u64,
    /// Profiler cycle cursor: advances with every recorded charge, so
    /// event timestamps are monotone even across `reset_stats`.
    pub now: u64,
    /// Per-tile total compute cycles (unsampled).
    pub tile_compute: Vec<u64>,
    /// Per-tile total BSP-barrier wait cycles (unsampled).
    pub tile_sync_wait: Vec<u64>,
    /// Per-tile count of supersteps led (i.e. was the slowest tile).
    pub tile_led: Vec<u64>,
    /// `occupancy[k]` = (tile, superstep) pairs with `k` busy threads.
    pub occupancy: Vec<u64>,
    /// Exchange bytes per (src, dst) tile pair; `dst ==`
    /// [`BROADCAST_TILE`] for replicated refreshes.
    pub heatmap: BTreeMap<(u32, u32), u64>,
    /// Supersteps observed.
    pub supersteps: u64,
    /// Compute cycles observed (straggler inflation included).
    pub compute_cycles: u64,
    /// Sync cycles observed.
    pub sync_cycles: u64,
    /// Exchange cycles observed.
    pub exchange_cycles: u64,
    /// Control cycles observed.
    pub control_cycles: u64,
    /// Exchange phases observed.
    pub exchanges: u64,
    /// Exchange bytes observed.
    pub exchange_bytes: u64,
    /// Sum of active tiles over supersteps.
    pub tile_supersteps: u64,
}

impl Profiler {
    pub(crate) fn new(
        config: ProfileConfig,
        tiles: usize,
        threads_per_tile: usize,
        ipus: usize,
        tiles_per_ipu: usize,
    ) -> Self {
        Self {
            config,
            ipus: ipus.max(1),
            tiles_per_ipu: tiles_per_ipu.max(1),
            events: VecDeque::new(),
            dropped: 0,
            now: 0,
            tile_compute: vec![0; tiles],
            tile_sync_wait: vec![0; tiles],
            tile_led: vec![0; tiles],
            occupancy: vec![0; threads_per_tile + 1],
            heatmap: BTreeMap::new(),
            supersteps: 0,
            compute_cycles: 0,
            sync_cycles: 0,
            exchange_cycles: 0,
            control_cycles: 0,
            exchanges: 0,
            exchange_bytes: 0,
            tile_supersteps: 0,
        }
    }

    fn push_event(&mut self, ev: ProfileEvent) {
        if self.config.max_events == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.config.max_events {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Records one superstep. `per_tile` is `(tile, cycles,
    /// threads_used)` ascending by tile, covering every active tile;
    /// `straggler_extra` stretches the superstep (and is attributed to
    /// the slowest tile).
    pub(crate) fn record_superstep(
        &mut self,
        cs: usize,
        per_tile: &[(u32, u64, u32)],
        sync_cycles: u64,
        straggler_extra: u64,
    ) {
        debug_assert!(per_tile.windows(2).all(|w| w[0].0 < w[1].0));
        let mut worst = 0u64;
        let mut slowest = 0u32;
        for &(tile, cycles, _) in per_tile {
            if cycles > worst {
                worst = cycles;
                slowest = tile;
            }
        }
        let duration = worst + straggler_extra;

        self.supersteps += 1;
        self.compute_cycles += duration;
        self.sync_cycles += sync_cycles;
        self.tile_supersteps += per_tile.len() as u64;
        for &(tile, cycles, threads) in per_tile {
            let own = if tile == slowest {
                cycles + straggler_extra
            } else {
                cycles
            };
            self.tile_compute[tile as usize] += own;
            self.tile_sync_wait[tile as usize] += duration - own;
            let bucket = (threads as usize).min(self.occupancy.len() - 1);
            self.occupancy[bucket] += 1;
        }
        if !per_tile.is_empty() {
            self.tile_led[slowest as usize] += 1;
        }

        let stride = self.config.tile_sample.max(1);
        let tiles = per_tile
            .iter()
            .filter(|&&(tile, _, _)| tile % stride as u32 == 0 || tile == slowest)
            .map(|&(tile, cycles, threads)| {
                let own = if tile == slowest {
                    cycles + straggler_extra
                } else {
                    cycles
                };
                TileSample {
                    tile,
                    cycles: own,
                    threads_used: threads,
                    sync_wait: duration - own,
                }
            })
            .collect();
        let start_cycle = self.now;
        self.now += duration + sync_cycles;
        self.push_event(ProfileEvent::Superstep(SuperstepSample {
            cs: cs as u32,
            start_cycle,
            cycles: duration,
            sync_cycles,
            straggler_extra,
            active_tiles: per_tile.len() as u32,
            slowest_tile: slowest,
            tiles,
        }));
    }

    /// Records one exchange phase; `pairs` is `(src_tile, dst_tile,
    /// bytes)` whose bytes sum to exactly what
    /// `CycleStats::exchange_bytes` was charged.
    pub(crate) fn record_exchange(
        &mut self,
        cycles: u64,
        sync_cycles: u64,
        bytes: u64,
        pairs: &[(u32, u32, u64)],
    ) {
        self.exchanges += 1;
        self.exchange_cycles += cycles;
        self.sync_cycles += sync_cycles;
        self.exchange_bytes += bytes;
        let chip = |tile: u32| tile as usize / self.tiles_per_ipu;
        let mut cross_chip_bytes = 0u64;
        for &(src, dst, b) in pairs {
            *self.heatmap.entry((src, dst)).or_insert(0) += b;
            if dst == BROADCAST_TILE {
                // A replicated refresh crosses each IPU-Link once per
                // remote chip (the engine charges the source the same
                // way).
                cross_chip_bytes += b * (self.ipus as u64 - 1);
            } else if src == HOST_TILE || dst == HOST_TILE {
                // Host-streamed bytes ride PCIe, not the IPU-Links.
            } else if chip(src) != chip(dst) {
                cross_chip_bytes += b;
            }
        }
        let start_cycle = self.now;
        self.now += cycles + sync_cycles;
        self.push_event(ProfileEvent::Exchange(ExchangeSample {
            start_cycle,
            cycles,
            sync_cycles,
            bytes,
            cross_chip_bytes,
        }));
    }

    /// Records one control-flow decision and its cycle charge.
    pub(crate) fn record_control(&mut self, cycles: u64, kind: &'static str, taken: bool) {
        self.control_cycles += cycles;
        let cycle = self.now;
        self.now += cycles;
        self.push_event(ProfileEvent::Control(ControlSample { cycle, kind, taken }));
    }

    /// Records one injected fault at the current timeline position.
    pub(crate) fn record_fault(&mut self, kind: &'static str, magnitude: u64) {
        let cycle = self.now;
        self.push_event(ProfileEvent::Fault(FaultSample {
            cycle,
            kind,
            magnitude,
        }));
    }

    /// Total cycles the profiler has accounted for (mirrors
    /// `CycleStats::total_cycles`).
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.sync_cycles + self.exchange_cycles + self.control_cycles
    }

    /// Builds the summary report.
    pub fn report(&self) -> ProfileReport {
        let mut order: Vec<u32> = (0..self.tile_compute.len() as u32).collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(self.tile_compute[t as usize]), t));
        let stragglers = order
            .into_iter()
            .take(self.config.top_k)
            .filter(|&t| self.tile_compute[t as usize] > 0 || self.tile_led[t as usize] > 0)
            .map(|t| TileReport {
                tile: t,
                compute_cycles: self.tile_compute[t as usize],
                sync_wait_cycles: self.tile_sync_wait[t as usize],
                led_supersteps: self.tile_led[t as usize],
            })
            .collect();
        ProfileReport {
            supersteps: self.supersteps,
            compute_cycles: self.compute_cycles,
            sync_cycles: self.sync_cycles,
            exchange_cycles: self.exchange_cycles,
            control_cycles: self.control_cycles,
            exchanges: self.exchanges,
            exchange_bytes: self.exchange_bytes,
            tile_supersteps: self.tile_supersteps,
            events_recorded: self.events.len(),
            events_dropped: self.dropped,
            stragglers,
            occupancy_histogram: self.occupancy.clone(),
            exchange_heatmap: self
                .heatmap
                .iter()
                .map(|(&(src_tile, dst_tile), &bytes)| PairBytes {
                    src_tile,
                    dst_tile,
                    bytes,
                })
                .collect(),
        }
    }

    /// Renders the timeline as Chrome `trace_event` records.
    ///
    /// `pid` is the process lane (use distinct pids to merge several
    /// engines into one file), `process` its display name,
    /// `clock_hz` converts modeled cycles to microseconds, and
    /// `cs_names` resolves compute-set indices.
    pub fn chrome_trace(
        &self,
        pid: u64,
        process: &str,
        clock_hz: f64,
        cs_names: &[String],
    ) -> ChromeTrace {
        let us = |cycle: u64| cycle as f64 / clock_hz * 1e6;
        let cs_name = |cs: u32| {
            cs_names
                .get(cs as usize)
                .map(String::as_str)
                .unwrap_or("<unknown compute set>")
        };
        let mut t = ChromeTrace::new();
        t.push(TraceEvent::process_name(pid, process));
        t.push(TraceEvent::thread_name(pid, CHIP_TID, "chip"));
        let mut tile_lanes: Vec<u32> = self
            .events
            .iter()
            .filter_map(|ev| match ev {
                ProfileEvent::Superstep(s) => Some(s.tiles.iter().map(|ts| ts.tile)),
                _ => None,
            })
            .flatten()
            .collect();
        tile_lanes.sort_unstable();
        tile_lanes.dedup();
        for &tile in &tile_lanes {
            // On multi-chip devices the lane name carries the chip id so
            // a trace viewer groups on-chip vs cross-chip activity;
            // single-chip lane names are unchanged (golden traces pin
            // them).
            let name = if self.ipus > 1 {
                format!("ipu{} tile {tile}", tile as usize / self.tiles_per_ipu)
            } else {
                format!("tile {tile}")
            };
            t.push(TraceEvent::thread_name(
                pid,
                TILE_TID_BASE + tile as u64,
                name,
            ));
        }
        for ev in &self.events {
            match ev {
                ProfileEvent::Superstep(s) => {
                    t.push(
                        TraceEvent::complete(
                            cs_name(s.cs),
                            "compute",
                            us(s.start_cycle),
                            us(s.cycles),
                            pid,
                            CHIP_TID,
                        )
                        .arg("cycles", s.cycles)
                        .arg("active_tiles", s.active_tiles)
                        .arg("slowest_tile", s.slowest_tile)
                        .arg("straggler_extra", s.straggler_extra),
                    );
                    t.push(TraceEvent::complete(
                        "sync",
                        "sync",
                        us(s.start_cycle + s.cycles),
                        us(s.sync_cycles),
                        pid,
                        CHIP_TID,
                    ));
                    for ts in &s.tiles {
                        t.push(
                            TraceEvent::complete(
                                cs_name(s.cs),
                                "tile",
                                us(s.start_cycle),
                                us(ts.cycles),
                                pid,
                                TILE_TID_BASE + ts.tile as u64,
                            )
                            .arg("threads_used", ts.threads_used)
                            .arg("sync_wait_cycles", ts.sync_wait),
                        );
                    }
                }
                ProfileEvent::Exchange(e) => {
                    let name = if self.ipus > 1 && e.cross_chip_bytes > 0 {
                        "exchange (cross-chip)"
                    } else {
                        "exchange"
                    };
                    let mut ev = TraceEvent::complete(
                        name,
                        "exchange",
                        us(e.start_cycle),
                        us(e.cycles),
                        pid,
                        CHIP_TID,
                    )
                    .arg("bytes", e.bytes);
                    if self.ipus > 1 {
                        ev = ev.arg("cross_chip_bytes", e.cross_chip_bytes);
                    }
                    t.push(ev);
                    t.push(TraceEvent::complete(
                        "sync",
                        "sync",
                        us(e.start_cycle + e.cycles),
                        us(e.sync_cycles),
                        pid,
                        CHIP_TID,
                    ));
                }
                ProfileEvent::Control(c) => {
                    t.push(
                        TraceEvent::instant(
                            format!("{}:{}", c.kind, if c.taken { "taken" } else { "done" }),
                            "control",
                            us(c.cycle),
                            pid,
                            CHIP_TID,
                        )
                        .arg("taken", c.taken),
                    );
                }
                ProfileEvent::Fault(f) => {
                    t.push(
                        TraceEvent::instant(f.kind, "fault", us(f.cycle), pid, CHIP_TID)
                            .arg("magnitude", f.magnitude),
                    );
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> Profiler {
        Profiler::new(ProfileConfig::default(), 4, 6, 1, 4)
    }

    #[test]
    fn superstep_accounting() {
        let mut p = profiler();
        p.record_superstep(0, &[(0, 12, 2), (2, 30, 1)], 5, 0);
        p.record_superstep(1, &[(1, 6, 1)], 5, 4);
        assert_eq!(p.supersteps, 2);
        assert_eq!(p.compute_cycles, 30 + 10);
        assert_eq!(p.sync_cycles, 10);
        assert_eq!(p.tile_compute, vec![12, 10, 30, 0]);
        assert_eq!(p.tile_sync_wait, vec![18, 0, 0, 0]);
        assert_eq!(p.tile_led, vec![0, 1, 1, 0]);
        assert_eq!(p.tile_supersteps, 3);
        assert_eq!(p.occupancy.iter().sum::<u64>(), 3);
        assert_eq!(p.occupancy[1], 2);
        assert_eq!(p.occupancy[2], 1);
    }

    #[test]
    fn straggler_extra_attributed_to_slowest() {
        let mut p = profiler();
        p.record_superstep(0, &[(0, 10, 1), (1, 20, 1)], 3, 7);
        assert_eq!(p.compute_cycles, 27);
        assert_eq!(p.tile_compute[1], 27);
        assert_eq!(p.tile_sync_wait[1], 0);
        assert_eq!(p.tile_sync_wait[0], 17);
        match &p.events[0] {
            ProfileEvent::Superstep(s) => {
                assert_eq!(s.cycles, 27);
                assert_eq!(s.straggler_extra, 7);
                assert_eq!(s.slowest_tile, 1);
            }
            other => panic!("expected superstep, got {other:?}"),
        }
    }

    #[test]
    fn tile_sampling_keeps_slowest() {
        let mut p = Profiler::new(
            ProfileConfig {
                tile_sample: 4,
                ..Default::default()
            },
            8,
            6,
            1,
            8,
        );
        p.record_superstep(0, &[(1, 5, 1), (3, 50, 1), (4, 2, 1)], 1, 0);
        match &p.events[0] {
            ProfileEvent::Superstep(s) => {
                // tile 4 matches the stride, tile 3 is the slowest.
                let kept: Vec<u32> = s.tiles.iter().map(|t| t.tile).collect();
                assert_eq!(kept, vec![3, 4]);
            }
            other => panic!("expected superstep, got {other:?}"),
        }
        // Aggregates still cover all three tiles.
        assert_eq!(p.tile_compute[1], 5);
        assert_eq!(p.tile_supersteps, 3);
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let mut p = Profiler::new(
            ProfileConfig {
                max_events: 2,
                ..Default::default()
            },
            2,
            6,
            1,
            2,
        );
        for i in 0..5 {
            p.record_superstep(0, &[(0, i + 1, 1)], 1, 0);
        }
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.dropped, 3);
        // Aggregates are unaffected by the ring bound.
        assert_eq!(p.supersteps, 5);
        assert_eq!(p.compute_cycles, 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn heatmap_sums_to_exchange_bytes() {
        let mut p = profiler();
        p.record_exchange(9, 5, 24, &[(0, 1, 16), (1, 2, 8)]);
        p.record_exchange(9, 5, 8, &[(0, 1, 8)]);
        assert_eq!(p.exchange_bytes, 32);
        assert_eq!(p.heatmap.values().sum::<u64>(), 32);
        assert_eq!(p.heatmap[&(0, 1)], 24);
    }

    #[test]
    fn cross_chip_bytes_attributed_per_pair_and_per_remote_chip() {
        // 2 chips of 2 tiles: tiles 0-1 on chip 0, tiles 2-3 on chip 1.
        let mut p = Profiler::new(ProfileConfig::default(), 4, 6, 2, 2);
        // On-chip pair, cross-chip pair, and a replicated broadcast that
        // crosses the single IPU-Link once.
        p.record_exchange(9, 5, 36, &[(0, 1, 16), (1, 2, 8), (0, BROADCAST_TILE, 12)]);
        match &p.events[0] {
            ProfileEvent::Exchange(e) => {
                assert_eq!(e.bytes, 36);
                // 8 for the cross-chip pair + 12 × (chips − 1) replicas.
                assert_eq!(e.cross_chip_bytes, 8 + 12);
            }
            other => panic!("expected exchange, got {other:?}"),
        }
        // Single-chip devices never report cross-chip traffic.
        let mut p1 = profiler();
        p1.record_exchange(9, 5, 36, &[(0, 1, 16), (1, 2, 8), (0, BROADCAST_TILE, 12)]);
        match &p1.events[0] {
            ProfileEvent::Exchange(e) => assert_eq!(e.cross_chip_bytes, 0),
            other => panic!("expected exchange, got {other:?}"),
        }
    }

    #[test]
    fn multi_chip_trace_names_lanes_by_chip() {
        let mut p = Profiler::new(ProfileConfig::default(), 4, 6, 2, 2);
        p.record_superstep(0, &[(1, 10, 1), (2, 40, 2)], 2, 0);
        p.record_exchange(7, 2, 12, &[(1, 2, 12)]);
        let json = p
            .chrome_trace(1, "ipu-sim", 1.0e6, &["step".to_string()])
            .to_json();
        assert!(json.contains("ipu0 tile 1"), "{json}");
        assert!(json.contains("ipu1 tile 2"), "{json}");
        assert!(json.contains("cross_chip_bytes"), "{json}");
        assert!(json.contains("exchange (cross-chip)"), "{json}");

        // Single-chip traces keep the original lane names and omit the
        // cross-chip annotation entirely.
        let mut p1 = profiler();
        p1.record_superstep(0, &[(1, 10, 1), (2, 40, 2)], 2, 0);
        p1.record_exchange(7, 2, 12, &[(1, 2, 12)]);
        let json = p1
            .chrome_trace(1, "ipu-sim", 1.0e6, &["step".to_string()])
            .to_json();
        assert!(json.contains("tile 1"), "{json}");
        assert!(!json.contains("ipu0"), "{json}");
        assert!(!json.contains("cross_chip_bytes"), "{json}");
    }

    #[test]
    fn report_orders_stragglers_and_reconciles() {
        let mut p = profiler();
        p.record_superstep(0, &[(0, 10, 1), (1, 40, 2), (3, 40, 2)], 2, 0);
        p.record_exchange(7, 2, 12, &[(1, 3, 12)]);
        let r = p.report();
        assert_eq!(r.compute_cycles, p.compute_cycles);
        assert_eq!(r.exchange_bytes, 12);
        assert_eq!(
            r.exchange_heatmap,
            vec![PairBytes {
                src_tile: 1,
                dst_tile: 3,
                bytes: 12
            }]
        );
        // Tie between tiles 1 and 3 broken by lower id.
        assert_eq!(r.stragglers[0].tile, 1);
        assert_eq!(r.stragglers[1].tile, 3);
        assert_eq!(r.stragglers[2].tile, 0);
        assert_eq!(r.occupancy_histogram.iter().sum::<u64>(), r.tile_supersteps);
    }

    #[test]
    fn chrome_trace_validates_and_is_monotone() {
        let mut p = profiler();
        p.record_superstep(0, &[(0, 10, 1), (1, 40, 2)], 2, 0);
        p.record_exchange(7, 2, 12, &[(1, 0, 12)]);
        p.record_control(3, "while", true);
        p.record_superstep(0, &[(0, 10, 1)], 2, 0);
        p.record_control(3, "while", false);
        p.record_fault("bit_flip", 1);
        let trace = p.chrome_trace(1, "ipu-sim", 1.0e6, &["step".to_string()]);
        let json = trace.to_json();
        let summary = ChromeTrace::validate_json(&json).expect("valid trace");
        assert_eq!(summary.instant_events, 3);
        assert!(summary.complete_events >= 5);
        assert!(summary.metadata_events >= 3);
    }
}
