//! Tensors: named, typed, flat arrays whose elements are explicitly
//! mapped to tiles.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Element type of a tensor.
///
/// The IPU's natural data types for this workload are 32-bit floats (the
/// slack matrix) and 32-bit integers (indices, flags, the compressed
/// matrix). Both occupy 4 bytes of tile SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 32-bit signed integer.
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        4
    }
}

/// A handle to a tensor declared in a [`crate::Graph`].
///
/// Handles are `Copy` and carry the length/dtype for ergonomic slicing;
/// all real validation happens in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tensor {
    pub(crate) id: usize,
    pub(crate) len: usize,
    pub(crate) dtype: DType,
}

impl Tensor {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// A contiguous sub-range of the tensor.
    pub fn slice(&self, range: Range<usize>) -> TensorSlice {
        TensorSlice {
            tensor: *self,
            start: range.start,
            end: range.end,
        }
    }

    /// The whole tensor as a slice.
    pub fn whole(&self) -> TensorSlice {
        self.slice(0..self.len)
    }

    /// One element as a slice (useful for scalars and flags).
    pub fn element(&self, index: usize) -> TensorSlice {
        self.slice(index..index + 1)
    }
}

/// A contiguous region of a tensor: the unit of vertex connection and of
/// exchange copies.
///
/// Regions are deliberately restricted to *contiguous* flat ranges. The
/// 1D row decomposition of §IV-A maps each matrix row (and each tile's
/// block of rows) contiguously, so contiguous regions express everything
/// HunIPU needs while keeping the race/locality validation exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorSlice {
    pub(crate) tensor: Tensor,
    pub(crate) start: usize,
    pub(crate) end: usize,
}

impl TensorSlice {
    /// Number of elements in the region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Bytes occupied by the region.
    pub fn bytes(&self) -> usize {
        self.len() * self.tensor.dtype.size_bytes()
    }

    /// The underlying tensor handle.
    pub fn tensor(&self) -> Tensor {
        self.tensor
    }

    /// The flat element range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// `true` if this region overlaps `other` (same tensor, intersecting
    /// ranges).
    pub fn overlaps(&self, other: &TensorSlice) -> bool {
        self.tensor.id == other.tensor.id && self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(len: usize) -> Tensor {
        Tensor {
            id: 0,
            len,
            dtype: DType::F32,
        }
    }

    #[test]
    fn slice_accessors() {
        let t = tensor(10);
        let s = t.slice(2..6);
        assert_eq!(s.len(), 4);
        assert_eq!(s.bytes(), 16);
        assert_eq!(s.range(), 2..6);
        assert_eq!(t.whole().len(), 10);
        assert_eq!(t.element(3).range(), 3..4);
    }

    #[test]
    fn overlap_detection() {
        let t = tensor(10);
        assert!(t.slice(0..5).overlaps(&t.slice(4..6)));
        assert!(!t.slice(0..5).overlaps(&t.slice(5..10)));
        let u = Tensor {
            id: 1,
            len: 10,
            dtype: DType::F32,
        };
        assert!(!t.slice(0..5).overlaps(&u.slice(0..5)));
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I32.size_bytes(), 4);
    }
}
