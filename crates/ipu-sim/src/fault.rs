//! Deterministic, seed-driven fault injection for the simulated device.
//!
//! Real IPUs fail in ways the static graph cannot rule out: a bit flips in
//! tile SRAM, one tile runs slow and stalls the BSP superstep, an exchange
//! delivers a corrupted word, a data-dependent loop stops converging. This
//! module models those four failure classes as a [`FaultPlan`] the
//! [`crate::Engine`] consults between supersteps. Everything is driven by a
//! splitmix64 stream seeded from the plan, so a given `(plan, program,
//! input)` triple produces the *same* faults on every run — failures are
//! reproducible and testable, never flaky.
//!
//! Injected faults are counted in [`crate::CycleStats::faults`], and
//! [`crate::Engine::snapshot`]/[`crate::Engine::restore`] checkpoint device
//! memory so a host-side supervisor can rewind and retry. The fault RNG
//! deliberately survives a restore: a retry replays the program against a
//! *fresh* slice of the fault stream, so a one-off corruption does not
//! deterministically recur on every attempt.

use std::fmt;
use std::str::FromStr;

/// A deterministic schedule of runtime faults for one engine.
///
/// Rates are per *opportunity*: `bit_flip_rate` and `straggler_rate` are
/// checked once per executed compute set (superstep), `exchange_rate` once
/// per exchange phase, and `diverge_rate` once per `RepeatWhileTrue` loop
/// entry. All faults stay disarmed until `after_supersteps` supersteps have
/// executed, which is how tests target "mid-run" corruption rather than
/// clobbering freshly-loaded inputs.
///
/// Plans parse from compact spec strings (see [`FaultPlan::from_str`]):
///
/// ```
/// use ipu_sim::FaultPlan;
/// let plan: FaultPlan = "seed=42,flip=0.02@slack,straggler=0.01@4,after=10"
///     .parse()
///     .unwrap();
/// assert_eq!(plan.seed, 42);
/// assert_eq!(plan.flip_target.as_deref(), Some("slack"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream.
    pub seed: u64,
    /// Probability per superstep of flipping one random bit in one mapped
    /// tensor (filtered by [`FaultPlan::flip_target`]).
    pub bit_flip_rate: f64,
    /// Substring filter on tensor debug names for bit flips; `None` makes
    /// every tensor eligible.
    pub flip_target: Option<String>,
    /// Probability per superstep that the slowest tile runs
    /// [`FaultPlan::straggler_factor`] times slower, inflating the
    /// superstep.
    pub straggler_rate: f64,
    /// Cycle multiplier applied to a straggler superstep (≥ 1).
    pub straggler_factor: f64,
    /// Probability per exchange phase of corrupting one delivered element.
    pub exchange_rate: f64,
    /// Probability per `RepeatWhileTrue` entry that the loop never
    /// converges and the divergence watchdog fires.
    pub diverge_rate: f64,
    /// Supersteps that must execute before any fault can fire.
    pub after_supersteps: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            bit_flip_rate: 0.0,
            flip_target: None,
            straggler_rate: 0.0,
            straggler_factor: 4.0,
            exchange_rate: 0.0,
            diverge_rate: 0.0,
            after_supersteps: 0,
        }
    }
}

impl FaultPlan {
    /// An inert plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Enables SRAM bit flips at `rate` per superstep.
    pub fn with_bit_flips(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.bit_flip_rate = rate;
        self
    }

    /// Restricts bit flips to tensors whose debug name contains `substr`.
    pub fn targeting(mut self, substr: impl Into<String>) -> Self {
        self.flip_target = Some(substr.into());
        self
    }

    /// Enables straggler tiles at `rate` per superstep with the given
    /// slowdown factor.
    pub fn with_stragglers(mut self, rate: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        assert!(factor >= 1.0, "a straggler cannot speed the tile up");
        self.straggler_rate = rate;
        self.straggler_factor = factor;
        self
    }

    /// Enables exchange corruption at `rate` per exchange phase.
    pub fn with_exchange_corruption(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.exchange_rate = rate;
        self
    }

    /// Enables forced loop divergence at `rate` per `RepeatWhileTrue`
    /// entry.
    pub fn with_forced_divergence(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.diverge_rate = rate;
        self
    }

    /// Keeps all faults disarmed for the first `supersteps` supersteps.
    pub fn after_supersteps(mut self, supersteps: u64) -> Self {
        self.after_supersteps = supersteps;
        self
    }

    /// `true` if no fault can ever fire under this plan.
    pub fn is_inert(&self) -> bool {
        self.bit_flip_rate == 0.0
            && self.straggler_rate == 0.0
            && self.exchange_rate == 0.0
            && self.diverge_rate == 0.0
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.bit_flip_rate > 0.0 {
            write!(f, ",flip={}", self.bit_flip_rate)?;
            if let Some(t) = &self.flip_target {
                write!(f, "@{t}")?;
            }
        }
        if self.straggler_rate > 0.0 {
            write!(
                f,
                ",straggler={}@{}",
                self.straggler_rate, self.straggler_factor
            )?;
        }
        if self.exchange_rate > 0.0 {
            write!(f, ",exchange={}", self.exchange_rate)?;
        }
        if self.diverge_rate > 0.0 {
            write!(f, ",diverge={}", self.diverge_rate)?;
        }
        if self.after_supersteps > 0 {
            write!(f, ",after={}", self.after_supersteps)?;
        }
        Ok(())
    }
}

/// Error parsing a [`FaultPlan`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// What went wrong, mentioning the offending clause.
    pub detail: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.detail)
    }
}

impl std::error::Error for FaultSpecError {}

fn bad(detail: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        detail: detail.into(),
    }
}

fn parse_rate(clause: &str, value: &str) -> Result<f64, FaultSpecError> {
    let rate: f64 = value
        .parse()
        .map_err(|_| bad(format!("`{clause}`: rate `{value}` is not a number")))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(bad(format!("`{clause}`: rate {rate} outside [0, 1]")));
    }
    Ok(rate)
}

impl FromStr for FaultPlan {
    type Err = FaultSpecError;

    /// Parses specs like `seed=42,flip=0.02@slack,straggler=0.01@4,
    /// exchange=0.01,diverge=0.005,after=10`. Clauses may appear in any
    /// order; unspecified clauses keep their defaults.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| bad(format!("`{clause}` is not `key=value`")))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("`{clause}`: seed must be a u64")))?;
                }
                "flip" => {
                    let (rate, target) = match value.split_once('@') {
                        Some((r, t)) => (r, Some(t)),
                        None => (value, None),
                    };
                    plan.bit_flip_rate = parse_rate(clause, rate)?;
                    plan.flip_target = target.map(str::to_string);
                }
                "straggler" => {
                    let (rate, factor) = match value.split_once('@') {
                        Some((r, f)) => (r, Some(f)),
                        None => (value, None),
                    };
                    plan.straggler_rate = parse_rate(clause, rate)?;
                    if let Some(factor) = factor {
                        plan.straggler_factor = factor.parse().map_err(|_| {
                            bad(format!("`{clause}`: factor `{factor}` is not a number"))
                        })?;
                        if plan.straggler_factor < 1.0 {
                            return Err(bad(format!("`{clause}`: factor must be >= 1")));
                        }
                    }
                }
                "exchange" => plan.exchange_rate = parse_rate(clause, value)?,
                "diverge" => plan.diverge_rate = parse_rate(clause, value)?,
                "after" => {
                    plan.after_supersteps = value
                        .parse()
                        .map_err(|_| bad(format!("`{clause}`: after must be a u64")))?;
                }
                other => {
                    return Err(bad(format!(
                        "unknown clause `{other}` (expected seed/flip/straggler/\
                         exchange/diverge/after)"
                    )))
                }
            }
        }
        Ok(plan)
    }
}

/// Live fault-injection state owned by an [`crate::Engine`].
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// splitmix64 stream state; advances monotonically across restores.
    rng: u64,
    /// Tensor ids eligible for SRAM bit flips (name filter pre-resolved).
    pub(crate) flip_targets: Vec<usize>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, flip_targets: Vec<usize>) -> Self {
        Self {
            // Pre-mix so seed=0 and seed=1 give unrelated streams.
            rng: plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x853c_49e6_748f_ea9b,
            plan,
            flip_targets,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn draw(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub(crate) fn draw_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Whether faults are armed after `supersteps` executed supersteps.
    pub(crate) fn armed(&self, supersteps: u64) -> bool {
        supersteps >= self.plan.after_supersteps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display() {
        let spec = "seed=42,flip=0.02@slack,straggler=0.01@4,exchange=0.005,diverge=0.001,after=10";
        let plan: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.bit_flip_rate, 0.02);
        assert_eq!(plan.flip_target.as_deref(), Some("slack"));
        assert_eq!(plan.straggler_rate, 0.01);
        assert_eq!(plan.straggler_factor, 4.0);
        assert_eq!(plan.exchange_rate, 0.005);
        assert_eq!(plan.diverge_rate, 0.001);
        assert_eq!(plan.after_supersteps, 10);
        let reparsed: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("flip", "key=value"),
            ("flip=2.0", "outside"),
            ("flip=abc", "not a number"),
            ("straggler=0.1@0.5", ">= 1"),
            ("warp=0.1", "unknown clause"),
            ("seed=-3", "u64"),
        ] {
            let err = spec.parse::<FaultPlan>().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "spec `{spec}` gave `{err}`, expected mention of `{needle}`"
            );
        }
    }

    #[test]
    fn default_plan_is_inert_and_builders_arm_it() {
        assert!(FaultPlan::default().is_inert());
        assert!(FaultPlan::new(7).is_inert());
        assert!(!FaultPlan::new(7).with_bit_flips(0.1).is_inert());
        assert!(!FaultPlan::new(7).with_stragglers(0.1, 2.0).is_inert());
        assert!(!FaultPlan::new(7).with_exchange_corruption(0.1).is_inert());
        assert!(!FaultPlan::new(7).with_forced_divergence(0.1).is_inert());
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let mut a = FaultState::new(FaultPlan::new(9), vec![]);
        let mut b = FaultState::new(FaultPlan::new(9), vec![]);
        let mut c = FaultState::new(FaultPlan::new(10), vec![]);
        let sa: Vec<f64> = (0..32).map(|_| a.draw()).collect();
        let sb: Vec<f64> = (0..32).map(|_| b.draw()).collect();
        let sc: Vec<f64> = (0..32).map(|_| c.draw()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        assert!(sa.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn empty_spec_parses_to_default() {
        let plan: FaultPlan = "".parse().unwrap();
        assert_eq!(plan, FaultPlan::default());
    }
}
