//! The static computation graph: tensors, tile mappings, compute sets,
//! vertices, and the compile-time validation that mirrors Poplar's.

use crate::codelet::VertexCtx;
use crate::config::IpuConfig;
use crate::engine::Engine;
use crate::error::GraphError;
use crate::program::Program;
use crate::tensor::{DType, Tensor, TensorSlice};

/// Identifies a compute set within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComputeSetId(pub(crate) usize);

/// Identifies a vertex within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VertexId(pub(crate) usize);

/// How a vertex accesses a connected region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read-only.
    Read,
    /// Write (the previous contents may be read too — modeled as
    /// exclusive, identical to `ReadWrite` for validation).
    Write,
    /// Read and write.
    ReadWrite,
}

impl Access {
    /// `true` if the access requires exclusivity (any kind of write).
    pub fn is_exclusive(self) -> bool {
        !matches!(self, Access::Read)
    }
}

pub(crate) struct TensorInfo {
    pub(crate) name: String,
    pub(crate) len: usize,
    pub(crate) dtype: DType,
    /// Sorted, disjoint `(start, end, tile)` intervals covering `0..len`
    /// once fully mapped.
    pub(crate) mapping: Vec<(usize, usize, usize)>,
    /// A replicated tensor holds one logical copy **per tile** (each tile
    /// pays its SRAM). Any tile may read it; it is written only by
    /// [`crate::Program::Broadcast`], which refreshes every replica in one
    /// multicast exchange. This is how Poplar programs mirror small,
    /// frequently-read state (cover flags, selected indices) to all tiles.
    pub(crate) replicated: bool,
    /// A host tensor lives in host DRAM behind the PCIe link, not in any
    /// tile's SRAM: it has no tile mapping, pays no SRAM budget, and no
    /// vertex may connect to it. Data moves between host tensors and
    /// device tensors only through [`crate::Program::Copy`] /
    /// [`crate::Program::Exchange`], charged at
    /// [`IpuConfig::host_io_bytes_per_cycle`] (the link is serial: one
    /// stream, not per-tile fabric). This models Poplar's host-streamed
    /// `RemoteBuffer`s, which is what lets a program work on cost data
    /// larger than the chip's combined SRAM.
    pub(crate) host: bool,
}

impl TensorInfo {
    /// The tile owning flat element `idx`, if mapped.
    pub(crate) fn tile_of(&self, idx: usize) -> Option<usize> {
        self.mapping
            .iter()
            .find(|&&(s, e, _)| s <= idx && idx < e)
            .map(|&(_, _, t)| t)
    }

    /// Binary search: the `(interval_end, tile)` covering `idx`.
    /// Only call on fully-mapped tensors with `idx < len`.
    pub(crate) fn interval_at(&self, idx: usize) -> (usize, usize) {
        let i = self.mapping.partition_point(|&(_, e, _)| e <= idx);
        let (s, e, t) = self.mapping[i];
        debug_assert!(s <= idx && idx < e);
        (e, t)
    }

    /// Whether `start..end` is mapped entirely to `tile`.
    fn fully_on_tile(&self, start: usize, end: usize, tile: usize) -> bool {
        let mut covered = start;
        for &(s, e, t) in &self.mapping {
            if e <= covered {
                continue;
            }
            if s > covered {
                return false; // gap
            }
            if t != tile {
                return false;
            }
            covered = e;
            if covered >= end {
                return true;
            }
        }
        covered >= end
    }

    /// Bytes of `start..end` residing on each tile, accumulated into
    /// `per_tile`. Binary-searches the sorted mapping so the cost is
    /// proportional to the intervals actually touched.
    pub(crate) fn bytes_per_tile(&self, start: usize, end: usize, per_tile: &mut [u64]) {
        let esz = self.dtype.size_bytes() as u64;
        // First interval whose end exceeds `start`.
        let first = self.mapping.partition_point(|&(_, e, _)| e <= start);
        for &(s, e, t) in &self.mapping[first..] {
            if s >= end {
                break;
            }
            let lo = s.max(start);
            let hi = e.min(end);
            if lo < hi {
                per_tile[t] += (hi - lo) as u64 * esz;
            }
        }
    }
}

pub(crate) struct VertexInfo {
    pub(crate) cs: usize,
    pub(crate) tile: usize,
    /// Explicit hardware thread, or `None` for round-robin assignment at
    /// compile time.
    pub(crate) thread: Option<usize>,
    pub(crate) name: String,
    pub(crate) codelet: Box<dyn Fn(&VertexCtx) -> u64 + Send + Sync>,
    pub(crate) fields: Vec<(TensorSlice, Access)>,
}

pub(crate) struct ComputeSetInfo {
    pub(crate) name: String,
    pub(crate) vertices: Vec<usize>,
}

/// The static computation graph.
///
/// Everything is declared up front — tensors, their tile mappings, compute
/// sets, vertices, field connections — and validated when [`Graph::compile`]
/// turns the graph plus a [`Program`] into an [`Engine`]. This mirrors the
/// IPU's compile-ahead model (§III-A): dynamic structure is impossible by
/// construction.
pub struct Graph {
    pub(crate) config: IpuConfig,
    pub(crate) tensors: Vec<TensorInfo>,
    pub(crate) compute_sets: Vec<ComputeSetInfo>,
    pub(crate) vertices: Vec<VertexInfo>,
}

impl Graph {
    /// Creates an empty graph for the given device.
    pub fn new(config: IpuConfig) -> Self {
        Self {
            config,
            tensors: Vec::new(),
            compute_sets: Vec::new(),
            vertices: Vec::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &IpuConfig {
        &self.config
    }

    /// Declares a tensor of `len` elements. The tensor still needs a tile
    /// mapping before the graph can compile.
    pub fn add_tensor(&mut self, name: &str, dtype: DType, len: usize) -> Tensor {
        let id = self.tensors.len();
        self.tensors.push(TensorInfo {
            name: name.to_string(),
            len,
            dtype,
            mapping: Vec::new(),
            replicated: false,
            host: false,
        });
        Tensor { id, len, dtype }
    }

    /// Declares a **replicated** tensor: every tile holds (and pays SRAM
    /// for) its own read-only copy of all `len` elements, refreshed by
    /// [`Program::broadcast`]. Vertices on any tile may read it; vertex
    /// writes and plain copies are rejected at compile time.
    pub fn add_replicated(&mut self, name: &str, dtype: DType, len: usize) -> Tensor {
        let id = self.tensors.len();
        self.tensors.push(TensorInfo {
            name: name.to_string(),
            len,
            dtype,
            mapping: Vec::new(),
            replicated: true,
            host: false,
        });
        Tensor { id, len, dtype }
    }

    /// Declares a **host** tensor: `len` elements of host DRAM behind the
    /// PCIe link. It needs (and accepts) no tile mapping, pays no tile's
    /// SRAM budget, and cannot be connected to vertices — device code
    /// reaches it only through exchange programs ([`Program::copy`] /
    /// [`Program::exchange`] with exactly one host endpoint), each charged
    /// at the serial host-IO bandwidth. This is how a program streams a
    /// cost matrix bigger than the chip's SRAM through resident working
    /// blocks.
    pub fn add_host_tensor(&mut self, name: &str, dtype: DType, len: usize) -> Tensor {
        let id = self.tensors.len();
        self.tensors.push(TensorInfo {
            name: name.to_string(),
            len,
            dtype,
            mapping: Vec::new(),
            replicated: false,
            host: true,
        });
        Tensor { id, len, dtype }
    }

    /// Maps an entire tensor to one tile.
    pub fn map_to_tile(&mut self, tensor: Tensor, tile: usize) -> Result<(), GraphError> {
        self.map_slice(tensor.whole(), tile)
    }

    /// Maps a contiguous region of a tensor to a tile. Regions of one
    /// tensor must not overlap across calls.
    pub fn map_slice(&mut self, slice: TensorSlice, tile: usize) -> Result<(), GraphError> {
        if tile >= self.config.tiles {
            return Err(GraphError::BadTile {
                tile,
                tiles: self.config.tiles,
            });
        }
        let info = &mut self.tensors[slice.tensor.id];
        if info.replicated {
            return Err(GraphError::BadSlice {
                detail: format!("tensor '{}' is replicated and needs no mapping", info.name),
            });
        }
        if info.host {
            return Err(GraphError::BadSlice {
                detail: format!("tensor '{}' lives on the host and takes no tile mapping", info.name),
            });
        }
        if slice.end > info.len || slice.start > slice.end {
            return Err(GraphError::BadSlice {
                detail: format!(
                    "mapping {}..{} outside tensor '{}' of length {}",
                    slice.start, slice.end, info.name, info.len
                ),
            });
        }
        if slice.is_empty() {
            return Ok(());
        }
        for &(s, e, _) in &info.mapping {
            if slice.start < e && s < slice.end {
                return Err(GraphError::AlreadyMapped {
                    tensor: info.name.clone(),
                    element: slice.start.max(s),
                });
            }
        }
        info.mapping.push((slice.start, slice.end, tile));
        info.mapping.sort_unstable_by_key(|&(s, _, _)| s);
        Ok(())
    }

    /// Maps a tensor across `tiles` in contiguous chunks of `chunk`
    /// elements: chunk `k` goes to tile `first_tile + (k % tiles)`.
    ///
    /// With `chunk` = one matrix row this is exactly the paper's 1D row
    /// decomposition (§IV-A): consecutive rows round-robin over tiles so
    /// every tile holds (almost) the same number of rows.
    pub fn map_chunks_round_robin(
        &mut self,
        tensor: Tensor,
        chunk: usize,
        first_tile: usize,
        tiles: usize,
    ) -> Result<(), GraphError> {
        if chunk == 0 || tiles == 0 {
            return Err(GraphError::BadSlice {
                detail: "chunk and tile count must be positive".into(),
            });
        }
        let mut start = 0;
        let mut k = 0;
        while start < tensor.len {
            let end = (start + chunk).min(tensor.len);
            self.map_slice(tensor.slice(start..end), first_tile + (k % tiles))?;
            start = end;
            k += 1;
        }
        Ok(())
    }

    /// Maps a tensor evenly across all tiles of the device in contiguous
    /// blocks (block `t` on tile `t`).
    pub fn map_evenly(&mut self, tensor: Tensor) -> Result<(), GraphError> {
        let tiles = self.config.tiles;
        let len = tensor.len;
        let per = len.div_ceil(tiles).max(1);
        let mut start = 0;
        let mut tile = 0;
        while start < len {
            let end = (start + per).min(len);
            self.map_slice(tensor.slice(start..end), tile)?;
            start = end;
            tile += 1;
        }
        Ok(())
    }

    /// The tile holding flat element `idx` of `tensor`, if mapped.
    pub fn tile_of(&self, tensor: Tensor, idx: usize) -> Option<usize> {
        self.tensors[tensor.id].tile_of(idx)
    }

    /// Declares a compute set. Executing it (via [`Program::execute`])
    /// runs all its vertices as one BSP superstep.
    pub fn add_compute_set(&mut self, name: &str) -> ComputeSetId {
        let id = self.compute_sets.len();
        self.compute_sets.push(ComputeSetInfo {
            name: name.to_string(),
            vertices: Vec::new(),
        });
        ComputeSetId(id)
    }

    /// Adds a vertex to `cs`, to run on `tile` (hardware thread chosen
    /// round-robin at compile time).
    pub fn add_vertex(
        &mut self,
        cs: ComputeSetId,
        tile: usize,
        name: &str,
        codelet: impl Fn(&VertexCtx) -> u64 + Send + Sync + 'static,
    ) -> Result<VertexId, GraphError> {
        self.add_vertex_inner(cs, tile, None, name, Box::new(codelet))
    }

    /// Adds a vertex pinned to a specific hardware thread of `tile` —
    /// used when the algorithm assigns work to threads explicitly, as the
    /// paper's six per-row segments do (§IV-B).
    pub fn add_vertex_on_thread(
        &mut self,
        cs: ComputeSetId,
        tile: usize,
        thread: usize,
        name: &str,
        codelet: impl Fn(&VertexCtx) -> u64 + Send + Sync + 'static,
    ) -> Result<VertexId, GraphError> {
        if thread >= self.config.threads_per_tile {
            return Err(GraphError::Invalid {
                detail: format!(
                    "thread {thread} out of range (device has {} threads per tile)",
                    self.config.threads_per_tile
                ),
            });
        }
        self.add_vertex_inner(cs, tile, Some(thread), name, Box::new(codelet))
    }

    fn add_vertex_inner(
        &mut self,
        cs: ComputeSetId,
        tile: usize,
        thread: Option<usize>,
        name: &str,
        codelet: Box<dyn Fn(&VertexCtx) -> u64 + Send + Sync>,
    ) -> Result<VertexId, GraphError> {
        if tile >= self.config.tiles {
            return Err(GraphError::BadTile {
                tile,
                tiles: self.config.tiles,
            });
        }
        if cs.0 >= self.compute_sets.len() {
            return Err(GraphError::Invalid {
                detail: format!("compute set {} does not exist", cs.0),
            });
        }
        let id = self.vertices.len();
        self.vertices.push(VertexInfo {
            cs: cs.0,
            tile,
            thread,
            name: name.to_string(),
            codelet,
            fields: Vec::new(),
        });
        self.compute_sets[cs.0].vertices.push(id);
        Ok(VertexId(id))
    }

    /// Connects a tensor region to the next field slot of `vertex`.
    ///
    /// Fields are positional: the codelet sees them in connection order
    /// (`ctx.f32(0)` is the first connected region, and so on).
    pub fn connect(
        &mut self,
        vertex: VertexId,
        slice: TensorSlice,
        access: Access,
    ) -> Result<(), GraphError> {
        let info = &self.tensors[slice.tensor.id];
        if slice.end > info.len || slice.start > slice.end {
            return Err(GraphError::BadSlice {
                detail: format!(
                    "connecting {}..{} outside tensor '{}' of length {}",
                    slice.start, slice.end, info.name, info.len
                ),
            });
        }
        self.vertices[vertex.0].fields.push((slice, access));
        Ok(())
    }

    /// Validates the graph and program, producing a runnable [`Engine`].
    ///
    /// Checks performed (all static, before any data exists):
    /// 1. the device config describes a consistent chip topology
    ///    ([`IpuConfig::validate`]) — an inconsistent one would miscost
    ///    cross-chip traffic rather than fail;
    /// 2. every tensor is fully mapped, exactly once per element;
    /// 3. no tile's mapped bytes exceed its SRAM budget (C2);
    /// 4. every vertex field lies wholly on the vertex's tile (C1/C2);
    /// 5. within each compute set, no write overlaps any other field of
    ///    any vertex — races are impossible (C1);
    /// 6. the program references valid compute sets, copy endpoints have
    ///    matching dtype/length, and `RepeatWhileTrue` predicates are
    ///    single-element i32 tensors.
    pub fn compile(self, program: Program) -> Result<Engine, GraphError> {
        self.config
            .validate()
            .map_err(|detail| GraphError::Invalid { detail })?;
        self.validate_mappings()?;
        self.validate_memory()?;
        self.validate_locality()?;
        self.validate_races()?;
        self.validate_program(&program)?;
        Ok(Engine::new(self, program))
    }

    fn validate_mappings(&self) -> Result<(), GraphError> {
        for info in &self.tensors {
            if info.replicated || info.host {
                continue;
            }
            let mut covered = 0;
            for &(s, e, _) in &info.mapping {
                if s > covered {
                    return Err(GraphError::Unmapped {
                        tensor: info.name.clone(),
                        element: covered,
                    });
                }
                covered = covered.max(e);
            }
            if covered < info.len {
                return Err(GraphError::Unmapped {
                    tensor: info.name.clone(),
                    element: covered,
                });
            }
        }
        Ok(())
    }

    fn validate_memory(&self) -> Result<(), GraphError> {
        let mut per_tile = vec![0u64; self.config.tiles];
        for info in &self.tensors {
            if info.host {
                // Host DRAM, not tile SRAM.
                continue;
            }
            if info.replicated {
                // Every tile pays for its replica.
                let bytes = (info.len * info.dtype.size_bytes()) as u64;
                per_tile.iter_mut().for_each(|b| *b += bytes);
            } else {
                info.bytes_per_tile(0, info.len, &mut per_tile);
            }
        }
        for (tile, &used) in per_tile.iter().enumerate() {
            if used as usize > self.config.tile_memory_bytes {
                return Err(GraphError::TileMemoryExceeded {
                    tile,
                    used: used as usize,
                    budget: self.config.tile_memory_bytes,
                });
            }
        }
        Ok(())
    }

    fn validate_locality(&self) -> Result<(), GraphError> {
        for v in &self.vertices {
            for (slice, access) in &v.fields {
                let info = &self.tensors[slice.tensor.id];
                if info.host {
                    return Err(GraphError::NotOnTile {
                        detail: format!(
                            "vertex '{}' connects host tensor '{}'; host data must be \
                             exchanged into a device tensor first",
                            v.name, info.name
                        ),
                    });
                }
                if info.replicated {
                    // Any tile reads its own replica; writes are only
                    // possible through Broadcast.
                    if access.is_exclusive() {
                        return Err(GraphError::ComputeSetRace {
                            detail: format!(
                                "vertex '{}' writes replicated tensor '{}'; replicas are \
                                 read-only for vertices",
                                v.name, info.name
                            ),
                        });
                    }
                    continue;
                }
                if !slice.is_empty() && !info.fully_on_tile(slice.start, slice.end, v.tile) {
                    return Err(GraphError::NotOnTile {
                        detail: format!(
                            "vertex '{}' on tile {} connects '{}'[{}..{}] which is not \
                             (entirely) on that tile",
                            v.name, v.tile, info.name, slice.start, slice.end
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn validate_races(&self) -> Result<(), GraphError> {
        // Per compute set and per tensor: every exclusive region must be
        // disjoint from every other field region (of any vertex, itself
        // included — a vertex aliasing its own write region through a
        // second field would still be undefined behaviour on real
        // hardware's 64-bit load/store pairs, and in this simulator).
        for (cs_idx, cs) in self.compute_sets.iter().enumerate() {
            // (tensor, start, end, vertex, field_idx, exclusive)
            let mut regions: Vec<(usize, usize, usize, usize, usize, bool)> = Vec::new();
            for &vid in &cs.vertices {
                let v = &self.vertices[vid];
                for (f_idx, (slice, access)) in v.fields.iter().enumerate() {
                    // Replicated tensors are read-only for vertices (checked
                    // in validate_locality) and every tile reads its own
                    // copy, so they cannot race; skipping them avoids a
                    // quadratic sweep over thousands of identical reads.
                    if self.tensors[slice.tensor.id].replicated {
                        continue;
                    }
                    if !slice.is_empty() {
                        regions.push((
                            slice.tensor.id,
                            slice.start,
                            slice.end,
                            vid,
                            f_idx,
                            access.is_exclusive(),
                        ));
                    }
                }
            }
            regions.sort_unstable_by_key(|&(t, s, ..)| (t, s));
            // Sweep: compare each region with the following regions that
            // start before it ends (same tensor).
            for i in 0..regions.len() {
                let (t0, s0, e0, v0, f0, x0) = regions[i];
                for &(t1, s1, e1, v1, f1, x1) in regions[i + 1..].iter() {
                    if t1 != t0 || s1 >= e0 {
                        break;
                    }
                    debug_assert!(s1 < e0 && s0 < e1);
                    if x0 || x1 {
                        let name = &self.compute_sets[cs_idx].name;
                        return Err(GraphError::ComputeSetRace {
                            detail: format!(
                                "in compute set '{name}': vertex '{}' field {f0} \
                                 [{s0}..{e0}) and vertex '{}' field {f1} [{s1}..{e1}) \
                                 overlap on tensor '{}' with a write",
                                self.vertices[v0].name,
                                self.vertices[v1].name,
                                self.tensors[t0].name
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_program(&self, program: &Program) -> Result<(), GraphError> {
        match program {
            Program::Sequence(items) => {
                for p in items {
                    self.validate_program(p)?;
                }
            }
            Program::Execute(cs) => {
                if cs.0 >= self.compute_sets.len() {
                    return Err(GraphError::Invalid {
                        detail: format!("program references unknown compute set {}", cs.0),
                    });
                }
            }
            Program::Exchange(pairs) => {
                // Each pair behaves like a Copy; destinations must also be
                // pairwise disjoint (they land in the same phase).
                for (src, dst) in pairs {
                    self.validate_program(&Program::Copy {
                        src: *src,
                        dst: *dst,
                    })?;
                }
                let mut dsts: Vec<&TensorSlice> = pairs.iter().map(|(_, d)| d).collect();
                dsts.sort_unstable_by_key(|d| (d.tensor.id, d.start));
                for w in dsts.windows(2) {
                    if w[0].overlaps(w[1]) {
                        return Err(GraphError::BadSlice {
                            detail: "exchange destinations overlap".into(),
                        });
                    }
                }
            }
            Program::Copy { src, dst } | Program::Broadcast { src, dst } => {
                let si = &self.tensors[src.tensor.id];
                let di = &self.tensors[dst.tensor.id];
                if si.host && di.host {
                    return Err(GraphError::BadSlice {
                        detail: format!(
                            "copy '{}' -> '{}' never touches the device; host-to-host \
                             moves belong on the host",
                            si.name, di.name
                        ),
                    });
                }
                if (si.host || di.host) && matches!(program, Program::Broadcast { .. }) {
                    return Err(GraphError::BadSlice {
                        detail: format!(
                            "broadcast endpoints must be device tensors ('{}' / '{}')",
                            si.name, di.name
                        ),
                    });
                }
                if si.replicated {
                    return Err(GraphError::BadSlice {
                        detail: format!("'{}' is replicated and cannot be a copy source", si.name),
                    });
                }
                if di.replicated {
                    let whole = dst.start == 0 && dst.end == di.len && src.len() == di.len;
                    let bounds_ok = src.end <= si.len && src.start <= src.end;
                    let dtype_ok = src.tensor.dtype == dst.tensor.dtype;
                    if !(matches!(program, Program::Broadcast { .. })
                        && whole
                        && bounds_ok
                        && dtype_ok)
                    {
                        return Err(GraphError::BadSlice {
                            detail: format!(
                                "replicated tensor '{}' can only be refreshed by a whole-tensor \
                                 Broadcast from an equal-length, same-dtype, in-bounds source",
                                di.name
                            ),
                        });
                    }
                    return Ok(());
                }
                if src.end > si.len || dst.end > di.len {
                    return Err(GraphError::BadSlice {
                        detail: format!(
                            "copy endpoints out of bounds ('{}' / '{}')",
                            si.name, di.name
                        ),
                    });
                }
                if src.tensor.dtype != dst.tensor.dtype {
                    return Err(GraphError::BadSlice {
                        detail: format!("copy dtype mismatch ('{}' / '{}')", si.name, di.name),
                    });
                }
                let ok = if matches!(program, Program::Broadcast { .. }) {
                    !src.is_empty() && dst.len() % src.len() == 0
                } else {
                    src.len() == dst.len()
                };
                if !ok {
                    return Err(GraphError::BadSlice {
                        detail: format!(
                            "copy length mismatch: src {} elements, dst {} elements \
                             ('{}' -> '{}')",
                            src.len(),
                            dst.len(),
                            si.name,
                            di.name
                        ),
                    });
                }
                if matches!(program, Program::Copy { .. }) && src.overlaps(dst) {
                    return Err(GraphError::BadSlice {
                        detail: format!("copy source and destination overlap in '{}'", si.name),
                    });
                }
            }
            Program::Repeat { body, .. } => self.validate_program(body)?,
            Program::RepeatWhileTrue { predicate, body } => {
                if predicate.dtype != DType::I32 || predicate.len != 1 {
                    return Err(GraphError::Invalid {
                        detail: "RepeatWhileTrue predicate must be a 1-element i32 tensor".into(),
                    });
                }
                self.validate_program(body)?;
            }
            Program::If {
                predicate,
                then_body,
                else_body,
            } => {
                if predicate.dtype != DType::I32 || predicate.len != 1 {
                    return Err(GraphError::Invalid {
                        detail: "If predicate must be a 1-element i32 tensor".into(),
                    });
                }
                self.validate_program(then_body)?;
                self.validate_program(else_body)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;

    fn tiny_graph() -> Graph {
        Graph::new(IpuConfig::tiny(4))
    }

    #[test]
    fn unmapped_tensor_rejected_at_compile() {
        let mut g = tiny_graph();
        let _t = g.add_tensor("t", DType::F32, 8);
        let err = g.compile(Program::seq(vec![])).unwrap_err();
        assert!(matches!(err, GraphError::Unmapped { element: 0, .. }));
    }

    #[test]
    fn partially_mapped_tensor_rejected() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_slice(t.slice(0..4), 0).unwrap();
        let err = g.compile(Program::seq(vec![])).unwrap_err();
        assert!(matches!(err, GraphError::Unmapped { element: 4, .. }));
    }

    #[test]
    fn double_mapping_rejected_immediately() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_slice(t.slice(0..6), 0).unwrap();
        let err = g.map_slice(t.slice(4..8), 1).unwrap_err();
        assert!(matches!(err, GraphError::AlreadyMapped { element: 4, .. }));
    }

    #[test]
    fn tile_memory_budget_enforced() {
        let mut g = tiny_graph();
        // 624 KiB budget; 200_000 f32 = 800 KB on one tile overflows.
        let t = g.add_tensor("big", DType::F32, 200_000);
        g.map_to_tile(t, 2).unwrap();
        let err = g.compile(Program::seq(vec![])).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TileMemoryExceeded { tile: 2, .. }
        ));
    }

    #[test]
    fn memory_budget_allows_spread_data() {
        let mut g = tiny_graph();
        // The same 800 KB spread over 4 tiles fits comfortably.
        let t = g.add_tensor("big", DType::F32, 200_000);
        g.map_evenly(t).unwrap();
        assert!(g.compile(Program::seq(vec![])).is_ok());
    }

    #[test]
    fn vertex_cannot_touch_remote_tile_data() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 1).unwrap();
        let cs = g.add_compute_set("cs");
        let v = g.add_vertex(cs, 0, "reader", |_| 1).unwrap();
        g.connect(v, t.slice(0..8), Access::Read).unwrap();
        let err = g.compile(Program::execute(cs)).unwrap_err();
        assert!(matches!(err, GraphError::NotOnTile { .. }));
    }

    #[test]
    fn straddling_region_rejected_even_if_partially_local() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_slice(t.slice(0..4), 0).unwrap();
        g.map_slice(t.slice(4..8), 1).unwrap();
        let cs = g.add_compute_set("cs");
        let v = g.add_vertex(cs, 0, "reader", |_| 1).unwrap();
        g.connect(v, t.slice(0..8), Access::Read).unwrap();
        let err = g.compile(Program::execute(cs)).unwrap_err();
        assert!(matches!(err, GraphError::NotOnTile { .. }));
    }

    #[test]
    fn write_write_race_rejected() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 0).unwrap();
        let cs = g.add_compute_set("cs");
        let a = g.add_vertex(cs, 0, "a", |_| 1).unwrap();
        let b = g.add_vertex(cs, 0, "b", |_| 1).unwrap();
        g.connect(a, t.slice(0..5), Access::Write).unwrap();
        g.connect(b, t.slice(4..8), Access::Write).unwrap();
        let err = g.compile(Program::execute(cs)).unwrap_err();
        assert!(matches!(err, GraphError::ComputeSetRace { .. }));
    }

    #[test]
    fn read_write_race_rejected() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 0).unwrap();
        let cs = g.add_compute_set("cs");
        let a = g.add_vertex(cs, 0, "a", |_| 1).unwrap();
        let b = g.add_vertex(cs, 0, "b", |_| 1).unwrap();
        g.connect(a, t.slice(0..8), Access::Read).unwrap();
        g.connect(b, t.slice(7..8), Access::ReadWrite).unwrap();
        let err = g.compile(Program::execute(cs)).unwrap_err();
        assert!(matches!(err, GraphError::ComputeSetRace { .. }));
    }

    #[test]
    fn read_read_overlap_allowed() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 0).unwrap();
        let cs = g.add_compute_set("cs");
        let a = g.add_vertex(cs, 0, "a", |_| 1).unwrap();
        let b = g.add_vertex(cs, 0, "b", |_| 1).unwrap();
        g.connect(a, t.slice(0..8), Access::Read).unwrap();
        g.connect(b, t.slice(0..8), Access::Read).unwrap();
        assert!(g.compile(Program::execute(cs)).is_ok());
    }

    #[test]
    fn disjoint_writes_allowed() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 0).unwrap();
        let cs = g.add_compute_set("cs");
        let a = g.add_vertex(cs, 0, "a", |_| 1).unwrap();
        let b = g.add_vertex(cs, 0, "b", |_| 1).unwrap();
        g.connect(a, t.slice(0..4), Access::Write).unwrap();
        g.connect(b, t.slice(4..8), Access::Write).unwrap();
        assert!(g.compile(Program::execute(cs)).is_ok());
    }

    #[test]
    fn races_in_different_compute_sets_are_fine() {
        // BSP: compute sets execute in separate supersteps, so the same
        // region may be written by different sets.
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_to_tile(t, 0).unwrap();
        let cs1 = g.add_compute_set("cs1");
        let cs2 = g.add_compute_set("cs2");
        let a = g.add_vertex(cs1, 0, "a", |_| 1).unwrap();
        let b = g.add_vertex(cs2, 0, "b", |_| 1).unwrap();
        g.connect(a, t.slice(0..8), Access::Write).unwrap();
        g.connect(b, t.slice(0..8), Access::Write).unwrap();
        assert!(g
            .compile(Program::seq(vec![
                Program::execute(cs1),
                Program::execute(cs2)
            ]))
            .is_ok());
    }

    #[test]
    fn bad_tile_and_thread_rejected() {
        let mut g = tiny_graph();
        let cs = g.add_compute_set("cs");
        assert!(matches!(
            g.add_vertex(cs, 99, "v", |_| 1),
            Err(GraphError::BadTile { tile: 99, tiles: 4 })
        ));
        assert!(g.add_vertex_on_thread(cs, 0, 6, "v", |_| 1).is_err());
    }

    #[test]
    fn copy_validation() {
        let mut g = tiny_graph();
        let a = g.add_tensor("a", DType::F32, 8);
        let b = g.add_tensor("b", DType::F32, 4);
        let c = g.add_tensor("c", DType::I32, 8);
        g.map_to_tile(a, 0).unwrap();
        g.map_to_tile(b, 1).unwrap();
        g.map_to_tile(c, 2).unwrap();
        // Length mismatch.
        let err = g
            .clone_for_test()
            .compile(Program::copy(a.slice(0..8), b.slice(0..4)))
            .unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
        // Dtype mismatch.
        let err = g
            .clone_for_test()
            .compile(Program::copy(a.slice(0..8), c.slice(0..8)))
            .unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
        // Overlapping self-copy.
        let err = g
            .clone_for_test()
            .compile(Program::copy(a.slice(0..4), a.slice(2..6)))
            .unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
        // Valid copy.
        assert!(g
            .compile(Program::copy(a.slice(0..4), b.slice(0..4)))
            .is_ok());
    }

    #[test]
    fn while_predicate_must_be_scalar_i32() {
        let mut g = tiny_graph();
        let p = g.add_tensor("p", DType::F32, 1);
        g.map_to_tile(p, 0).unwrap();
        let err = g
            .compile(Program::while_true(p, Program::seq(vec![])))
            .unwrap_err();
        assert!(matches!(err, GraphError::Invalid { .. }));
    }

    #[test]
    fn round_robin_chunk_mapping() {
        let mut g = tiny_graph();
        let t = g.add_tensor("t", DType::F32, 10);
        // Chunks of 2 over 3 tiles starting at tile 1.
        g.map_chunks_round_robin(t, 2, 1, 3).unwrap();
        assert_eq!(g.tile_of(t, 0), Some(1));
        assert_eq!(g.tile_of(t, 2), Some(2));
        assert_eq!(g.tile_of(t, 4), Some(3));
        assert_eq!(g.tile_of(t, 6), Some(1));
        assert_eq!(g.tile_of(t, 9), Some(2));
    }

    impl Graph {
        /// Test helper: rebuild an identical graph (codelets are not
        /// clonable, so only mapping-level tests use this, with no
        /// vertices present).
        fn clone_for_test(&self) -> Graph {
            assert!(self.vertices.is_empty());
            let mut g = Graph::new(self.config.clone());
            for t in &self.tensors {
                let nt = g.add_tensor(&t.name, t.dtype, t.len);
                for &(s, e, tile) in &t.mapping {
                    g.map_slice(nt.slice(s..e), tile).unwrap();
                }
            }
            g
        }
    }

    #[allow(dead_code)]
    fn cost_module_is_reachable() -> u64 {
        cost::f32_scan(4)
    }
}
