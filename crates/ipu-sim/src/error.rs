//! Graph construction and execution errors.

use std::fmt;

/// Errors raised while building or running an IPU graph.
///
/// Everything the Poplar compiler would reject statically is a
/// [`GraphError`] at build/compile time — tile-locality violations,
/// memory-budget overflows, and compute-set races are *not* runtime
/// surprises, mirroring the static computation graph of §III-A.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A tensor region was connected to a vertex on a different tile than
    /// the region's mapping (IPUs have no shared memory, C1/C2).
    NotOnTile {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A tile's mapped tensors exceed its SRAM budget (C2).
    TileMemoryExceeded {
        /// The overflowing tile.
        tile: usize,
        /// Bytes mapped to the tile.
        used: usize,
        /// The budget.
        budget: usize,
    },
    /// Two vertices in the same compute set access overlapping regions,
    /// at least one writing (C1: no atomics — this would be a race).
    ComputeSetRace {
        /// Human-readable description of the two conflicting accesses.
        detail: String,
    },
    /// A tensor element is not mapped to any tile.
    Unmapped {
        /// The tensor's debug name.
        tensor: String,
        /// First unmapped flat element index.
        element: usize,
    },
    /// A region was mapped twice to different tiles.
    AlreadyMapped {
        /// The tensor's debug name.
        tensor: String,
        /// First doubly-mapped flat element index.
        element: usize,
    },
    /// Slice bounds outside the tensor, or mismatched copy lengths, or a
    /// dtype mismatch.
    BadSlice {
        /// Human-readable description.
        detail: String,
    },
    /// A tile index outside the device.
    BadTile {
        /// The offending tile index.
        tile: usize,
        /// Number of tiles on the device.
        tiles: usize,
    },
    /// A program referenced an unknown compute set / undefined structure,
    /// or host I/O used the wrong dtype or length.
    Invalid {
        /// Human-readable description.
        detail: String,
    },
    /// `RepeatWhileTrue` exceeded the configured iteration guard — the
    /// device program diverged.
    Divergence {
        /// The iteration limit that was hit.
        limit: u64,
        /// The name of the first compute set inside the diverging loop's
        /// body (or a placeholder when the body executes none), so logs
        /// identify *which* device loop got stuck.
        context: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotOnTile { detail } => write!(f, "tile-locality violation: {detail}"),
            GraphError::TileMemoryExceeded { tile, used, budget } => write!(
                f,
                "tile {tile} memory exceeded: {used} bytes mapped, budget {budget} bytes"
            ),
            GraphError::ComputeSetRace { detail } => {
                write!(f, "compute-set race: {detail}")
            }
            GraphError::Unmapped { tensor, element } => {
                write!(
                    f,
                    "tensor '{tensor}' element {element} is not mapped to any tile"
                )
            }
            GraphError::AlreadyMapped { tensor, element } => {
                write!(
                    f,
                    "tensor '{tensor}' element {element} is mapped more than once"
                )
            }
            GraphError::BadSlice { detail } => write!(f, "bad slice: {detail}"),
            GraphError::BadTile { tile, tiles } => {
                write!(f, "tile {tile} out of range (device has {tiles} tiles)")
            }
            GraphError::Invalid { detail } => write!(f, "invalid graph/program: {detail}"),
            GraphError::Divergence { limit, context } => {
                write!(
                    f,
                    "RepeatWhileTrue around `{context}` exceeded {limit} iterations; \
                     program diverged"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_diagnostics() {
        let e = GraphError::TileMemoryExceeded {
            tile: 9,
            used: 700_000,
            budget: 638_976,
        };
        let s = e.to_string();
        assert!(s.contains("tile 9"));
        assert!(s.contains("700000"));
    }
}
