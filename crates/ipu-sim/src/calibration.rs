//! Cycle-model constants and their rationale.
//!
//! The simulator charges cycles in three places — compute, sync, exchange
//! — following the BSP model the IPU enforces (§III-A of the paper,
//! Valiant 1990). Constants come from the paper's hardware description and
//! the Graphcore microbenchmarking literature it cites (Jia et al.,
//! "Dissecting the Graphcore IPU architecture", arXiv:1912.03413):
//!
//! - **Clock 1.325 GHz, 1472 tiles, 6 threads/tile, 624 KiB/tile** —
//!   stated directly in §III and §V of the paper.
//! - **Thread issue model.** A tile's core rotates between its six
//!   hardware threads, issuing one instruction per cycle overall; a thread
//!   therefore runs at 1/6 of the clock when alone and the tile reaches
//!   full throughput only when all six threads carry balanced work. The
//!   compute charge of a superstep on one tile is
//!   `6 * max_thread(thread_instructions)`; the chip-wide charge is the
//!   max over tiles (stragglers stall the BSP step, challenge C3).
//! - **Two floats at a time.** The paper repeatedly exploits 64-bit loads
//!   ("we retrieve and update from the tile's memory two floats at once",
//!   §IV-C, §IV-H); [`crate::cost`] helpers charge `n/2` instructions per
//!   `n`-element f32 scan accordingly.
//! - **Exchange: 4 B/cycle/tile.** Jia et al. measure ~5.8 GB/s per-tile
//!   exchange bandwidth on Mk1 and ~8 TB/s aggregate on Mk2; 4 bytes per
//!   cycle per tile at 1.325 GHz gives 5.3 GB/s per tile, 7.8 TB/s
//!   aggregate — matching the paper's "fast (8 TB/s theoretical)
//!   all-to-all" description.
//! - **Sync ~150 cycles.** Chip-wide sync latency is of the order of
//!   100 ns on Mk2 (Jia et al. measure 35–150 ns depending on sync zone).
//! - **Exchange setup ~50 cycles** — the fixed cost of entering the
//!   exchange phase and executing the pre-compiled exchange sequence.
//! - **Control ~50 cycles** — `RepeatWhileTrue` evaluates a device scalar
//!   between supersteps.
//!
//! None of these constants is tuned per-benchmark: Table II / Figure 5 /
//! Table III shapes are produced by the *same* model.

/// Tiles on the Mk2 GC200.
pub const MK2_TILES: usize = 1472;

/// Mk2 tile clock, Hz (§III of the paper; Jia et al. report the same
/// 1.325 GHz for the GC2 and Graphcore lists it for the GC200).
pub const MK2_CLOCK_HZ: f64 = 1.325e9;

/// On-chip exchange bandwidth per tile, bytes per cycle.
///
/// Citadel's microbenchmarks measure ~5.8 GB/s sustained per-tile
/// exchange bandwidth and ~8 TB/s aggregate; 4 B/cycle at
/// [`MK2_CLOCK_HZ`] gives 5.3 GB/s per tile and 7.8 TB/s aggregate
/// across [`MK2_TILES`] — within 10% of both observations (the
/// derivation is asserted by this module's tests).
pub const EXCHANGE_BYTES_PER_CYCLE: f64 = 4.0;

/// Chip-wide BSP synchronization charge, cycles.
///
/// Citadel measures internal sync latency from 35 ns (a minimal sync
/// zone, [`SYNC_CYCLES_INTERNAL_MIN`]) up to ~150 ns when the sync
/// spans the full chip under load. The solver's supersteps are
/// chip-wide (every tile owns matrix columns), so the simulator charges
/// the full-chip figure: 150 ns ≈ 200 cycles at 1.325 GHz, kept at 150
/// cycles to stay on the paper's earlier-calibration anchor — between
/// the two measured bounds, and deliberately *not* retuned
/// per-benchmark (all committed baselines share it).
pub const SYNC_CYCLES: u64 = 150;

/// Floor of the measured internal-sync latency: 35 ns at
/// [`MK2_CLOCK_HZ`] ≈ 46 cycles (Citadel). A lower bound for any
/// sync-zone configuration; the cost models use [`SYNC_CYCLES`].
pub const SYNC_CYCLES_INTERNAL_MIN: u64 = 46;

/// Fixed charge to set up one exchange phase, cycles.
pub const EXCHANGE_SETUP_CYCLES: u64 = 50;

/// Per-iteration charge of data-dependent control flow, cycles.
pub const CONTROL_CYCLES: u64 = 50;

/// Per-tile bandwidth for exchange bytes that cross a chip boundary,
/// bytes per cycle.
///
/// A Mk2 exposes ten IPU-Links of 32 GB/s each (320 GB/s per chip,
/// bidirectional aggregate); spread over 1472 tiles at 1.325 GHz that is
/// ~0.16 B/cycle/tile — ~25x slower than the 4 B/cycle on-chip fabric,
/// which is why multi-IPU layouts keep hot state chip-local.
pub const INTER_IPU_BYTES_PER_CYCLE: f64 = 0.16;

/// Fixed per-vertex dispatch overhead, instructions.
///
/// Every vertex execution pays this once: Poplar's vertex call sequence
/// (load vertex state, jump, return) costs a small constant.
pub const VERTEX_OVERHEAD: u64 = 10;

/// Fixed cycles to attach and launch a compiled program on the device.
///
/// Loading a Poplar executable is the notoriously expensive part of an
/// IPU workflow: the host streams the program image over PCIe and the
/// device distributes code to every tile before the first superstep can
/// run. We model the fixed share — device attach, sync-zone setup,
/// per-tile code distribution — at ~0.38 ms (500k cycles at 1.325 GHz),
/// the floor of what Graphcore's own `engine.load()` timings show for
/// tiny programs. This cost is a **static property of a compiled engine**
/// ([`crate::Engine::program_load_cycles`]), charged by callers once per
/// program *load*, not per run — which is exactly why batched serving
/// reuses one engine across instances (C4: one program per tensor shape).
pub const PROGRAM_LOAD_BASE_CYCLES: u64 = 500_000;

/// Host-to-device bandwidth for streaming the program image, bytes per
/// cycle chip-wide.
///
/// PCIe Gen4 x16 sustains ~32 GB/s; at 1.325 GHz that is ~24 B/cycle —
/// two orders of magnitude below the on-chip exchange aggregate, which is
/// why program size matters at load time and not during solves.
pub const HOST_IO_BYTES_PER_CYCLE: f64 = 24.0;

/// Modeled program-image bytes per vertex (codelet descriptor, edge
/// table, and the vertex's share of tile code).
pub const IMAGE_BYTES_PER_VERTEX: u64 = 96;

/// Modeled program-image bytes per tensor (variable descriptor and
/// tile-mapping table entry).
pub const IMAGE_BYTES_PER_TENSOR: u64 = 24;

/// Modeled program-image bytes per lowered control-flow/exchange node
/// (sequence entries, loop headers, pre-compiled exchange sequences).
pub const IMAGE_BYTES_PER_NODE: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    /// The constants must stay anchored to the Citadel measurements they
    /// cite: if someone retunes one, these derivations force the docs
    /// (and the downstream cost models) to be revisited too.
    #[test]
    fn exchange_constants_match_citadel_bandwidths() {
        // Per-tile: 4 B/cycle · 1.325 GHz = 5.3 GB/s vs measured ~5.8 GB/s.
        let per_tile_gb_s = EXCHANGE_BYTES_PER_CYCLE * MK2_CLOCK_HZ / 1e9;
        assert!(
            (per_tile_gb_s - 5.8).abs() / 5.8 < 0.10,
            "per-tile exchange bandwidth {per_tile_gb_s:.2} GB/s drifted \
             from Citadel's ~5.8 GB/s"
        );
        // Aggregate: × 1472 tiles = 7.8 TB/s vs the paper's "8 TB/s".
        let aggregate_tb_s = per_tile_gb_s * MK2_TILES as f64 / 1e3;
        assert!(
            (aggregate_tb_s - 8.0).abs() / 8.0 < 0.05,
            "aggregate exchange bandwidth {aggregate_tb_s:.2} TB/s drifted \
             from the ~8 TB/s all-to-all figure"
        );
    }

    #[test]
    fn sync_charge_sits_between_the_measured_bounds() {
        // 35 ns floor ≤ charged sync ≤ 150 ns full-chip ceiling.
        let ns = |cycles: u64| cycles as f64 / MK2_CLOCK_HZ * 1e9;
        assert!((ns(SYNC_CYCLES_INTERNAL_MIN) - 35.0).abs() < 1.0);
        assert!(ns(SYNC_CYCLES) >= 35.0 && ns(SYNC_CYCLES) <= 150.0);
        const { assert!(SYNC_CYCLES_INTERNAL_MIN < SYNC_CYCLES) };
    }

    #[test]
    fn inter_chip_fabric_is_an_order_slower_than_on_chip() {
        // Ten 32 GB/s IPU-Links spread over 1472 tiles: ~0.16 B/cycle,
        // ~25× below the on-chip 4 B/cycle — the reason chip-aware
        // layouts keep hot state chip-local and the portfolio's chip
        // multipliers exceed 1 at bench sizes.
        let links_b_per_cycle = 320e9 / MK2_CLOCK_HZ / MK2_TILES as f64;
        assert!((links_b_per_cycle - INTER_IPU_BYTES_PER_CYCLE).abs() < 0.01);
        let ratio = EXCHANGE_BYTES_PER_CYCLE / INTER_IPU_BYTES_PER_CYCLE;
        assert!((20.0..30.0).contains(&ratio), "on/off-chip ratio {ratio}");
    }
}
