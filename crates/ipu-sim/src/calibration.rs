//! Cycle-model constants and their rationale.
//!
//! The simulator charges cycles in three places — compute, sync, exchange
//! — following the BSP model the IPU enforces (§III-A of the paper,
//! Valiant 1990). Constants come from the paper's hardware description and
//! the Graphcore microbenchmarking literature it cites (Jia et al.,
//! "Dissecting the Graphcore IPU architecture", arXiv:1912.03413):
//!
//! - **Clock 1.325 GHz, 1472 tiles, 6 threads/tile, 624 KiB/tile** —
//!   stated directly in §III and §V of the paper.
//! - **Thread issue model.** A tile's core rotates between its six
//!   hardware threads, issuing one instruction per cycle overall; a thread
//!   therefore runs at 1/6 of the clock when alone and the tile reaches
//!   full throughput only when all six threads carry balanced work. The
//!   compute charge of a superstep on one tile is
//!   `6 * max_thread(thread_instructions)`; the chip-wide charge is the
//!   max over tiles (stragglers stall the BSP step, challenge C3).
//! - **Two floats at a time.** The paper repeatedly exploits 64-bit loads
//!   ("we retrieve and update from the tile's memory two floats at once",
//!   §IV-C, §IV-H); [`crate::cost`] helpers charge `n/2` instructions per
//!   `n`-element f32 scan accordingly.
//! - **Exchange: 4 B/cycle/tile.** Jia et al. measure ~5.8 GB/s per-tile
//!   exchange bandwidth on Mk1 and ~8 TB/s aggregate on Mk2; 4 bytes per
//!   cycle per tile at 1.325 GHz gives 5.3 GB/s per tile, 7.8 TB/s
//!   aggregate — matching the paper's "fast (8 TB/s theoretical)
//!   all-to-all" description.
//! - **Sync ~150 cycles.** Chip-wide sync latency is of the order of
//!   100 ns on Mk2 (Jia et al. measure 35–150 ns depending on sync zone).
//! - **Exchange setup ~50 cycles** — the fixed cost of entering the
//!   exchange phase and executing the pre-compiled exchange sequence.
//! - **Control ~50 cycles** — `RepeatWhileTrue` evaluates a device scalar
//!   between supersteps.
//!
//! None of these constants is tuned per-benchmark: Table II / Figure 5 /
//! Table III shapes are produced by the *same* model.

/// Tiles on the Mk2 GC200.
pub const MK2_TILES: usize = 1472;

/// Chip-wide BSP synchronization charge, cycles.
pub const SYNC_CYCLES: u64 = 150;

/// Fixed charge to set up one exchange phase, cycles.
pub const EXCHANGE_SETUP_CYCLES: u64 = 50;

/// Per-iteration charge of data-dependent control flow, cycles.
pub const CONTROL_CYCLES: u64 = 50;

/// Per-tile bandwidth for exchange bytes that cross a chip boundary,
/// bytes per cycle.
///
/// A Mk2 exposes ten IPU-Links of 32 GB/s each (320 GB/s per chip,
/// bidirectional aggregate); spread over 1472 tiles at 1.325 GHz that is
/// ~0.16 B/cycle/tile — ~25x slower than the 4 B/cycle on-chip fabric,
/// which is why multi-IPU layouts keep hot state chip-local.
pub const INTER_IPU_BYTES_PER_CYCLE: f64 = 0.16;

/// Fixed per-vertex dispatch overhead, instructions.
///
/// Every vertex execution pays this once: Poplar's vertex call sequence
/// (load vertex state, jump, return) costs a small constant.
pub const VERTEX_OVERHEAD: u64 = 10;

/// Fixed cycles to attach and launch a compiled program on the device.
///
/// Loading a Poplar executable is the notoriously expensive part of an
/// IPU workflow: the host streams the program image over PCIe and the
/// device distributes code to every tile before the first superstep can
/// run. We model the fixed share — device attach, sync-zone setup,
/// per-tile code distribution — at ~0.38 ms (500k cycles at 1.325 GHz),
/// the floor of what Graphcore's own `engine.load()` timings show for
/// tiny programs. This cost is a **static property of a compiled engine**
/// ([`crate::Engine::program_load_cycles`]), charged by callers once per
/// program *load*, not per run — which is exactly why batched serving
/// reuses one engine across instances (C4: one program per tensor shape).
pub const PROGRAM_LOAD_BASE_CYCLES: u64 = 500_000;

/// Host-to-device bandwidth for streaming the program image, bytes per
/// cycle chip-wide.
///
/// PCIe Gen4 x16 sustains ~32 GB/s; at 1.325 GHz that is ~24 B/cycle —
/// two orders of magnitude below the on-chip exchange aggregate, which is
/// why program size matters at load time and not during solves.
pub const HOST_IO_BYTES_PER_CYCLE: f64 = 24.0;

/// Modeled program-image bytes per vertex (codelet descriptor, edge
/// table, and the vertex's share of tile code).
pub const IMAGE_BYTES_PER_VERTEX: u64 = 96;

/// Modeled program-image bytes per tensor (variable descriptor and
/// tile-mapping table entry).
pub const IMAGE_BYTES_PER_TENSOR: u64 = 24;

/// Modeled program-image bytes per lowered control-flow/exchange node
/// (sequence entries, loop headers, pre-compiled exchange sequences).
pub const IMAGE_BYTES_PER_NODE: u64 = 32;
