//! Synchronization plumbing for the host-side superstep worker pool.
//!
//! The engine spawns one scoped worker thread per host execution lane at
//! the start of [`crate::Engine::run`] (see `engine.rs`); the workers stay
//! parked on a condvar between supersteps, so dispatching a compute set
//! costs two lock round-trips instead of a thread spawn. This module owns
//! only the epoch/done protocol — what a worker *does* with a job is the
//! engine's business.
//!
//! Protocol: the main thread publishes a job `(epoch + 1, payload)` and
//! waits until `remaining` drops to zero; each worker wakes on the epoch
//! change, executes its shard, and decrements `remaining`. The payload is
//! an opaque pair of indices — the interpreted engine passes a compute-set
//! id, the lowered execution plan passes a `(first step, step count)` run
//! so workers can own their tile shard across several fused supersteps
//! without intermediate barriers. Shutdown is a flag checked whenever a
//! worker is between jobs, and is raised both on the orderly path and (via
//! [`ShutdownGuard`]) when the main thread unwinds, so a panicking codelet
//! can never leave workers parked forever.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Shared job slot + condvars for one run's worker pool.
pub(crate) struct PoolSync {
    job: Mutex<Job>,
    /// Signaled by the main thread on a new job or shutdown.
    go: Condvar,
    /// Signaled by the last worker to finish the current job.
    done: Condvar,
}

struct Job {
    epoch: u64,
    /// Opaque payload, interpreted by the worker loop that was spawned
    /// alongside this sync object.
    payload: (usize, usize),
    remaining: usize,
    shutdown: bool,
}

/// Ignore mutex poisoning: a worker panic is recorded in its result slot
/// and re-raised deterministically by the engine; the job protocol itself
/// holds no invariants a panic could break.
fn lock_job(m: &Mutex<Job>) -> MutexGuard<'_, Job> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PoolSync {
    pub(crate) fn new() -> Self {
        Self {
            job: Mutex::new(Job {
                epoch: 0,
                payload: (0, 0),
                remaining: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Main thread: publish a job payload to `workers` lanes and block
    /// until all of them have called [`PoolSync::finish_job`].
    pub(crate) fn run_job(&self, payload: (usize, usize), workers: usize) {
        let mut j = lock_job(&self.job);
        j.epoch += 1;
        j.payload = payload;
        j.remaining = workers;
        self.go.notify_all();
        while j.remaining > 0 {
            j = self
                .done
                .wait(j)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Worker: block until a job newer than `*seen` is published (updating
    /// `*seen`), or return `None` on shutdown.
    pub(crate) fn next_job(&self, seen: &mut u64) -> Option<(usize, usize)> {
        let mut j = lock_job(&self.job);
        loop {
            if j.shutdown {
                return None;
            }
            if j.epoch != *seen {
                *seen = j.epoch;
                return Some(j.payload);
            }
            j = self
                .go
                .wait(j)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Worker: mark this lane's shard of the current job complete.
    pub(crate) fn finish_job(&self) {
        let mut j = lock_job(&self.job);
        j.remaining -= 1;
        if j.remaining == 0 {
            self.done.notify_one();
        }
    }

    fn shutdown(&self) {
        let mut j = lock_job(&self.job);
        j.shutdown = true;
        self.go.notify_all();
    }
}

/// Raises shutdown when dropped — on the orderly exit *and* when the main
/// thread unwinds out of the execution scope, so `std::thread::scope` can
/// always join the workers.
pub(crate) struct ShutdownGuard<'a>(pub(crate) &'a PoolSync);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn supersteps_run_to_completion_and_shutdown_releases_workers() {
        let sync = PoolSync::new();
        let hits = AtomicU64::new(0);
        let workers = 3;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut seen = 0u64;
                    while let Some((a, b)) = sync.next_job(&mut seen) {
                        hits.fetch_add((a + b) as u64, Ordering::Relaxed);
                        sync.finish_job();
                    }
                });
            }
            let _guard = ShutdownGuard(&sync);
            sync.run_job((5, 1), workers);
            sync.run_job((7, 2), workers);
            // All lanes completed both jobs before run_job returned.
            assert_eq!(
                hits.load(Ordering::Relaxed),
                (5 + 1 + 7 + 2) * workers as u64
            );
        });
    }

    #[test]
    fn guard_unparks_workers_even_without_jobs() {
        let sync = PoolSync::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut seen = 0u64;
                assert!(sync.next_job(&mut seen).is_none());
            });
            let _guard = ShutdownGuard(&sync);
        });
    }
}
