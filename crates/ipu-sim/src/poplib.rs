//! Library subgraph builders — the simulator's equivalent of Poplar's
//! `popops` operators (reduce, broadcast, sort are invoked by the paper in
//! Steps 1, 2 and 6).
//!
//! Each builder adds tensors, compute sets, and vertices to a [`Graph`]
//! and returns a [`Program`] fragment that performs the operation. The
//! structure is exactly what the hardware demands:
//!
//! - scalar reductions: per-interval partial vertices on the data's own
//!   tiles → a single-phase gather of ≤ `tiles` partials to a collector
//!   tile → one final vertex (§IV-G notes that a ≤1472-element temporary
//!   always fits one tile);
//! - column-wise reductions over a row-distributed matrix: per-tile
//!   partial vectors combined along a binary tree of exchange+min stages
//!   (`log2(tiles)` supersteps), then multicast back to every tile.

use crate::codelet::cost;
use crate::error::GraphError;
use crate::graph::{Access, Graph};
use crate::program::Program;
use crate::tensor::{DType, Tensor};

/// Associative reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
}

impl ReduceOp {
    fn f32_identity(self) -> f32 {
        match self {
            ReduceOp::Min => f32::INFINITY,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Sum => 0.0,
        }
    }

    fn f32_apply(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Sum => a + b,
        }
    }

    fn i32_identity(self) -> i32 {
        match self {
            ReduceOp::Min => i32::MAX,
            ReduceOp::Max => i32::MIN,
            ReduceOp::Sum => 0,
        }
    }

    fn i32_apply(self, a: i32, b: i32) -> i32 {
        match self {
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Sum => a.saturating_add(b),
        }
    }
}

/// Builds a reduction of an arbitrarily-distributed tensor to a 1-element
/// tensor on `out_tile`. Returns the output tensor and the program
/// fragment (two supersteps + one gather exchange).
pub fn reduce_to_scalar(
    g: &mut Graph,
    name: &str,
    input: Tensor,
    op: ReduceOp,
    out_tile: usize,
) -> Result<(Tensor, Program), GraphError> {
    let intervals: Vec<(usize, usize, usize)> = g.tensors[input.id].mapping.clone();
    if intervals.is_empty() {
        return Err(GraphError::Unmapped {
            tensor: g.tensors[input.id].name.clone(),
            element: 0,
        });
    }
    let k = intervals.len();
    let dtype = input.dtype();

    // Partials: element i on the tile owning interval i.
    let partials = g.add_tensor(&format!("{name}.partials"), dtype, k);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.element(i), tile)?;
    }
    // Gathered partials and the output scalar live on the collector tile.
    let gathered = g.add_tensor(&format!("{name}.gathered"), dtype, k);
    g.map_to_tile(gathered, out_tile)?;
    let out = g.add_tensor(&format!("{name}.out"), dtype, 1);
    g.map_to_tile(out, out_tile)?;

    let cs_partial = g.add_compute_set(&format!("{name}.partial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let v = g.add_vertex(cs_partial, tile, &format!("{name}.partial[{i}]"), {
            move |ctx| match dtype {
                DType::F32 => {
                    let src = ctx.f32(0);
                    let acc = src
                        .iter()
                        .fold(op.f32_identity(), |a, &b| op.f32_apply(a, b));
                    ctx.f32_mut(1)[0] = acc;
                    cost::f32_scan(src.len())
                }
                DType::I32 => {
                    let src = ctx.i32(0);
                    let acc = src
                        .iter()
                        .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
                    ctx.i32_mut(1)[0] = acc;
                    cost::i32_scan(src.len())
                }
            }
        })?;
        g.connect(v, input.slice(s..e), Access::Read)?;
        g.connect(v, partials.element(i), Access::Write)?;
    }

    // Final stage: reduce the gathered partials on the collector tile,
    // using all hardware threads when the partial count warrants it (a
    // single-thread scan would run at 1/6 of the tile's issue rate).
    let final_prog = reduce_on_tile(g, &format!("{name}.final"), gathered, out, op, out_tile)?;

    // One exchange phase gathers every partial to the collector.
    let gather = Program::exchange(
        (0..k)
            .map(|i| (partials.element(i), gathered.element(i)))
            .collect(),
    );
    let program = Program::seq(vec![Program::execute(cs_partial), gather, final_prog]);
    Ok((out, program))
}

/// Reduces a tensor that lives entirely on `tile` into a 1-element `out`
/// tensor on the same tile. Uses the tile's six threads (per-thread
/// chunk vertices plus a combine vertex) when the input is long enough
/// to amortize the extra superstep.
pub fn reduce_on_tile(
    g: &mut Graph,
    name: &str,
    input: Tensor,
    out: Tensor,
    op: ReduceOp,
    tile: usize,
) -> Result<Program, GraphError> {
    let dtype = input.dtype();
    if out.dtype() != dtype || out.len() != 1 {
        return Err(GraphError::BadSlice {
            detail: format!("{name}: output must be a 1-element tensor of the input dtype"),
        });
    }
    let threads = g.config().threads_per_tile;
    let n = input.len();

    let scalar_reduce = move |ctx: &crate::VertexCtx| match dtype {
        DType::F32 => {
            let src = ctx.f32(0);
            let acc = src
                .iter()
                .fold(op.f32_identity(), |a, &b| op.f32_apply(a, b));
            ctx.f32_mut(1)[0] = acc;
            cost::f32_scan(src.len())
        }
        DType::I32 => {
            let src = ctx.i32(0);
            let acc = src
                .iter()
                .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
            ctx.i32_mut(1)[0] = acc;
            cost::i32_scan(src.len())
        }
    };

    // Short inputs: a single vertex is cheaper than an extra superstep.
    if n <= 4 * threads {
        let cs = g.add_compute_set(name);
        let v = g.add_vertex(cs, tile, name, scalar_reduce)?;
        g.connect(v, input.whole(), Access::Read)?;
        g.connect(v, out.whole(), Access::Write)?;
        return Ok(Program::execute(cs));
    }

    let part6 = g.add_tensor(&format!("{name}.part6"), dtype, threads);
    g.map_to_tile(part6, tile)?;
    let cs_chunks = g.add_compute_set(&format!("{name}.chunks"));
    let per = n.div_ceil(threads);
    for t in 0..threads {
        let lo = (t * per).min(n);
        let hi = ((t + 1) * per).min(n);
        let v = g.add_vertex_on_thread(
            cs_chunks,
            tile,
            t,
            &format!("{name}.chunk{t}"),
            scalar_reduce,
        )?;
        g.connect(v, input.slice(lo..hi), Access::Read)?;
        g.connect(v, part6.element(t), Access::Write)?;
    }
    let cs_comb = g.add_compute_set(&format!("{name}.combine"));
    let v = g.add_vertex(cs_comb, tile, &format!("{name}.combine"), scalar_reduce)?;
    g.connect(v, part6.whole(), Access::Read)?;
    g.connect(v, out.whole(), Access::Write)?;
    Ok(Program::seq(vec![
        Program::execute(cs_chunks),
        Program::execute(cs_comb),
    ]))
}

/// Builds a column-wise reduction over a row-major `rows x cols` matrix
/// distributed by rows (the 1D decomposition of §IV-A): the result is a
/// `cols`-element vector **mirrored on every row-owning tile** so each
/// tile can use it locally (e.g. Step 1's column-minimum subtraction).
///
/// Returns `(mirror, program)` where `mirror` has one `cols`-sized block
/// per owning tile, in owner order.
pub fn reduce_columns_mirrored(
    g: &mut Graph,
    name: &str,
    matrix: Tensor,
    rows: usize,
    cols: usize,
    op: ReduceOp,
) -> Result<(Tensor, Program), GraphError> {
    if matrix.len() != rows * cols || matrix.dtype() != DType::F32 {
        return Err(GraphError::BadSlice {
            detail: format!("{name}: matrix must be f32 of {rows}x{cols}"),
        });
    }
    // Owners: tiles holding the matrix, in interval order. With a
    // row-block mapping each owner's interval is a whole number of rows.
    let intervals: Vec<(usize, usize, usize)> = g.tensors[matrix.id].mapping.clone();
    let k = intervals.len();
    for &(s, e, _) in &intervals {
        if s % cols != 0 || e % cols != 0 {
            return Err(GraphError::BadSlice {
                detail: format!("{name}: matrix mapping must align to whole rows"),
            });
        }
    }

    // Partial vectors: block i on owner i. Incoming buffers for the tree:
    // only even-indexed owners ever receive.
    let partials = g.add_tensor(&format!("{name}.colpart"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.slice(i * cols..(i + 1) * cols), tile)?;
    }
    let n_recv = k.div_ceil(2);
    let incoming = g.add_tensor(&format!("{name}.colrecv"), DType::F32, n_recv * cols);
    for i in 0..n_recv {
        let tile = intervals[2 * i].2;
        g.map_slice(incoming.slice(i * cols..(i + 1) * cols), tile)?;
    }

    // Stage 0: each owner reduces its own rows into its partial vector.
    let cs0 = g.add_compute_set(&format!("{name}.colpartial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let rows_here = (e - s) / cols;
        let v = g.add_vertex(cs0, tile, &format!("{name}.colpartial[{i}]"), move |ctx| {
            let src = ctx.f32(0);
            let mut out = ctx.f32_mut(1);
            for (c, o) in out.iter_mut().enumerate() {
                *o = op.f32_identity();
                for r in 0..rows_here {
                    *o = op.f32_apply(*o, src[r * cols + c]);
                }
            }
            cost::f32_scan(src.len())
        })?;
        g.connect(v, matrix.slice(s..e), Access::Read)?;
        g.connect(v, partials.slice(i * cols..(i + 1) * cols), Access::Write)?;
    }
    let mut steps = vec![Program::execute(cs0)];

    // Binary combining tree: at stage `s`, owner `i` (i % 2^(s+1) == 0)
    // receives owner `i + 2^s`'s partial and folds it in.
    let mut step = 1usize;
    while step < k {
        let mut pairs = Vec::new();
        let cs = g.add_compute_set(&format!("{name}.colcombine[{step}]"));
        let mut i = 0usize;
        while i + step < k {
            pairs.push((
                partials.slice((i + step) * cols..(i + step + 1) * cols),
                incoming.slice((i / 2) * cols..(i / 2 + 1) * cols),
            ));
            let tile = intervals[i].2;
            let v = g.add_vertex(
                cs,
                tile,
                &format!("{name}.colcombine[{step}][{i}]"),
                move |ctx| {
                    let inc = ctx.f32(0);
                    let mut acc = ctx.f32_mut(1);
                    for (a, &b) in acc.iter_mut().zip(inc.iter()) {
                        *a = op.f32_apply(*a, b);
                    }
                    cost::f32_update(acc.len())
                },
            )?;
            g.connect(
                v,
                incoming.slice((i / 2) * cols..(i / 2 + 1) * cols),
                Access::Read,
            )?;
            g.connect(
                v,
                partials.slice(i * cols..(i + 1) * cols),
                Access::ReadWrite,
            )?;
            i += 2 * step;
        }
        steps.push(Program::exchange(pairs));
        steps.push(Program::execute(cs));
        step *= 2;
    }

    // Multicast the final vector (owner 0's partial) to a per-owner
    // mirror.
    let mirror = g.add_tensor(&format!("{name}.colmirror"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(mirror.slice(i * cols..(i + 1) * cols), tile)?;
    }
    steps.push(Program::broadcast(partials.slice(0..cols), mirror.whole()));

    Ok((mirror, Program::seq(steps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpuConfig;

    fn device(tiles: usize) -> Graph {
        Graph::new(IpuConfig::tiny(tiles))
    }

    #[test]
    fn scalar_min_over_distributed_tensor() {
        let mut g = device(4);
        let t = g.add_tensor("t", DType::F32, 16);
        g.map_evenly(t).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "min", t, ReduceOp::Min, 0).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..16).map(|i| 100.0 - i as f32).collect();
        e.write_f32(t, &data).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(out), vec![85.0]);
        // Two supersteps (partials + final) and one gather exchange.
        assert_eq!(e.stats().supersteps, 2);
        assert_eq!(e.stats().exchanges, 1);
    }

    #[test]
    fn scalar_sum_i32() {
        let mut g = device(3);
        let t = g.add_tensor("t", DType::I32, 9);
        g.map_evenly(t).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "sum", t, ReduceOp::Sum, 2).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_i32(t, &[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(out), vec![45]);
    }

    #[test]
    fn scalar_max_single_tile() {
        let mut g = device(2);
        let t = g.add_tensor("t", DType::I32, 5);
        g.map_to_tile(t, 1).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "max", t, ReduceOp::Max, 0).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_i32(t, &[-3, 9, 2, 9, 0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(out), vec![9]);
    }

    #[test]
    fn column_min_mirrored_on_every_owner() {
        // 6x4 matrix over 3 tiles (2 rows each).
        let rows = 6;
        let cols = 4;
        let mut g = device(3);
        let m = g.add_tensor("m", DType::F32, rows * cols);
        g.map_chunks_round_robin(m, 2 * cols, 0, 3).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "colmin", m, rows, cols, ReduceOp::Min).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 7 + 3) % 23) as f64 as f32)
            .collect();
        e.write_f32(m, &data).unwrap();
        e.run().unwrap();
        // Expected column minima.
        let mut expect = vec![f32::INFINITY; cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c] = expect[c].min(data[r * cols + c]);
            }
        }
        let got = e.read_f32(mirror);
        for owner in 0..3 {
            assert_eq!(&got[owner * cols..(owner + 1) * cols], &expect[..]);
        }
    }

    #[test]
    fn column_sum_matches_reference_with_many_owners() {
        // 8 owners exercises a multi-stage combining tree including the
        // odd tail.
        let rows = 8;
        let cols = 3;
        let mut g = device(8);
        let m = g.add_tensor("m", DType::F32, rows * cols);
        g.map_chunks_round_robin(m, cols, 0, 8).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "colsum", m, rows, cols, ReduceOp::Sum).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..rows * cols).map(|i| (i % 5) as f32).collect();
        e.write_f32(m, &data).unwrap();
        e.run().unwrap();
        let mut expect = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c] += data[r * cols + c];
            }
        }
        let got = e.read_f32(mirror);
        assert_eq!(&got[0..cols], &expect[..]);
        assert_eq!(&got[7 * cols..8 * cols], &expect[..]);
    }

    #[test]
    fn misaligned_matrix_mapping_rejected() {
        let mut g = device(2);
        let m = g.add_tensor("m", DType::F32, 8);
        // 2x4 matrix split mid-row.
        g.map_slice(m.slice(0..3), 0).unwrap();
        g.map_slice(m.slice(3..8), 1).unwrap();
        let err = reduce_columns_mirrored(&mut g, "bad", m, 2, 4, ReduceOp::Min).unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
    }

    #[test]
    fn reduction_of_unmapped_tensor_rejected() {
        let mut g = device(2);
        let t = g.add_tensor("t", DType::F32, 4);
        let err = reduce_to_scalar(&mut g, "r", t, ReduceOp::Min, 0).unwrap_err();
        assert!(matches!(err, GraphError::Unmapped { .. }));
    }

    #[test]
    fn single_row_column_reduce() {
        let mut g = device(1);
        let m = g.add_tensor("m", DType::F32, 4);
        g.map_to_tile(m, 0).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "one", m, 1, 4, ReduceOp::Min).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_f32(m, &[4.0, 3.0, 2.0, 1.0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(mirror), vec![4.0, 3.0, 2.0, 1.0]);
    }
}
