//! Library subgraph builders — the simulator's equivalent of Poplar's
//! `popops` operators (reduce, broadcast, sort are invoked by the paper in
//! Steps 1, 2 and 6).
//!
//! Each builder adds tensors, compute sets, and vertices to a [`Graph`]
//! and returns a [`Program`] fragment that performs the operation. The
//! structure is exactly what the hardware demands:
//!
//! - scalar reductions: per-interval partial vertices on the data's own
//!   tiles → a single-phase gather of ≤ `tiles` partials to a collector
//!   tile → one final vertex (§IV-G notes that a ≤1472-element temporary
//!   always fits one tile);
//! - column-wise reductions over a row-distributed matrix: per-tile
//!   partial vectors combined along a binary tree of exchange+min stages
//!   (`log2(tiles)` supersteps), then multicast back to every tile.

use crate::codelet::cost;
use crate::error::GraphError;
use crate::graph::{Access, Graph};
use crate::program::Program;
use crate::tensor::{DType, Tensor};

/// Associative reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
}

impl ReduceOp {
    fn f32_identity(self) -> f32 {
        match self {
            ReduceOp::Min => f32::INFINITY,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Sum => 0.0,
        }
    }

    fn f32_apply(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Sum => a + b,
        }
    }

    /// Folds a slice with this operator. `Min`/`Max` use the chunked
    /// vectorizable kernels — value-exact to the sequential fold for the
    /// NaN-free data the library reduces — while `Sum` stays strictly
    /// sequential because float addition is not reassociation-safe.
    fn f32_fold(self, xs: &[f32]) -> f32 {
        match self {
            ReduceOp::Min => crate::kernels::min_f32(xs),
            ReduceOp::Max => crate::kernels::max_f32(xs),
            ReduceOp::Sum => xs
                .iter()
                .fold(self.f32_identity(), |a, &b| self.f32_apply(a, b)),
        }
    }

    /// Elementwise `acc[i] = op(acc[i], xs[i])`. Branches on the operator
    /// once so the inner loop vectorizes; per-element fold order is
    /// unchanged, so all three operators (including `Sum`) stay bit-exact.
    fn f32_accumulate(self, acc: &mut [f32], xs: &[f32]) {
        match self {
            ReduceOp::Min => crate::kernels::min_assign(acc, xs),
            ReduceOp::Max => crate::kernels::max_assign(acc, xs),
            ReduceOp::Sum => crate::kernels::add_assign(acc, xs),
        }
    }

    fn i32_identity(self) -> i32 {
        match self {
            ReduceOp::Min => i32::MAX,
            ReduceOp::Max => i32::MIN,
            ReduceOp::Sum => 0,
        }
    }

    fn i32_apply(self, a: i32, b: i32) -> i32 {
        match self {
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Sum => a.saturating_add(b),
        }
    }
}

/// Builds a reduction of an arbitrarily-distributed tensor to a 1-element
/// tensor on `out_tile`. Returns the output tensor and the program
/// fragment (two supersteps + one gather exchange).
pub fn reduce_to_scalar(
    g: &mut Graph,
    name: &str,
    input: Tensor,
    op: ReduceOp,
    out_tile: usize,
) -> Result<(Tensor, Program), GraphError> {
    let intervals: Vec<(usize, usize, usize)> = g.tensors[input.id].mapping.clone();
    if intervals.is_empty() {
        return Err(GraphError::Unmapped {
            tensor: g.tensors[input.id].name.clone(),
            element: 0,
        });
    }
    let k = intervals.len();
    let dtype = input.dtype();

    // Partials: element i on the tile owning interval i.
    let partials = g.add_tensor(&format!("{name}.partials"), dtype, k);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.element(i), tile)?;
    }
    // Gathered partials and the output scalar live on the collector tile.
    let gathered = g.add_tensor(&format!("{name}.gathered"), dtype, k);
    g.map_to_tile(gathered, out_tile)?;
    let out = g.add_tensor(&format!("{name}.out"), dtype, 1);
    g.map_to_tile(out, out_tile)?;

    let cs_partial = g.add_compute_set(&format!("{name}.partial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let v = g.add_vertex(cs_partial, tile, &format!("{name}.partial[{i}]"), {
            move |ctx| match dtype {
                DType::F32 => {
                    let src = ctx.f32(0);
                    ctx.f32_mut(1)[0] = op.f32_fold(&src);
                    cost::f32_scan(src.len())
                }
                DType::I32 => {
                    let src = ctx.i32(0);
                    let acc = src
                        .iter()
                        .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
                    ctx.i32_mut(1)[0] = acc;
                    cost::i32_scan(src.len())
                }
            }
        })?;
        g.connect(v, input.slice(s..e), Access::Read)?;
        g.connect(v, partials.element(i), Access::Write)?;
    }

    // Final stage: reduce the gathered partials on the collector tile,
    // using all hardware threads when the partial count warrants it (a
    // single-thread scan would run at 1/6 of the tile's issue rate).
    let final_prog = reduce_on_tile(g, &format!("{name}.final"), gathered, out, op, out_tile)?;

    // One exchange phase gathers every partial to the collector.
    let gather = Program::exchange(
        (0..k)
            .map(|i| (partials.element(i), gathered.element(i)))
            .collect(),
    );
    let program = Program::seq(vec![Program::execute(cs_partial), gather, final_prog]);
    Ok((out, program))
}

/// Reduces a tensor that lives entirely on `tile` into a 1-element `out`
/// tensor on the same tile. Uses the tile's six threads (per-thread
/// chunk vertices plus a combine vertex) when the input is long enough
/// to amortize the extra superstep.
pub fn reduce_on_tile(
    g: &mut Graph,
    name: &str,
    input: Tensor,
    out: Tensor,
    op: ReduceOp,
    tile: usize,
) -> Result<Program, GraphError> {
    let dtype = input.dtype();
    if out.dtype() != dtype || out.len() != 1 {
        return Err(GraphError::BadSlice {
            detail: format!("{name}: output must be a 1-element tensor of the input dtype"),
        });
    }
    let threads = g.config().threads_per_tile;
    let n = input.len();

    let scalar_reduce = move |ctx: &crate::VertexCtx| match dtype {
        DType::F32 => {
            let src = ctx.f32(0);
            ctx.f32_mut(1)[0] = op.f32_fold(&src);
            cost::f32_scan(src.len())
        }
        DType::I32 => {
            let src = ctx.i32(0);
            let acc = src
                .iter()
                .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
            ctx.i32_mut(1)[0] = acc;
            cost::i32_scan(src.len())
        }
    };

    // Short inputs: a single vertex is cheaper than an extra superstep.
    if n <= 4 * threads {
        let cs = g.add_compute_set(name);
        let v = g.add_vertex(cs, tile, name, scalar_reduce)?;
        g.connect(v, input.whole(), Access::Read)?;
        g.connect(v, out.whole(), Access::Write)?;
        return Ok(Program::execute(cs));
    }

    let part6 = g.add_tensor(&format!("{name}.part6"), dtype, threads);
    g.map_to_tile(part6, tile)?;
    let cs_chunks = g.add_compute_set(&format!("{name}.chunks"));
    let per = n.div_ceil(threads);
    for t in 0..threads {
        let lo = (t * per).min(n);
        let hi = ((t + 1) * per).min(n);
        let v = g.add_vertex_on_thread(
            cs_chunks,
            tile,
            t,
            &format!("{name}.chunk{t}"),
            scalar_reduce,
        )?;
        g.connect(v, input.slice(lo..hi), Access::Read)?;
        g.connect(v, part6.element(t), Access::Write)?;
    }
    let cs_comb = g.add_compute_set(&format!("{name}.combine"));
    let v = g.add_vertex(cs_comb, tile, &format!("{name}.combine"), scalar_reduce)?;
    g.connect(v, part6.whole(), Access::Read)?;
    g.connect(v, out.whole(), Access::Write)?;
    Ok(Program::seq(vec![
        Program::execute(cs_chunks),
        Program::execute(cs_comb),
    ]))
}

/// Builds a column-wise reduction over a row-major `rows x cols` matrix
/// distributed by rows (the 1D decomposition of §IV-A): the result is a
/// `cols`-element vector **mirrored on every row-owning tile** so each
/// tile can use it locally (e.g. Step 1's column-minimum subtraction).
///
/// Returns `(mirror, program)` where `mirror` has one `cols`-sized block
/// per owning tile, in owner order.
pub fn reduce_columns_mirrored(
    g: &mut Graph,
    name: &str,
    matrix: Tensor,
    rows: usize,
    cols: usize,
    op: ReduceOp,
) -> Result<(Tensor, Program), GraphError> {
    if matrix.len() != rows * cols || matrix.dtype() != DType::F32 {
        return Err(GraphError::BadSlice {
            detail: format!("{name}: matrix must be f32 of {rows}x{cols}"),
        });
    }
    // Owners: tiles holding the matrix, in interval order. With a
    // row-block mapping each owner's interval is a whole number of rows.
    let intervals: Vec<(usize, usize, usize)> = g.tensors[matrix.id].mapping.clone();
    let k = intervals.len();
    for &(s, e, _) in &intervals {
        if s % cols != 0 || e % cols != 0 {
            return Err(GraphError::BadSlice {
                detail: format!("{name}: matrix mapping must align to whole rows"),
            });
        }
    }

    // Partial vectors: block i on owner i. Incoming buffers for the tree:
    // only even-indexed owners ever receive.
    let partials = g.add_tensor(&format!("{name}.colpart"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.slice(i * cols..(i + 1) * cols), tile)?;
    }
    let n_recv = k.div_ceil(2);
    let incoming = g.add_tensor(&format!("{name}.colrecv"), DType::F32, n_recv * cols);
    for i in 0..n_recv {
        let tile = intervals[2 * i].2;
        g.map_slice(incoming.slice(i * cols..(i + 1) * cols), tile)?;
    }

    // Stage 0: each owner reduces its own rows into its partial vector.
    let cs0 = g.add_compute_set(&format!("{name}.colpartial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let rows_here = (e - s) / cols;
        let v = g.add_vertex(cs0, tile, &format!("{name}.colpartial[{i}]"), move |ctx| {
            let src = ctx.f32(0);
            let mut out = ctx.f32_mut(1);
            // Row-sweep instead of per-column scans: each column still
            // folds identity-then-rows-ascending (bit-exact for every
            // operator), but the inner loop is elementwise and
            // vectorizes.
            for o in out.iter_mut() {
                *o = op.f32_identity();
            }
            for r in 0..rows_here {
                op.f32_accumulate(&mut out, &src[r * cols..(r + 1) * cols]);
            }
            cost::f32_scan(src.len())
        })?;
        g.connect(v, matrix.slice(s..e), Access::Read)?;
        g.connect(v, partials.slice(i * cols..(i + 1) * cols), Access::Write)?;
    }
    let mut steps = vec![Program::execute(cs0)];

    // Binary combining tree: at stage `s`, owner `i` (i % 2^(s+1) == 0)
    // receives owner `i + 2^s`'s partial and folds it in.
    let mut step = 1usize;
    while step < k {
        let mut pairs = Vec::new();
        let cs = g.add_compute_set(&format!("{name}.colcombine[{step}]"));
        let mut i = 0usize;
        while i + step < k {
            pairs.push((
                partials.slice((i + step) * cols..(i + step + 1) * cols),
                incoming.slice((i / 2) * cols..(i / 2 + 1) * cols),
            ));
            let tile = intervals[i].2;
            let v = g.add_vertex(
                cs,
                tile,
                &format!("{name}.colcombine[{step}][{i}]"),
                move |ctx| {
                    let inc = ctx.f32(0);
                    let mut acc = ctx.f32_mut(1);
                    op.f32_accumulate(&mut acc, &inc);
                    cost::f32_update(acc.len())
                },
            )?;
            g.connect(
                v,
                incoming.slice((i / 2) * cols..(i / 2 + 1) * cols),
                Access::Read,
            )?;
            g.connect(
                v,
                partials.slice(i * cols..(i + 1) * cols),
                Access::ReadWrite,
            )?;
            i += 2 * step;
        }
        steps.push(Program::exchange(pairs));
        steps.push(Program::execute(cs));
        step *= 2;
    }

    // Multicast the final vector (owner 0's partial) to a per-owner
    // mirror.
    let mirror = g.add_tensor(&format!("{name}.colmirror"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(mirror.slice(i * cols..(i + 1) * cols), tile)?;
    }
    steps.push(Program::broadcast(partials.slice(0..cols), mirror.whole()));

    Ok((mirror, Program::seq(steps)))
}

/// Per-chip staging tiles for the hierarchical builders: entry `c` is
/// the tile on chip `c` that collects that chip's traffic before it
/// crosses an IPU-Link (HunIPU uses the last tile of each chip).
///
/// Length must be `config.ipus`; entries for chips that hold no data are
/// ignored.
pub type ChipStages<'a> = &'a [usize];

/// Groups the elements of a per-interval mapping by owning chip.
/// Returns, per chip, the (element index, tile) pairs it owns, in
/// element order; chips owning nothing get empty lists.
fn elements_by_chip(g: &Graph, mapping: &[(usize, usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let mut by_chip = vec![Vec::new(); g.config().ipus];
    for (i, &(_, _, tile)) in mapping.iter().enumerate() {
        by_chip[g.config().chip_of_tile(tile)].push((i, tile));
    }
    by_chip
}

/// Hierarchical variant of the gather half of [`reduce_to_scalar`]:
/// reduces a tensor of per-owner partials (element `i` mapped to owner
/// tile `i`) to a 1-element tensor on `out_tile`, crossing each
/// IPU-Link **once** instead of once per partial.
///
/// Structure: one exchange gathers every chip's partials to its staging
/// tile (all pairs on-chip, so they run in parallel at fabric
/// bandwidth); one superstep combines each chip's partials; one
/// exchange moves a single scalar per chip to `out_tile` (the only
/// phase that touches IPU-Links); a final vertex folds the per-chip
/// scalars. The flat gather instead lands every partial on `out_tile`,
/// serializing `(ipus-1)/ipus` of the traffic through that one tile's
/// link share.
///
/// Combination order is per-chip then chip-ascending rather than the
/// flat element order — identical results for order-insensitive ops
/// (`Min`/`Max` on both dtypes, i32 `Sum` away from saturation); f32
/// `Sum` may round differently from the flat path.
pub fn reduce_partials_hier(
    g: &mut Graph,
    name: &str,
    partials: Tensor,
    op: ReduceOp,
    stages: ChipStages,
    out_tile: usize,
) -> Result<(Tensor, Program), GraphError> {
    let mapping: Vec<(usize, usize, usize)> = g.tensors[partials.id].mapping.clone();
    if mapping.is_empty() {
        return Err(GraphError::Unmapped {
            tensor: g.tensors[partials.id].name.clone(),
            element: 0,
        });
    }
    if stages.len() != g.config().ipus {
        return Err(GraphError::BadSlice {
            detail: format!(
                "{name}: {} chip stages for {} chips",
                stages.len(),
                g.config().ipus
            ),
        });
    }
    let dtype = partials.dtype();
    let by_chip = elements_by_chip(g, &mapping);
    let active: Vec<usize> = (0..by_chip.len())
        .filter(|&c| !by_chip[c].is_empty())
        .collect();

    // Per-chip gathered partials: chip c's block (k_c elements) on its
    // staging tile.
    let total: usize = by_chip.iter().map(Vec::len).sum();
    let chipgath = g.add_tensor(&format!("{name}.chipgath"), dtype, total);
    let mut offsets = vec![0usize; by_chip.len()];
    {
        let mut off = 0usize;
        for &c in &active {
            offsets[c] = off;
            g.map_slice(chipgath.slice(off..off + by_chip[c].len()), stages[c])?;
            off += by_chip[c].len();
        }
    }
    // One scalar per active chip, on that chip's staging tile, then
    // gathered to the output tile.
    let chipout = g.add_tensor(&format!("{name}.chipout"), dtype, active.len());
    for (j, &c) in active.iter().enumerate() {
        g.map_slice(chipout.element(j), stages[c])?;
    }
    let rootgath = g.add_tensor(&format!("{name}.rootgath"), dtype, active.len());
    g.map_to_tile(rootgath, out_tile)?;
    let out = g.add_tensor(&format!("{name}.out"), dtype, 1);
    g.map_to_tile(out, out_tile)?;

    // Phase 1: on-chip gathers, all chips in one exchange.
    let mut gather_pairs = Vec::with_capacity(total);
    for &c in &active {
        for (j, &(elem, _)) in by_chip[c].iter().enumerate() {
            gather_pairs.push((partials.element(elem), chipgath.element(offsets[c] + j)));
        }
    }

    // Per-chip combine, one vertex per active chip.
    let cs_chip = g.add_compute_set(&format!("{name}.chipred"));
    for (j, &c) in active.iter().enumerate() {
        let v = g.add_vertex(
            cs_chip,
            stages[c],
            &format!("{name}.chipred[{c}]"),
            move |ctx| match dtype {
                DType::F32 => {
                    let src = ctx.f32(0);
                    ctx.f32_mut(1)[0] = op.f32_fold(&src);
                    cost::f32_scan(src.len())
                }
                DType::I32 => {
                    let src = ctx.i32(0);
                    let acc = src
                        .iter()
                        .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
                    ctx.i32_mut(1)[0] = acc;
                    cost::i32_scan(src.len())
                }
            },
        )?;
        let off = offsets[c];
        g.connect(v, chipgath.slice(off..off + by_chip[c].len()), Access::Read)?;
        g.connect(v, chipout.element(j), Access::Write)?;
    }

    // Phase 2: one scalar per chip crosses to the output tile — the
    // only link-crossing phase, with every chip's scalar leaving from a
    // distinct source tile.
    let cross_pairs = (0..active.len())
        .map(|j| (chipout.element(j), rootgath.element(j)))
        .collect();

    let final_prog = reduce_on_tile(g, &format!("{name}.final"), rootgath, out, op, out_tile)?;
    let program = Program::seq(vec![
        Program::exchange(gather_pairs),
        Program::execute(cs_chip),
        Program::exchange(cross_pairs),
        final_prog,
    ]);
    Ok((out, program))
}

/// Hierarchical variant of [`reduce_to_scalar`] for multi-chip devices:
/// per-interval partials on the data's own tiles, then a two-level
/// gather through per-chip staging tiles (see [`reduce_partials_hier`]
/// for the structure and the combination-order caveat).
pub fn reduce_to_scalar_hier(
    g: &mut Graph,
    name: &str,
    input: Tensor,
    op: ReduceOp,
    stages: ChipStages,
    out_tile: usize,
) -> Result<(Tensor, Program), GraphError> {
    let intervals: Vec<(usize, usize, usize)> = g.tensors[input.id].mapping.clone();
    if intervals.is_empty() {
        return Err(GraphError::Unmapped {
            tensor: g.tensors[input.id].name.clone(),
            element: 0,
        });
    }
    let k = intervals.len();
    let dtype = input.dtype();

    let partials = g.add_tensor(&format!("{name}.partials"), dtype, k);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.element(i), tile)?;
    }
    let cs_partial = g.add_compute_set(&format!("{name}.partial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let v = g.add_vertex(cs_partial, tile, &format!("{name}.partial[{i}]"), {
            move |ctx| match dtype {
                DType::F32 => {
                    let src = ctx.f32(0);
                    ctx.f32_mut(1)[0] = op.f32_fold(&src);
                    cost::f32_scan(src.len())
                }
                DType::I32 => {
                    let src = ctx.i32(0);
                    let acc = src
                        .iter()
                        .fold(op.i32_identity(), |a, &b| op.i32_apply(a, b));
                    ctx.i32_mut(1)[0] = acc;
                    cost::i32_scan(src.len())
                }
            }
        })?;
        g.connect(v, input.slice(s..e), Access::Read)?;
        g.connect(v, partials.element(i), Access::Write)?;
    }

    let (out, gather) = reduce_partials_hier(g, name, partials, op, stages, out_tile)?;
    Ok((
        out,
        Program::seq(vec![Program::execute(cs_partial), gather]),
    ))
}

/// Hierarchical variant of [`reduce_columns_mirrored`] for multi-chip
/// devices. The mirror tensor has the identical shape and mapping as
/// the flat builder's (one `cols` block per owner, in owner order), so
/// callers are interchangeable; only the combining structure differs:
///
/// 1. per-owner partial vectors (as flat);
/// 2. **per-chip** binary combining trees — every stage's pairs stay
///    on-chip, and all chips' stages share the same exchange phases;
/// 3. each chip's head vector is sent to every chip's staging tile
///    (the only link-crossing phase: `ipus·(ipus-1)` vector hops instead
///    of the flat tree + broadcast crossing links at every stage);
/// 4. every staging tile folds the per-chip vectors in chip order and
///    fans the result out to its own chip's owners on-chip.
///
/// Identical results to the flat builder for order-insensitive ops
/// (`Min`/`Max`); f32 `Sum` may round differently (different
/// combination order).
pub fn reduce_columns_mirrored_hier(
    g: &mut Graph,
    name: &str,
    matrix: Tensor,
    rows: usize,
    cols: usize,
    op: ReduceOp,
    stages: ChipStages,
) -> Result<(Tensor, Program), GraphError> {
    if matrix.len() != rows * cols || matrix.dtype() != DType::F32 {
        return Err(GraphError::BadSlice {
            detail: format!("{name}: matrix must be f32 of {rows}x{cols}"),
        });
    }
    if stages.len() != g.config().ipus {
        return Err(GraphError::BadSlice {
            detail: format!(
                "{name}: {} chip stages for {} chips",
                stages.len(),
                g.config().ipus
            ),
        });
    }
    let intervals: Vec<(usize, usize, usize)> = g.tensors[matrix.id].mapping.clone();
    let k = intervals.len();
    for &(s, e, _) in &intervals {
        if s % cols != 0 || e % cols != 0 {
            return Err(GraphError::BadSlice {
                detail: format!("{name}: matrix mapping must align to whole rows"),
            });
        }
    }
    let by_chip = elements_by_chip(g, &intervals);
    let active: Vec<usize> = (0..by_chip.len())
        .filter(|&c| !by_chip[c].is_empty())
        .collect();
    let a = active.len();

    // Per-owner partial vectors, identical to the flat builder.
    let partials = g.add_tensor(&format!("{name}.colpart"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(partials.slice(i * cols..(i + 1) * cols), tile)?;
    }
    // Per-chip incoming buffers for the on-chip trees: chip c needs
    // ceil(k_c/2) blocks, block j on its 2j-th owner.
    let mut recv_base = vec![0usize; by_chip.len()];
    let mut recv_total = 0usize;
    for &c in &active {
        recv_base[c] = recv_total;
        recv_total += by_chip[c].len().div_ceil(2);
    }
    let incoming = g.add_tensor(
        &format!("{name}.colrecv"),
        DType::F32,
        recv_total.max(1) * cols,
    );
    let mut mapped = 0usize;
    for &c in &active {
        for j in 0..by_chip[c].len().div_ceil(2) {
            let tile = by_chip[c][2 * j].1;
            let b = recv_base[c] + j;
            g.map_slice(incoming.slice(b * cols..(b + 1) * cols), tile)?;
            mapped += 1;
        }
    }
    if mapped < recv_total.max(1) {
        // Padding block (recv_total == 0 only when there are no owners
        // at all, which validate_mappings would reject anyway).
        g.map_slice(incoming.slice(mapped * cols..(mapped + 1) * cols), 0)?;
    }

    // Stage 0: each owner reduces its own rows into its partial vector.
    let cs0 = g.add_compute_set(&format!("{name}.colpartial"));
    for (i, &(s, e, tile)) in intervals.iter().enumerate() {
        let rows_here = (e - s) / cols;
        let v = g.add_vertex(cs0, tile, &format!("{name}.colpartial[{i}]"), move |ctx| {
            let src = ctx.f32(0);
            let mut out = ctx.f32_mut(1);
            // Row-sweep form — see the flat builder for the bit-exactness
            // argument.
            for o in out.iter_mut() {
                *o = op.f32_identity();
            }
            for r in 0..rows_here {
                op.f32_accumulate(&mut out, &src[r * cols..(r + 1) * cols]);
            }
            cost::f32_scan(src.len())
        })?;
        g.connect(v, matrix.slice(s..e), Access::Read)?;
        g.connect(v, partials.slice(i * cols..(i + 1) * cols), Access::Write)?;
    }
    let mut steps = vec![Program::execute(cs0)];

    // Per-chip binary combining trees. All chips advance through the
    // same stages, sharing each stage's exchange phase — every pair is
    // on-chip.
    let max_k = active.iter().map(|&c| by_chip[c].len()).max().unwrap_or(0);
    let mut step = 1usize;
    while step < max_k {
        let mut pairs = Vec::new();
        let cs = g.add_compute_set(&format!("{name}.colcombine[{step}]"));
        for &c in &active {
            let owners = &by_chip[c];
            let mut i = 0usize;
            while i + step < owners.len() {
                let b = recv_base[c] + i / 2;
                let (src_owner, _) = owners[i + step];
                pairs.push((
                    partials.slice(src_owner * cols..(src_owner + 1) * cols),
                    incoming.slice(b * cols..(b + 1) * cols),
                ));
                let (dst_owner, tile) = owners[i];
                let v = g.add_vertex(
                    cs,
                    tile,
                    &format!("{name}.colcombine[{step}][{c}:{i}]"),
                    move |ctx| {
                        let inc = ctx.f32(0);
                        let mut acc = ctx.f32_mut(1);
                        op.f32_accumulate(&mut acc, &inc);
                        cost::f32_update(acc.len())
                    },
                )?;
                g.connect(v, incoming.slice(b * cols..(b + 1) * cols), Access::Read)?;
                g.connect(
                    v,
                    partials.slice(dst_owner * cols..(dst_owner + 1) * cols),
                    Access::ReadWrite,
                )?;
                i += 2 * step;
            }
        }
        steps.push(Program::exchange(pairs));
        steps.push(Program::execute(cs));
        step *= 2;
    }

    // Cross-chip phase: every chip's head vector lands on every chip's
    // staging tile. `ipus·(ipus-1)` of these hops cross a link, each
    // from a distinct source tile, so they serialize per-tile rather
    // than through one root.
    let allrecv = g.add_tensor(&format!("{name}.allrecv"), DType::F32, a * a * cols);
    let stagevec = g.add_tensor(&format!("{name}.stagevec"), DType::F32, a * cols);
    for (cj, &c) in active.iter().enumerate() {
        g.map_slice(allrecv.slice(cj * a * cols..(cj + 1) * a * cols), stages[c])?;
        g.map_slice(stagevec.slice(cj * cols..(cj + 1) * cols), stages[c])?;
    }
    let mut cross_pairs = Vec::with_capacity(a * a);
    for (cj, _) in active.iter().enumerate() {
        for (sj, &src_chip) in active.iter().enumerate() {
            let (head_owner, _) = by_chip[src_chip][0];
            let b = cj * a + sj;
            cross_pairs.push((
                partials.slice(head_owner * cols..(head_owner + 1) * cols),
                allrecv.slice(b * cols..(b + 1) * cols),
            ));
        }
    }
    steps.push(Program::exchange(cross_pairs));

    let cs_fold = g.add_compute_set(&format!("{name}.chipfold"));
    for (cj, &c) in active.iter().enumerate() {
        let v = g.add_vertex(
            cs_fold,
            stages[c],
            &format!("{name}.chipfold[{c}]"),
            move |ctx| {
                let src = ctx.f32(0);
                let mut out = ctx.f32_mut(1);
                // Row-sweep form — see reduce_columns_mirrored for the
                // bit-exactness argument.
                for o in out.iter_mut() {
                    *o = op.f32_identity();
                }
                for sj in 0..a {
                    op.f32_accumulate(&mut out, &src[sj * cols..(sj + 1) * cols]);
                }
                cost::f32_scan(src.len())
            },
        )?;
        g.connect(
            v,
            allrecv.slice(cj * a * cols..(cj + 1) * a * cols),
            Access::Read,
        )?;
        g.connect(v, stagevec.slice(cj * cols..(cj + 1) * cols), Access::Write)?;
    }
    steps.push(Program::execute(cs_fold));

    // Mirror fan-out: each staging tile serves its own chip's owners —
    // all pairs on-chip. Tensor shape/mapping matches the flat builder.
    let mirror = g.add_tensor(&format!("{name}.colmirror"), DType::F32, k * cols);
    for (i, &(_, _, tile)) in intervals.iter().enumerate() {
        g.map_slice(mirror.slice(i * cols..(i + 1) * cols), tile)?;
    }
    let mut fan_pairs = Vec::with_capacity(k);
    for (cj, &c) in active.iter().enumerate() {
        for &(owner, _) in &by_chip[c] {
            fan_pairs.push((
                stagevec.slice(cj * cols..(cj + 1) * cols),
                mirror.slice(owner * cols..(owner + 1) * cols),
            ));
        }
    }
    steps.push(Program::exchange(fan_pairs));

    Ok((mirror, Program::seq(steps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpuConfig;

    fn device(tiles: usize) -> Graph {
        Graph::new(IpuConfig::tiny(tiles))
    }

    #[test]
    fn scalar_min_over_distributed_tensor() {
        let mut g = device(4);
        let t = g.add_tensor("t", DType::F32, 16);
        g.map_evenly(t).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "min", t, ReduceOp::Min, 0).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..16).map(|i| 100.0 - i as f32).collect();
        e.write_f32(t, &data).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(out), vec![85.0]);
        // Two supersteps (partials + final) and one gather exchange.
        assert_eq!(e.stats().supersteps, 2);
        assert_eq!(e.stats().exchanges, 1);
    }

    #[test]
    fn scalar_sum_i32() {
        let mut g = device(3);
        let t = g.add_tensor("t", DType::I32, 9);
        g.map_evenly(t).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "sum", t, ReduceOp::Sum, 2).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_i32(t, &[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(out), vec![45]);
    }

    #[test]
    fn scalar_max_single_tile() {
        let mut g = device(2);
        let t = g.add_tensor("t", DType::I32, 5);
        g.map_to_tile(t, 1).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "max", t, ReduceOp::Max, 0).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_i32(t, &[-3, 9, 2, 9, 0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_i32(out), vec![9]);
    }

    #[test]
    fn column_min_mirrored_on_every_owner() {
        // 6x4 matrix over 3 tiles (2 rows each).
        let rows = 6;
        let cols = 4;
        let mut g = device(3);
        let m = g.add_tensor("m", DType::F32, rows * cols);
        g.map_chunks_round_robin(m, 2 * cols, 0, 3).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "colmin", m, rows, cols, ReduceOp::Min).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 7 + 3) % 23) as f64 as f32)
            .collect();
        e.write_f32(m, &data).unwrap();
        e.run().unwrap();
        // Expected column minima.
        let mut expect = vec![f32::INFINITY; cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c] = expect[c].min(data[r * cols + c]);
            }
        }
        let got = e.read_f32(mirror);
        for owner in 0..3 {
            assert_eq!(&got[owner * cols..(owner + 1) * cols], &expect[..]);
        }
    }

    #[test]
    fn column_sum_matches_reference_with_many_owners() {
        // 8 owners exercises a multi-stage combining tree including the
        // odd tail.
        let rows = 8;
        let cols = 3;
        let mut g = device(8);
        let m = g.add_tensor("m", DType::F32, rows * cols);
        g.map_chunks_round_robin(m, cols, 0, 8).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "colsum", m, rows, cols, ReduceOp::Sum).unwrap();
        let mut e = g.compile(prog).unwrap();
        let data: Vec<f32> = (0..rows * cols).map(|i| (i % 5) as f32).collect();
        e.write_f32(m, &data).unwrap();
        e.run().unwrap();
        let mut expect = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c] += data[r * cols + c];
            }
        }
        let got = e.read_f32(mirror);
        assert_eq!(&got[0..cols], &expect[..]);
        assert_eq!(&got[7 * cols..8 * cols], &expect[..]);
    }

    /// Last tile of each chip, the staging convention HunIPU uses.
    fn stages_of(config: &IpuConfig) -> Vec<usize> {
        (0..config.ipus)
            .map(|c| (c + 1) * config.tiles_per_ipu - 1)
            .collect()
    }

    #[test]
    fn hier_scalar_reduce_matches_flat_on_multi_chip() {
        // 2 chips x 4 tiles; data spread over the first 3 tiles of each
        // chip; output on the root collector (last tile).
        let config = IpuConfig::tiny_multi(2, 4);
        let stages = stages_of(&config);
        let n = 24;
        let data: Vec<i32> = (0..n as i32).map(|i| (i * 37) % 101 - 50).collect();
        for op in [ReduceOp::Min, ReduceOp::Max, ReduceOp::Sum] {
            let run = |hier: bool| {
                let mut g = Graph::new(config.clone());
                let t = g.add_tensor("t", DType::I32, n);
                for (i, tile) in [0usize, 1, 2, 4, 5, 6].iter().enumerate() {
                    g.map_slice(t.slice(i * 4..(i + 1) * 4), *tile).unwrap();
                }
                let (out, prog) = if hier {
                    reduce_to_scalar_hier(&mut g, "r", t, op, &stages, 7).unwrap()
                } else {
                    reduce_to_scalar(&mut g, "r", t, op, 7).unwrap()
                };
                let mut e = g.compile(prog).unwrap();
                e.write_i32(t, &data).unwrap();
                e.run().unwrap();
                (e.read_i32(out)[0], e.stats().clone())
            };
            let (flat_val, flat_stats) = run(false);
            let (hier_val, hier_stats) = run(true);
            assert_eq!(flat_val, hier_val, "{op:?}");
            // The hierarchical gather crosses the IPU-Link with 2 scalars
            // (one per chip) instead of 3 partials from the remote chip.
            assert!(hier_stats.exchanges > flat_stats.exchanges);
        }
    }

    #[test]
    fn hier_scalar_reduce_single_active_chip() {
        // All data on chip 0, output on chip 1: the cross phase carries
        // one scalar.
        let config = IpuConfig::tiny_multi(2, 2);
        let stages = stages_of(&config);
        let mut g = Graph::new(config);
        let t = g.add_tensor("t", DType::F32, 8);
        g.map_slice(t.slice(0..4), 0).unwrap();
        g.map_slice(t.slice(4..8), 1).unwrap();
        let (out, prog) = reduce_to_scalar_hier(&mut g, "r", t, ReduceOp::Min, &stages, 3).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_f32(t, &[5.0, 3.0, 8.0, 9.0, 4.0, 2.5, 7.0, 6.0])
            .unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(out), vec![2.5]);
    }

    #[test]
    fn hier_column_reduce_matches_flat_for_min() {
        // 8 rows over 2 chips x 4 tiles (3 owners per chip), min per
        // column — order-insensitive, so hier must equal flat exactly.
        let rows = 6;
        let cols = 5;
        let config = IpuConfig::tiny_multi(2, 4);
        let stages = stages_of(&config);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 13 + 5) % 31) as f32 - 7.0)
            .collect();
        let run = |hier: bool| {
            let mut g = Graph::new(config.clone());
            let m = g.add_tensor("m", DType::F32, rows * cols);
            for (i, tile) in [0usize, 1, 2, 4, 5, 6].iter().enumerate() {
                g.map_slice(m.slice(i * cols..(i + 1) * cols), *tile)
                    .unwrap();
            }
            let (mirror, prog) = if hier {
                reduce_columns_mirrored_hier(&mut g, "cm", m, rows, cols, ReduceOp::Min, &stages)
                    .unwrap()
            } else {
                reduce_columns_mirrored(&mut g, "cm", m, rows, cols, ReduceOp::Min).unwrap()
            };
            let mut e = g.compile(prog).unwrap();
            e.write_f32(m, &data).unwrap();
            e.run().unwrap();
            e.read_f32(mirror)
        };
        let flat = run(false);
        let hier = run(true);
        assert_eq!(flat, hier);
        // Sanity: every owner block holds the true column minima.
        let mut expect = vec![f32::INFINITY; cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c] = expect[c].min(data[r * cols + c]);
            }
        }
        for owner in 0..rows {
            assert_eq!(&hier[owner * cols..(owner + 1) * cols], &expect[..]);
        }
    }

    #[test]
    fn hier_builders_reject_wrong_stage_count() {
        let config = IpuConfig::tiny_multi(2, 2);
        let mut g = Graph::new(config);
        let t = g.add_tensor("t", DType::I32, 4);
        g.map_to_tile(t, 0).unwrap();
        let err = reduce_to_scalar_hier(&mut g, "r", t, ReduceOp::Max, &[0], 3).unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
    }

    #[test]
    fn misaligned_matrix_mapping_rejected() {
        let mut g = device(2);
        let m = g.add_tensor("m", DType::F32, 8);
        // 2x4 matrix split mid-row.
        g.map_slice(m.slice(0..3), 0).unwrap();
        g.map_slice(m.slice(3..8), 1).unwrap();
        let err = reduce_columns_mirrored(&mut g, "bad", m, 2, 4, ReduceOp::Min).unwrap_err();
        assert!(matches!(err, GraphError::BadSlice { .. }));
    }

    #[test]
    fn reduction_of_unmapped_tensor_rejected() {
        let mut g = device(2);
        let t = g.add_tensor("t", DType::F32, 4);
        let err = reduce_to_scalar(&mut g, "r", t, ReduceOp::Min, 0).unwrap_err();
        assert!(matches!(err, GraphError::Unmapped { .. }));
    }

    #[test]
    fn single_row_column_reduce() {
        let mut g = device(1);
        let m = g.add_tensor("m", DType::F32, 4);
        g.map_to_tile(m, 0).unwrap();
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "one", m, 1, 4, ReduceOp::Min).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_f32(m, &[4.0, 3.0, 2.0, 1.0]).unwrap();
        e.run().unwrap();
        assert_eq!(e.read_f32(mirror), vec![4.0, 3.0, 2.0, 1.0]);
    }
}
