//! SIMD-friendly inner-loop kernels shared by library codelets.
//!
//! Codelet bodies run on the host, so their wall-clock cost is host
//! scalar/vector throughput — the *modeled* cycle charge (see
//! [`crate::cost`]) is independent of how the host loop is written.
//! These helpers restructure the hottest f32 loops so LLVM can
//! auto-vectorize them:
//!
//! - **Reductions** ([`min_f32`], [`max_f32`], [`masked_min_where_zero`])
//!   carry a loop dependence through the accumulator, which blocks
//!   vectorization of the naive fold. They are written with a bank of
//!   independent accumulators over fixed-width chunks; the banks only
//!   combine after the loop.
//! - **Masked updates** ([`add_where_nonzero`], [`sub_where_zero`],
//!   [`sub_where_nonzero`]) replace the branchy `if mask { *x op= d }`
//!   with an unconditional select-on-result store (`*x = if mask { x op d }
//!   else { *x }`), which compiles to compare + blend + store.
//!
//! # Bit-exactness
//!
//! Reassociating `min`/`max` is value-exact for the data these kernels
//! see: no NaNs reach them (slack matrices are finite by construction,
//! and `x - x` is `+0.0`), and masked-off lanes contribute the identity.
//! The masked updates store either the bitwise-unchanged old value or
//! exactly the value the branchy loop would have written, so buffers are
//! bit-identical to the scalar formulation. Floating-point **addition**
//! is *not* reassociation-safe; summation folds must stay strictly
//! sequential and are deliberately absent here.

/// Accumulator-bank width for the reduction kernels. Eight f32 lanes
/// match a 256-bit vector register; wider targets simply unroll.
const LANES: usize = 8;

/// Minimum of a slice, `f32::INFINITY` when empty.
pub fn min_f32(xs: &[f32]) -> f32 {
    let mut acc = [f32::INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a = a.min(x);
        }
    }
    let mut m = chunks
        .remainder()
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    for a in acc {
        m = m.min(a);
    }
    m
}

/// Maximum of a slice, `f32::NEG_INFINITY` when empty.
pub fn max_f32(xs: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a = a.max(x);
        }
    }
    let mut m = chunks
        .remainder()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    for a in acc {
        m = m.max(a);
    }
    m
}

/// Minimum of `xs[i]` over the positions where `mask[i] == 0`;
/// `f32::INFINITY` when no position qualifies. Masked-off lanes are
/// selected to the identity rather than branched over, so the scan
/// vectorizes. Panics if `mask` is shorter than `xs`.
pub fn masked_min_where_zero(xs: &[f32], mask: &[i32]) -> f32 {
    let mask = &mask[..xs.len()];
    let mut acc = [f32::INFINITY; LANES];
    let mut xc = xs.chunks_exact(LANES);
    let mut mc = mask.chunks_exact(LANES);
    for (c, mk) in (&mut xc).zip(&mut mc) {
        for ((a, &x), &m) in acc.iter_mut().zip(c).zip(mk) {
            let v = if m == 0 { x } else { f32::INFINITY };
            *a = a.min(v);
        }
    }
    let mut m = f32::INFINITY;
    for (&x, &k) in xc.remainder().iter().zip(mc.remainder()) {
        let v = if k == 0 { x } else { f32::INFINITY };
        m = m.min(v);
    }
    for a in acc {
        m = m.min(a);
    }
    m
}

/// `xs[i] -= d` for every element.
pub fn sub_scalar(xs: &mut [f32], d: f32) {
    for x in xs.iter_mut() {
        *x -= d;
    }
}

/// `xs[i] -= ys[i]` elementwise over the common prefix.
pub fn sub_elementwise(xs: &mut [f32], ys: &[f32]) {
    for (x, &y) in xs.iter_mut().zip(ys) {
        *x -= y;
    }
}

/// `acc[i] = acc[i].min(xs[i])` elementwise over the common prefix.
pub fn min_assign(acc: &mut [f32], xs: &[f32]) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a = a.min(x);
    }
}

/// `acc[i] = acc[i].max(xs[i])` elementwise over the common prefix.
pub fn max_assign(acc: &mut [f32], xs: &[f32]) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a = a.max(x);
    }
}

/// `acc[i] += xs[i]` elementwise over the common prefix. Per-element
/// order is unchanged from a scalar loop, so sums stay bit-exact.
pub fn add_assign(acc: &mut [f32], xs: &[f32]) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += x;
    }
}

/// `xs[i] += d` where `mask[i] != 0`; other elements are stored back
/// bitwise-unchanged. Panics if `mask` is shorter than `xs`.
pub fn add_where_nonzero(xs: &mut [f32], mask: &[i32], d: f32) {
    let mask = &mask[..xs.len()];
    for (x, &m) in xs.iter_mut().zip(mask) {
        let y = *x + d;
        *x = if m != 0 { y } else { *x };
    }
}

/// `xs[i] -= d` where `mask[i] == 0`; other elements are stored back
/// bitwise-unchanged. Panics if `mask` is shorter than `xs`.
pub fn sub_where_zero(xs: &mut [f32], mask: &[i32], d: f32) {
    let mask = &mask[..xs.len()];
    for (x, &m) in xs.iter_mut().zip(mask) {
        let y = *x - d;
        *x = if m == 0 { y } else { *x };
    }
}

/// `xs[i] -= d` where `mask[i] != 0`; other elements are stored back
/// bitwise-unchanged. Panics if `mask` is shorter than `xs`.
pub fn sub_where_nonzero(xs: &mut [f32], mask: &[i32], d: f32) {
    let mask = &mask[..xs.len()];
    for (x, &m) in xs.iter_mut().zip(mask) {
        let y = *x - d;
        *x = if m != 0 { y } else { *x };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_min(xs: &[f32]) -> f32 {
        xs.iter().copied().fold(f32::INFINITY, f32::min)
    }

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f32 - 50.0)
            .collect()
    }

    #[test]
    fn min_matches_fold_at_every_length() {
        for n in 0..40 {
            let xs = ramp(n);
            assert_eq!(min_f32(&xs).to_bits(), scalar_min(&xs).to_bits(), "n={n}");
        }
    }

    #[test]
    fn max_matches_fold() {
        let xs = ramp(33);
        let want = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(max_f32(&xs).to_bits(), want.to_bits());
    }

    #[test]
    fn empty_reductions_give_identity() {
        assert_eq!(min_f32(&[]), f32::INFINITY);
        assert_eq!(max_f32(&[]), f32::NEG_INFINITY);
        assert_eq!(masked_min_where_zero(&[], &[]), f32::INFINITY);
    }

    #[test]
    fn masked_min_matches_branchy_loop() {
        for n in 0..40 {
            let xs = ramp(n);
            let mask: Vec<i32> = (0..n).map(|i| ((i * 7 + 3) % 3 == 0) as i32).collect();
            let mut want = f32::INFINITY;
            for (x, &m) in xs.iter().zip(&mask) {
                if m == 0 {
                    want = want.min(*x);
                }
            }
            assert_eq!(
                masked_min_where_zero(&xs, &mask).to_bits(),
                want.to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn masked_min_all_masked_is_infinity() {
        let xs = ramp(17);
        let mask = vec![1i32; 17];
        assert_eq!(masked_min_where_zero(&xs, &mask), f32::INFINITY);
    }

    #[test]
    fn masked_min_accepts_longer_mask() {
        let xs = [3.0f32, 1.0];
        let mask = [0i32, 1, 0, 0];
        assert_eq!(masked_min_where_zero(&xs, &mask), 3.0);
    }

    #[test]
    fn masked_updates_match_branchy_loops() {
        let n = 37;
        let base = ramp(n);
        let mask: Vec<i32> = (0..n).map(|i| ((i % 5) < 2) as i32).collect();
        let d = 2.5f32;

        let mut got = base.clone();
        add_where_nonzero(&mut got, &mask, d);
        let mut want = base.clone();
        for (x, &m) in want.iter_mut().zip(&mask) {
            if m != 0 {
                *x += d;
            }
        }
        assert_eq!(got, want);

        let mut got = base.clone();
        sub_where_zero(&mut got, &mask, d);
        let mut want = base.clone();
        for (x, &m) in want.iter_mut().zip(&mask) {
            if m == 0 {
                *x -= d;
            }
        }
        assert_eq!(got, want);

        let mut got = base.clone();
        sub_where_nonzero(&mut got, &mask, d);
        let mut want = base;
        for (x, &m) in want.iter_mut().zip(&mask) {
            if m != 0 {
                *x -= d;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = vec![5.0f32, 2.0, 7.0];
        min_assign(&mut a, &[4.0, 3.0, 9.0]);
        assert_eq!(a, vec![4.0, 2.0, 7.0]);
        max_assign(&mut a, &[6.0, 1.0, 8.0]);
        assert_eq!(a, vec![6.0, 2.0, 8.0]);
        add_assign(&mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![7.0, 3.0, 9.0]);
        sub_elementwise(&mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![6.0, 2.0, 8.0]);
        sub_scalar(&mut a, 2.0);
        assert_eq!(a, vec![4.0, 0.0, 6.0]);
    }
}
