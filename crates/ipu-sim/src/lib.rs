//! A Graphcore-IPU machine simulator.
//!
//! The paper's system (HunIPU) targets a Graphcore Mk2 GC200 IPU through
//! the Poplar SDK. Neither is reachable from Rust, so this crate rebuilds
//! the *machine model* the paper programs against — faithfully enough that
//! the algorithmic design decisions of §III–IV are forced on the user of
//! this crate the same way the hardware forces them on the paper:
//!
//! - **Tiles with private SRAM only (C2).** Data lives in tensors, and
//!   every tensor element is explicitly mapped to a tile. A compute vertex
//!   may only touch tensor regions mapped to *its own* tile; violations
//!   are build-time errors. Per-tile memory is budgeted (624 KiB) and
//!   overflows are build-time errors.
//! - **No atomics, no shared memory (C1).** Within a compute set, two
//!   vertices may never write overlapping regions, nor may one read what
//!   another writes; violations are build-time errors (this mirrors
//!   Poplar's data-integrity rule for compute sets).
//! - **BSP execution (C3).** A program is a static tree of compute sets,
//!   exchanges, and loops. Each executed compute set is a superstep: its
//!   modeled duration is the *maximum* over tiles (stragglers stall the
//!   whole chip), followed by a sync charge and, for copies, an exchange
//!   charge based on per-tile bytes moved.
//! - **Static graph (C4).** All tensors, vertices, copies, and control
//!   flow are declared before execution; the only data-dependent control
//!   is `RepeatWhileTrue` on a device scalar, exactly as in Poplar.
//!
//! The modeled device defaults to the paper's Mk2 GC200: 1472 tiles, six
//! hardware threads per tile, 624 KiB SRAM per tile, 1.325 GHz clock (see
//! [`calibration`] for every constant and its rationale).
//!
//! Execution on the host is **tile-parallel and bit-deterministic**: when
//! more than one host thread is available (see
//! [`IpuConfig::host_threads`] and the `SIM_THREADS` environment
//! variable), each superstep's vertices are sharded by tile over a scoped
//! worker pool. Vertices within a compute set are independent by
//! construction (the compile-time race validation proves write-connected
//! regions disjoint), per-slot instruction loads are order-independent
//! u64 sums, the superstep cost is a max-reduction over them, and fault
//! injection runs serially after workers join — so buffers, cycle
//! statistics, and fault behaviour are bit-identical at any thread count,
//! including fully sequential execution.
//!
//! # Quick example
//!
//! ```
//! use ipu_sim::{Graph, IpuConfig, Program, DType, Access, cost};
//!
//! let mut graph = Graph::new(IpuConfig::mk2());
//! let x = graph.add_tensor("x", DType::F32, 8);
//! graph.map_to_tile(x, 0).unwrap();
//! let cs = graph.add_compute_set("double");
//! let v = graph.add_vertex(cs, 0, "double", |ctx| {
//!     let mut x = ctx.f32_mut(0);
//!     for e in x.iter_mut() { *e *= 2.0; }
//!     ipu_sim::cost::f32_update(x.len())
//! }).unwrap();
//! graph.connect(v, x.slice(0..8), Access::ReadWrite).unwrap();
//! let mut engine = graph.compile(Program::execute(cs)).unwrap();
//! engine.write_f32(x, &[1.0; 8]).unwrap();
//! engine.run().unwrap();
//! assert_eq!(engine.read_f32(x), vec![2.0; 8]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calibration;
mod codelet;
mod config;
mod engine;
mod error;
mod exec;
mod fault;
mod graph;
pub mod kernels;
mod plan;
mod pool;
pub mod poplib;
pub mod profile;
mod program;
mod stats;
mod tensor;

pub use codelet::{cost, Codelet, VertexCtx};
pub use config::{ExecMode, IpuConfig};
pub use engine::{Engine, EngineSnapshot};
pub use error::GraphError;
pub use fault::{FaultPlan, FaultSpecError};
pub use graph::{Access, ComputeSetId, Graph, VertexId};
pub use profile::{ProfileConfig, ProfileEvent, ProfileReport, Profiler};
pub use program::Program;
pub use stats::{CycleStats, FaultStats, StepBreakdown};
pub use tensor::{DType, Tensor, TensorSlice};
