//! The execution-side program representation.
//!
//! [`crate::Program`] is the user-facing, declarative tree; at compile time
//! the engine lowers it into an [`ExecNode`] tree where every exchange-like
//! node (copy, broadcast, exchange) carries a dense `cost_id` assigned in
//! lowering order. The exchange-cost memo then becomes a plain
//! `Vec<Option<u64>>` lookup instead of a `HashMap` keyed by the full
//! endpoint vector — the mapping is static, so two executions of the same
//! node always move the same bytes.

use crate::program::Program;
use crate::tensor::{Tensor, TensorSlice};

/// A lowered program node. Mirrors [`Program`] with two changes: broadcasts
/// are folded into [`ExecNode::Copy`] with a precomputed repetition count,
/// and every exchange-like node carries its memo slot.
pub(crate) enum ExecNode {
    /// Run sub-programs in order.
    Seq(Vec<ExecNode>),
    /// Run a compute set as one BSP superstep.
    Execute(usize),
    /// One exchange phase delivering `reps` repetitions of `src` into
    /// `dst` (`reps == 1` for plain copies, `dst.len() / src.len()` for
    /// broadcasts).
    Copy {
        src: TensorSlice,
        dst: TensorSlice,
        reps: usize,
        cost_id: u32,
    },
    /// Many independent copies fused into one exchange phase.
    Exchange {
        pairs: Vec<(TensorSlice, TensorSlice)>,
        cost_id: u32,
    },
    /// Fixed-count loop.
    Repeat { count: u64, body: Box<ExecNode> },
    /// Device-predicated loop.
    While {
        predicate: Tensor,
        body: Box<ExecNode>,
    },
    /// Device-predicated branch.
    If {
        predicate: Tensor,
        then_body: Box<ExecNode>,
        else_body: Box<ExecNode>,
    },
}

/// Lowers a validated [`Program`] tree, returning the root node and the
/// number of distinct exchange-like nodes (the size of the cost memo).
pub(crate) fn lower(program: &Program) -> (ExecNode, usize) {
    let mut next_cost_id = 0u32;
    let root = lower_node(program, &mut next_cost_id);
    (root, next_cost_id as usize)
}

fn lower_node(program: &Program, next_cost_id: &mut u32) -> ExecNode {
    let mut fresh_id = || {
        let id = *next_cost_id;
        *next_cost_id += 1;
        id
    };
    match program {
        Program::Sequence(items) => {
            ExecNode::Seq(items.iter().map(|p| lower_node(p, next_cost_id)).collect())
        }
        Program::Execute(cs) => ExecNode::Execute(cs.0),
        Program::Copy { src, dst } => ExecNode::Copy {
            src: *src,
            dst: *dst,
            reps: 1,
            cost_id: fresh_id(),
        },
        Program::Broadcast { src, dst } => ExecNode::Copy {
            src: *src,
            dst: *dst,
            // Validated at compile: src is non-empty and divides dst.
            reps: dst.len() / src.len(),
            cost_id: fresh_id(),
        },
        Program::Exchange(pairs) => ExecNode::Exchange {
            pairs: pairs.clone(),
            cost_id: fresh_id(),
        },
        Program::Repeat { count, body } => ExecNode::Repeat {
            count: *count,
            body: Box::new(lower_node(body, next_cost_id)),
        },
        Program::RepeatWhileTrue { predicate, body } => ExecNode::While {
            predicate: *predicate,
            body: Box::new(lower_node(body, next_cost_id)),
        },
        Program::If {
            predicate,
            then_body,
            else_body,
        } => ExecNode::If {
            predicate: *predicate,
            then_body: Box::new(lower_node(then_body, next_cost_id)),
            else_body: Box::new(lower_node(else_body, next_cost_id)),
        },
    }
}

impl ExecNode {
    /// The first compute set executed under this node, if any — used for
    /// divergence diagnostics.
    pub(crate) fn first_compute_set(&self) -> Option<usize> {
        match self {
            ExecNode::Execute(cs) => Some(*cs),
            ExecNode::Seq(items) => items.iter().find_map(ExecNode::first_compute_set),
            ExecNode::Repeat { body, .. } | ExecNode::While { body, .. } => {
                body.first_compute_set()
            }
            ExecNode::If {
                then_body,
                else_body,
                ..
            } => then_body
                .first_compute_set()
                .or_else(|| else_body.first_compute_set()),
            _ => None,
        }
    }

    /// Number of nodes in this lowered subtree — used to size the modeled
    /// program image at engine construction.
    pub(crate) fn node_count(&self) -> u64 {
        match self {
            ExecNode::Seq(items) => 1 + items.iter().map(ExecNode::node_count).sum::<u64>(),
            ExecNode::Execute(_) | ExecNode::Copy { .. } | ExecNode::Exchange { .. } => 1,
            ExecNode::Repeat { body, .. } | ExecNode::While { body, .. } => 1 + body.node_count(),
            ExecNode::If {
                then_body,
                else_body,
                ..
            } => 1 + then_body.node_count() + else_body.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputeSetId, DType};

    fn dummy_slice(len: usize) -> TensorSlice {
        Tensor {
            id: 0,
            len,
            dtype: DType::F32,
        }
        .whole()
    }

    #[test]
    fn lowering_assigns_dense_cost_ids_in_order() {
        let p = Program::seq(vec![
            Program::copy(dummy_slice(4), dummy_slice(4)),
            Program::repeat(
                3,
                Program::seq(vec![
                    Program::broadcast(dummy_slice(2), dummy_slice(4)),
                    Program::exchange(vec![(dummy_slice(4), dummy_slice(4))]),
                ]),
            ),
        ]);
        let (root, n) = lower(&p);
        assert_eq!(n, 3);
        let ExecNode::Seq(items) = root else {
            panic!("expected sequence");
        };
        match &items[0] {
            ExecNode::Copy { cost_id, reps, .. } => {
                assert_eq!(*cost_id, 0);
                assert_eq!(*reps, 1);
            }
            _ => panic!("expected copy"),
        }
        let ExecNode::Repeat { body, .. } = &items[1] else {
            panic!("expected repeat");
        };
        let ExecNode::Seq(inner) = &**body else {
            panic!("expected inner sequence");
        };
        match &inner[0] {
            ExecNode::Copy { cost_id, reps, .. } => {
                assert_eq!(*cost_id, 1);
                assert_eq!(*reps, 2);
            }
            _ => panic!("expected lowered broadcast"),
        }
        match &inner[1] {
            ExecNode::Exchange { cost_id, .. } => assert_eq!(*cost_id, 2),
            _ => panic!("expected exchange"),
        }
    }

    #[test]
    fn first_compute_set_looks_through_control_flow() {
        let p = Program::seq(vec![
            Program::copy(dummy_slice(4), dummy_slice(4)),
            Program::repeat(2, Program::execute(ComputeSetId(5))),
        ]);
        let (root, _) = lower(&p);
        assert_eq!(root.first_compute_set(), Some(5));
        let (empty, _) = lower(&Program::seq(vec![]));
        assert_eq!(empty.first_compute_set(), None);
    }
}
