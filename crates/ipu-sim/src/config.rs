//! Device configuration.

use serde::{Deserialize, Serialize};

/// Which host execution strategy an engine uses for compiled programs.
///
/// Both strategies honor the same contract: buffers, [`crate::CycleStats`],
/// [`crate::FaultStats`], and profiles are bit-identical between them and
/// at every host thread count — the mode affects **host wall-clock only**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// Use the `SIM_EXEC` environment variable if set
    /// (`plan`/`interp`/`interpreted`), else the lowered plan.
    #[default]
    Auto,
    /// Pre-resolved straight-line execution plan: monomorphized vertex
    /// tables, pre-sliced buffer views, flattened exchange copy lists,
    /// fused multi-superstep worker dispatch (the fast path).
    Plan,
    /// Walk the lowered program tree and re-derive vertex state each
    /// superstep (the reference path the plan is differentially tested
    /// against).
    Interpreted,
}

/// Hardware parameters of the simulated IPU.
///
/// Defaults model the Colossus Mk2 GC200 used by the paper (§III, §V).
/// Smaller configurations are useful in tests: constraint violations
/// (memory, mapping) reproduce at any scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpuConfig {
    /// Number of tiles on the chip (Mk2: 1472).
    pub tiles: usize,
    /// Hardware threads per tile (Mk2: 6).
    pub threads_per_tile: usize,
    /// SRAM per tile in bytes (Mk2: 624 KiB).
    pub tile_memory_bytes: usize,
    /// Core clock in Hz (Mk2: 1.325 GHz).
    pub clock_hz: f64,
    /// Exchange-fabric bandwidth per tile, bytes per cycle in each
    /// direction (Mk2: ~4 B/cycle send per tile).
    pub exchange_bytes_per_cycle: f64,
    /// Cycles charged for a chip-wide BSP synchronization.
    pub sync_cycles: u64,
    /// Fixed cycles charged to set up one exchange phase.
    pub exchange_setup_cycles: u64,
    /// Cycles charged per iteration of data-dependent control flow
    /// (`RepeatWhileTrue` reads a device scalar between supersteps).
    pub control_cycles: u64,
    /// Number of chips in the system. On a multi-IPU system "the
    /// exchange fabric extends to all tiles on all of the IPUs" (§III),
    /// but traffic between chips crosses IPU-Links, which are far slower
    /// than the on-chip fabric.
    pub ipus: usize,
    /// Tiles per chip (`tiles = ipus * tiles_per_ipu`).
    pub tiles_per_ipu: usize,
    /// Per-tile bandwidth for bytes crossing a chip boundary, bytes per
    /// cycle (IPU-Link share; see `calibration`).
    pub inter_ipu_bytes_per_cycle: f64,
    /// Iteration guard for `RepeatWhileTrue`: the watchdog that turns a
    /// stuck device loop into [`crate::GraphError::Divergence`] instead of
    /// hanging the host. The default is generous (the paper's largest
    /// instances stay far below it); tests and resilience supervisors
    /// lower it to fail fast.
    pub max_while_iterations: u64,
    /// Host worker threads for superstep execution. `0` (the default)
    /// means: use the `SIM_THREADS` environment variable if set, else
    /// auto-detect from the machine. Any nonzero value wins over both.
    /// This affects **wall-clock only** — buffers, `CycleStats`, and
    /// fault behaviour are bit-identical at every thread count.
    #[serde(default)]
    pub host_threads: usize,
    /// Fixed cycles to attach and launch a compiled program (device
    /// attach + per-tile code distribution). Reported as a static engine
    /// property ([`crate::Engine::program_load_cycles`]), never charged
    /// into [`crate::CycleStats`]; batch serving pays it once per
    /// program while sequential solving pays it per solve.
    #[serde(default = "default_program_load_base_cycles")]
    pub program_load_base_cycles: u64,
    /// Host→device bandwidth for streaming the program image, bytes per
    /// cycle chip-wide (PCIe share; see `calibration`).
    #[serde(default = "default_host_io_bytes_per_cycle")]
    pub host_io_bytes_per_cycle: f64,
    /// Host execution strategy ([`ExecMode`]). Affects wall-clock only;
    /// results are bit-identical between modes.
    #[serde(default)]
    pub exec_mode: ExecMode,
    /// Minimum vertex count at which a superstep (or fused run of
    /// supersteps) is dispatched to the worker pool instead of executed on
    /// the main thread. `0` (the default) means: use the
    /// `SIM_PARALLEL_THRESHOLD` environment variable if set, else the
    /// tuned built-in default. Wall-clock only — dispatch choice never
    /// affects results.
    #[serde(default)]
    pub parallel_threshold: usize,
}

fn default_program_load_base_cycles() -> u64 {
    crate::calibration::PROGRAM_LOAD_BASE_CYCLES
}

fn default_host_io_bytes_per_cycle() -> f64 {
    crate::calibration::HOST_IO_BYTES_PER_CYCLE
}

impl IpuConfig {
    /// The paper's device: a Colossus Mk2 GC200.
    pub fn mk2() -> Self {
        Self {
            tiles: calibration_tiles(),
            threads_per_tile: 6,
            tile_memory_bytes: 624 * 1024,
            clock_hz: crate::calibration::MK2_CLOCK_HZ,
            exchange_bytes_per_cycle: crate::calibration::EXCHANGE_BYTES_PER_CYCLE,
            sync_cycles: crate::calibration::SYNC_CYCLES,
            exchange_setup_cycles: crate::calibration::EXCHANGE_SETUP_CYCLES,
            control_cycles: crate::calibration::CONTROL_CYCLES,
            ipus: 1,
            tiles_per_ipu: calibration_tiles(),
            inter_ipu_bytes_per_cycle: crate::calibration::INTER_IPU_BYTES_PER_CYCLE,
            max_while_iterations: 100_000_000,
            host_threads: 0,
            program_load_base_cycles: crate::calibration::PROGRAM_LOAD_BASE_CYCLES,
            host_io_bytes_per_cycle: crate::calibration::HOST_IO_BYTES_PER_CYCLE,
            exec_mode: ExecMode::Auto,
            parallel_threshold: 0,
        }
    }

    /// A multi-chip system of `ipus` Mk2s (e.g. an M2000 holds four):
    /// one exchange address space over `1472 * ipus` tiles, with
    /// chip-crossing traffic charged at IPU-Link bandwidth.
    pub fn mk2_multi(ipus: usize) -> Self {
        assert!(ipus >= 1);
        let per = calibration_tiles();
        Self {
            tiles: per * ipus,
            ipus,
            tiles_per_ipu: per,
            ..Self::mk2()
        }
    }

    /// A small device for unit tests: `tiles` tiles with the Mk2's other
    /// parameters.
    pub fn tiny(tiles: usize) -> Self {
        Self {
            tiles,
            tiles_per_ipu: tiles,
            ..Self::mk2()
        }
    }

    /// A small multi-chip device for tests: `ipus` chips of
    /// `tiles_per_ipu` tiles.
    pub fn tiny_multi(ipus: usize, tiles_per_ipu: usize) -> Self {
        Self {
            tiles: ipus * tiles_per_ipu,
            ipus,
            tiles_per_ipu,
            ..Self::mk2()
        }
    }

    /// The chip hosting `tile`.
    pub fn ipu_of(&self, tile: usize) -> usize {
        tile / self.tiles_per_ipu
    }

    /// The chip hosting `tile` — alias of [`ipu_of`](Self::ipu_of) for
    /// program builders that speak in chips.
    pub fn chip_of_tile(&self, tile: usize) -> usize {
        self.ipu_of(tile)
    }

    /// The contiguous device-tile range of chip `ipu`
    /// (`ipu * tiles_per_ipu .. (ipu + 1) * tiles_per_ipu`).
    pub fn tiles_of_ipu(&self, ipu: usize) -> std::ops::Range<usize> {
        ipu * self.tiles_per_ipu..(ipu + 1) * self.tiles_per_ipu
    }

    /// Checks the topology for internal consistency.
    ///
    /// An inconsistent config (e.g. `tiles != ipus * tiles_per_ipu`)
    /// would silently miscost cross-chip traffic: `ipu_of` would place
    /// tiles on chips that don't exist, or lump several chips together.
    /// [`crate::Graph::compile`] calls this before building an engine so
    /// the mistake surfaces as a clear error instead of wrong cycle
    /// counts.
    pub fn validate(&self) -> Result<(), String> {
        if self.ipus == 0 {
            return Err("IpuConfig: ipus must be >= 1".into());
        }
        if self.tiles_per_ipu == 0 {
            return Err("IpuConfig: tiles_per_ipu must be >= 1".into());
        }
        if self.tiles != self.ipus * self.tiles_per_ipu {
            return Err(format!(
                "IpuConfig: tiles ({}) != ipus ({}) * tiles_per_ipu ({}); \
                 cross-chip exchange costs would be attributed to the wrong chips",
                self.tiles, self.ipus, self.tiles_per_ipu
            ));
        }
        if self.threads_per_tile == 0 {
            return Err("IpuConfig: threads_per_tile must be >= 1".into());
        }
        // NaN bandwidths must fail too, hence the is_nan checks.
        let bad = |b: f64| b.is_nan() || b <= 0.0;
        if bad(self.exchange_bytes_per_cycle) || bad(self.inter_ipu_bytes_per_cycle) {
            return Err(format!(
                "IpuConfig: exchange bandwidths must be positive \
                 (on-chip {} B/cycle, inter-IPU {} B/cycle)",
                self.exchange_bytes_per_cycle, self.inter_ipu_bytes_per_cycle
            ));
        }
        Ok(())
    }

    /// Total hardware threads on the chip.
    pub fn total_threads(&self) -> usize {
        self.tiles * self.threads_per_tile
    }

    /// Converts device cycles to modeled seconds at this clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// The host worker-thread count an engine built from this config will
    /// use: [`host_threads`](Self::host_threads) if nonzero, else the
    /// `SIM_THREADS` environment variable, else auto-detection (clamped).
    /// Useful for recording provenance next to wall-clock measurements.
    pub fn resolved_host_threads(&self) -> usize {
        crate::engine::resolve_host_threads(self)
    }

    /// The pool-dispatch vertex threshold an engine built from this config
    /// will use: [`parallel_threshold`](Self::parallel_threshold) if
    /// nonzero, else the `SIM_PARALLEL_THRESHOLD` environment variable,
    /// else the tuned built-in default.
    pub fn resolved_parallel_threshold(&self) -> usize {
        crate::engine::resolve_parallel_threshold(self)
    }

    /// The execution mode an engine built from this config will start in:
    /// [`exec_mode`](Self::exec_mode) if not `Auto`, else the `SIM_EXEC`
    /// environment variable (`interp`/`interpreted` select the tree
    /// walker), else [`ExecMode::Plan`]. Never returns `Auto`.
    pub fn resolved_exec_mode(&self) -> ExecMode {
        crate::engine::resolve_exec_mode(self)
    }
}

impl Default for IpuConfig {
    fn default() -> Self {
        Self::mk2()
    }
}

fn calibration_tiles() -> usize {
    crate::calibration::MK2_TILES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk2_matches_paper_description() {
        let c = IpuConfig::mk2();
        assert_eq!(c.tiles, 1472);
        assert_eq!(c.threads_per_tile, 6);
        assert_eq!(c.tile_memory_bytes, 624 * 1024);
        assert_eq!(c.total_threads(), 8832);
        // ~900 MiB of in-processor memory in total (paper §III).
        let total_mib = (c.tiles * c.tile_memory_bytes) as f64 / (1024.0 * 1024.0);
        assert!((total_mib - 897.0).abs() < 1.0);
    }

    #[test]
    fn validate_accepts_all_constructors() {
        for c in [
            IpuConfig::mk2(),
            IpuConfig::mk2_multi(4),
            IpuConfig::tiny(8),
            IpuConfig::tiny_multi(2, 4),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_inconsistent_topology() {
        let mut c = IpuConfig::tiny_multi(2, 4);
        c.tiles = 9; // not 2 * 4
        let err = c.validate().unwrap_err();
        assert!(err.contains("tiles (9)"), "{err}");
        assert!(err.contains("ipus (2)"), "{err}");

        let mut c = IpuConfig::tiny(4);
        c.ipus = 0;
        assert!(c.validate().is_err());

        let mut c = IpuConfig::tiny(4);
        c.inter_ipu_bytes_per_cycle = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn chip_topology_helpers_agree() {
        let c = IpuConfig::tiny_multi(3, 4);
        assert_eq!(c.tiles_of_ipu(0), 0..4);
        assert_eq!(c.tiles_of_ipu(2), 8..12);
        for tile in 0..c.tiles {
            assert_eq!(c.chip_of_tile(tile), c.ipu_of(tile));
            assert!(c.tiles_of_ipu(c.chip_of_tile(tile)).contains(&tile));
        }
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let c = IpuConfig::mk2();
        let s = c.cycles_to_seconds(1_325_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
