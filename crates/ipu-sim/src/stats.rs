//! Cycle accounting: what the modeled device spent its time on.
//!
//! Every count here is a function of the *modeled device* alone: host
//! thread count (`IpuConfig::host_threads` / `SIM_THREADS`) never
//! changes a single field. Per-slot loads are order-independent sums,
//! superstep cost is a max-reduction over them, and fault injection
//! runs serially after workers join — so a multi-threaded run's stats
//! are bit-identical to a sequential run's.

use serde::{Deserialize, Serialize};

/// Per-compute-set accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Compute-set name.
    pub name: String,
    /// Times this set executed (supersteps).
    pub executions: u64,
    /// Total compute cycles charged (max-over-tiles per execution,
    /// summed).
    pub compute_cycles: u64,
}

/// Counts of injected faults, by class (see [`crate::FaultPlan`]).
///
/// All zeros unless a fault plan is installed on the engine. Restoring a
/// snapshot rewinds these together with the rest of the stats: they
/// describe the *current* timeline, not the union of all attempts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// SRAM bit flips injected into mapped tensors.
    pub bit_flips: u64,
    /// Elements corrupted in transit during exchange phases.
    pub exchange_corruptions: u64,
    /// Supersteps stretched by a straggler tile.
    pub stragglers: u64,
    /// Extra compute cycles charged to straggler supersteps.
    pub straggler_cycles: u64,
    /// `RepeatWhileTrue` loops forced into divergence.
    pub forced_divergences: u64,
}

impl FaultStats {
    /// Total discrete fault events (straggler cycles are a magnitude, not
    /// an event count, so they are excluded).
    pub fn total_events(&self) -> u64 {
        self.bit_flips + self.exchange_corruptions + self.stragglers + self.forced_divergences
    }
}

/// Accumulated device-time model for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Cycles spent in compute phases (per superstep: max over tiles of
    /// the 6-thread barrel cost).
    pub compute_cycles: u64,
    /// Cycles spent in chip-wide synchronizations.
    pub sync_cycles: u64,
    /// Cycles spent in exchange phases (copies/broadcasts).
    pub exchange_cycles: u64,
    /// Cycles spent evaluating data-dependent control flow.
    pub control_cycles: u64,
    /// Number of compute supersteps executed.
    pub supersteps: u64,
    /// Number of exchange phases executed.
    pub exchanges: u64,
    /// Bytes moved through the exchange fabric (sum over tiles of bytes
    /// sent).
    pub exchange_bytes: u64,
    /// Bytes moved between host and device (not charged to device time).
    pub host_bytes: u64,
    /// Per-compute-set breakdown, in declaration order.
    pub per_compute_set: Vec<StepBreakdown>,
    /// Injected-fault accounting (all zero without a fault plan).
    pub faults: FaultStats,
}

impl CycleStats {
    /// Total modeled device cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.sync_cycles + self.exchange_cycles + self.control_cycles
    }

    /// Resets all counters (per-set names are kept).
    pub fn reset(&mut self) {
        let names: Vec<String> = self
            .per_compute_set
            .iter()
            .map(|s| s.name.clone())
            .collect();
        *self = CycleStats::default();
        self.per_compute_set = names
            .into_iter()
            .map(|name| StepBreakdown {
                name,
                ..Default::default()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_phases() {
        let s = CycleStats {
            compute_cycles: 10,
            sync_cycles: 5,
            exchange_cycles: 3,
            control_cycles: 2,
            ..Default::default()
        };
        assert_eq!(s.total_cycles(), 20);
    }

    #[test]
    fn reset_keeps_breakdown_names() {
        let mut s = CycleStats {
            compute_cycles: 10,
            per_compute_set: vec![StepBreakdown {
                name: "step6".into(),
                executions: 4,
                compute_cycles: 100,
            }],
            ..Default::default()
        };
        s.reset();
        assert_eq!(s.compute_cycles, 0);
        assert_eq!(s.per_compute_set.len(), 1);
        assert_eq!(s.per_compute_set[0].name, "step6");
        assert_eq!(s.per_compute_set[0].executions, 0);
    }
}
