//! Property tests: the poplib reduction builders must agree with
//! reference reductions for arbitrary data, shapes, and distributions.

use ipu_sim::poplib::{reduce_columns_mirrored, reduce_to_scalar, ReduceOp};
use ipu_sim::{DType, Graph, IpuConfig};
use proptest::prelude::*;

fn ops() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Min),
        Just(ReduceOp::Max),
        Just(ReduceOp::Sum)
    ]
}

fn apply(op: ReduceOp, a: f64, b: f64) -> f64 {
    match op {
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
        ReduceOp::Sum => a + b,
    }
}

fn identity(op: ReduceOp) -> f64 {
    match op {
        ReduceOp::Min => f64::INFINITY,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Sum => 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalar_reduce_matches_reference(
        data in proptest::collection::vec(-1000i32..1000, 1..200),
        tiles in 2usize..12,
        op in ops(),
        chunk in 1usize..17,
    ) {
        let mut g = Graph::new(IpuConfig::tiny(tiles));
        let t = g.add_tensor("t", DType::I32, data.len());
        g.map_chunks_round_robin(t, chunk, 0, tiles).unwrap();
        let (out, prog) = reduce_to_scalar(&mut g, "r", t, op, tiles - 1).unwrap();
        let mut e = g.compile(prog).unwrap();
        e.write_i32(t, &data).unwrap();
        e.run().unwrap();
        let got = e.read_i32(out)[0] as f64;
        let expect = data
            .iter()
            .map(|&x| x as f64)
            .fold(identity(op), |a, b| apply(op, a, b));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn column_reduce_matches_reference(
        rows in 1usize..12,
        cols in 1usize..12,
        tiles in 2usize..8,
        op in ops(),
        seed in 0u64..10_000,
    ) {
        let mut g = Graph::new(IpuConfig::tiny(tiles));
        let m = g.add_tensor("m", DType::F32, rows * cols);
        // Row-aligned blocks over the worker tiles.
        let rows_per = rows.div_ceil(tiles - 1).max(1);
        let mut r = 0;
        let mut tile = 0;
        while r < rows {
            let hi = (r + rows_per).min(rows);
            g.map_slice(m.slice(r * cols..hi * cols), tile).unwrap();
            r = hi;
            tile += 1;
        }
        let (mirror, prog) =
            reduce_columns_mirrored(&mut g, "c", m, rows, cols, op).unwrap();
        let mut e = g.compile(prog).unwrap();
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2001) as f32 - 1000.0) / 8.0
            })
            .collect();
        e.write_f32(m, &data).unwrap();
        e.run().unwrap();
        let got = e.read_f32(mirror);
        let owners = tile;
        for c in 0..cols {
            let expect = (0..rows)
                .map(|r| data[r * cols + c] as f64)
                .fold(identity(op), |a, b| apply(op, a, b)) as f32;
            for owner in 0..owners {
                let v = got[owner * cols + c];
                // Sum order differs between reference and tree; allow
                // f32 round-off. Min/max are exact.
                prop_assert!(
                    (v - expect).abs() <= 1e-3 * expect.abs().max(1.0),
                    "col {c} owner {owner}: {v} vs {expect}"
                );
            }
        }
    }
}
