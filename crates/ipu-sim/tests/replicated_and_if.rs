//! Integration tests for replicated tensors and device-predicated
//! branching — the features HunIPU's driver program leans on.

use ipu_sim::{cost, Access, DType, Graph, GraphError, IpuConfig, Program};

#[test]
fn replicated_tensor_readable_from_every_tile() {
    let mut g = Graph::new(IpuConfig::tiny(4));
    let src = g.add_tensor("src", DType::I32, 3);
    g.map_to_tile(src, 2).unwrap();
    let mirror = g.add_replicated("mirror", DType::I32, 3);
    let sums = g.add_tensor("sums", DType::I32, 4);
    g.map_evenly(sums).unwrap();

    let cs = g.add_compute_set("sum");
    for tile in 0..4 {
        let v = g
            .add_vertex(cs, tile, "sum", |ctx| {
                let m = ctx.i32(0);
                ctx.i32_mut(1)[0] = m.iter().sum();
                cost::i32_scan(m.len())
            })
            .unwrap();
        g.connect(v, mirror.whole(), Access::Read).unwrap();
        g.connect(v, sums.element(tile), Access::Write).unwrap();
    }
    let prog = Program::seq(vec![
        Program::broadcast(src.whole(), mirror.whole()),
        Program::execute(cs),
    ]);
    let mut e = g.compile(prog).unwrap();
    e.write_i32(src, &[5, 6, 7]).unwrap();
    e.run().unwrap();
    assert_eq!(e.read_i32(sums), vec![18; 4]);
}

#[test]
fn vertex_write_to_replica_rejected() {
    let mut g = Graph::new(IpuConfig::tiny(2));
    let mirror = g.add_replicated("mirror", DType::I32, 2);
    let cs = g.add_compute_set("bad");
    let v = g.add_vertex(cs, 0, "bad", |_| 1).unwrap();
    g.connect(v, mirror.whole(), Access::Write).unwrap();
    let err = g.compile(Program::execute(cs)).unwrap_err();
    assert!(matches!(err, GraphError::ComputeSetRace { .. }));
}

#[test]
fn plain_copy_into_replica_rejected() {
    let mut g = Graph::new(IpuConfig::tiny(2));
    let src = g.add_tensor("src", DType::I32, 2);
    g.map_to_tile(src, 0).unwrap();
    let mirror = g.add_replicated("mirror", DType::I32, 2);
    let err = g
        .compile(Program::copy(src.whole(), mirror.whole()))
        .unwrap_err();
    assert!(matches!(err, GraphError::BadSlice { .. }));
}

#[test]
fn partial_broadcast_into_replica_rejected() {
    let mut g = Graph::new(IpuConfig::tiny(2));
    let src = g.add_tensor("src", DType::I32, 1);
    g.map_to_tile(src, 0).unwrap();
    let mirror = g.add_replicated("mirror", DType::I32, 2);
    let err = g
        .compile(Program::broadcast(src.whole(), mirror.slice(0..1)))
        .unwrap_err();
    assert!(matches!(err, GraphError::BadSlice { .. }));
}

#[test]
fn replica_memory_is_charged_on_every_tile() {
    // Budget check must fail even though no single mapping overflows:
    // each of the 2 tiles pays for the whole replica.
    let mut g = Graph::new(IpuConfig::tiny(2));
    let big = g.add_replicated("big", DType::F32, 200_000); // 800 KB > 624 KiB
    let _ = big;
    let err = g.compile(Program::seq(vec![])).unwrap_err();
    assert!(matches!(err, GraphError::TileMemoryExceeded { .. }));
}

#[test]
fn broadcast_to_replica_charges_multicast_not_linear_fanout() {
    // The exchange charge must not scale with tile count on the sender
    // side: sending 1 KiB to 64 tiles costs ~1 KiB of sender time, not
    // 64 KiB (the fabric multicasts).
    let cycles_for = |tiles: usize| {
        let mut g = Graph::new(IpuConfig::tiny(tiles));
        let src = g.add_tensor("src", DType::F32, 256);
        g.map_to_tile(src, 0).unwrap();
        let mirror = g.add_replicated("m", DType::F32, 256);
        let mut e = g
            .compile(Program::broadcast(src.whole(), mirror.whole()))
            .unwrap();
        e.run().unwrap();
        e.stats().exchange_cycles
    };
    assert_eq!(cycles_for(2), cycles_for(64));
}

#[test]
fn if_takes_then_branch_on_nonzero() {
    let mut g = Graph::new(IpuConfig::tiny(1));
    let p = g.add_tensor("p", DType::I32, 1);
    let out = g.add_tensor("out", DType::I32, 1);
    g.map_to_tile(p, 0).unwrap();
    g.map_to_tile(out, 0).unwrap();
    let cs_then = g.add_compute_set("then");
    let cs_else = g.add_compute_set("else");
    let v = g
        .add_vertex(cs_then, 0, "t", |ctx| {
            ctx.i32_mut(0)[0] = 1;
            1
        })
        .unwrap();
    g.connect(v, out.whole(), Access::Write).unwrap();
    let v = g
        .add_vertex(cs_else, 0, "e", |ctx| {
            ctx.i32_mut(0)[0] = 2;
            1
        })
        .unwrap();
    g.connect(v, out.whole(), Access::Write).unwrap();
    let prog = Program::if_else(p, Program::execute(cs_then), Program::execute(cs_else));
    let mut e = g.compile(prog).unwrap();
    e.write_i32(p, &[1]).unwrap();
    e.run().unwrap();
    assert_eq!(e.read_i32(out), vec![1]);
}

#[test]
fn if_takes_else_branch_on_zero() {
    let mut g = Graph::new(IpuConfig::tiny(1));
    let p = g.add_tensor("p", DType::I32, 1);
    let out = g.add_tensor("out", DType::I32, 1);
    g.map_to_tile(p, 0).unwrap();
    g.map_to_tile(out, 0).unwrap();
    let cs_else = g.add_compute_set("else");
    let v = g
        .add_vertex(cs_else, 0, "e", |ctx| {
            ctx.i32_mut(0)[0] = 2;
            1
        })
        .unwrap();
    g.connect(v, out.whole(), Access::Write).unwrap();
    let prog = Program::if_else(p, Program::seq(vec![]), Program::execute(cs_else));
    let mut e = g.compile(prog).unwrap();
    e.run().unwrap(); // predicate is zero-initialized
    assert_eq!(e.read_i32(out), vec![2]);
}

#[test]
fn if_predicate_must_be_scalar_i32() {
    let mut g = Graph::new(IpuConfig::tiny(1));
    let p = g.add_tensor("p", DType::I32, 2);
    g.map_to_tile(p, 0).unwrap();
    let err = g
        .compile(Program::if_true(p, Program::seq(vec![])))
        .unwrap_err();
    assert!(matches!(err, GraphError::Invalid { .. }));
}

#[test]
fn exchange_bundles_pairs_into_one_phase() {
    let mut g = Graph::new(IpuConfig::tiny(4));
    let a = g.add_tensor("a", DType::I32, 4);
    let b = g.add_tensor("b", DType::I32, 4);
    g.map_evenly(a).unwrap();
    g.map_to_tile(b, 0).unwrap();
    // Gather the 4 distributed elements of `a` into `b` on tile 0.
    let pairs = (0..4).map(|i| (a.element(i), b.element(i))).collect();
    let mut e = g.compile(Program::exchange(pairs)).unwrap();
    e.write_i32(a, &[9, 8, 7, 6]).unwrap();
    e.run().unwrap();
    assert_eq!(e.read_i32(b), vec![9, 8, 7, 6]);
    assert_eq!(e.stats().exchanges, 1);
}

#[test]
fn exchange_with_overlapping_destinations_rejected() {
    let mut g = Graph::new(IpuConfig::tiny(2));
    let a = g.add_tensor("a", DType::I32, 4);
    let b = g.add_tensor("b", DType::I32, 4);
    g.map_to_tile(a, 0).unwrap();
    g.map_to_tile(b, 1).unwrap();
    let err = g
        .compile(Program::exchange(vec![
            (a.slice(0..2), b.slice(0..2)),
            (a.slice(2..4), b.slice(1..3)),
        ]))
        .unwrap_err();
    assert!(matches!(err, GraphError::BadSlice { .. }));
}
