//! Multi-IPU systems: one exchange address space, slower chip-crossing
//! links (§III: "On a multi-IPU architecture, the exchange fabric
//! extends to all tiles on all of the IPUs").

use ipu_sim::profile::BROADCAST_TILE;
use ipu_sim::{DType, Graph, GraphError, IpuConfig, ProfileConfig, Program};

fn copy_cycles(tiles: usize, config: IpuConfig, src_tile: usize, dst_tile: usize) -> u64 {
    assert!(src_tile < tiles && dst_tile < tiles);
    let mut g = Graph::new(config);
    let a = g.add_tensor("a", DType::F32, 1024);
    let b = g.add_tensor("b", DType::F32, 1024);
    g.map_to_tile(a, src_tile).unwrap();
    g.map_to_tile(b, dst_tile).unwrap();
    let mut e = g.compile(Program::copy(a.whole(), b.whole())).unwrap();
    e.run().unwrap();
    e.stats().exchange_cycles
}

#[test]
fn cross_chip_copies_cost_much_more() {
    // 2 chips x 4 tiles. Same-chip copy: tiles 0 -> 1; cross-chip: 0 -> 4.
    let cfg = IpuConfig::tiny_multi(2, 4);
    let on_chip = copy_cycles(8, cfg.clone(), 0, 1);
    let cross = copy_cycles(8, cfg, 0, 4);
    // 4 B/cycle vs 0.16 B/cycle: ~25x on the transfer term.
    assert!(
        cross > 10 * on_chip,
        "cross-chip ({cross}) must dwarf on-chip ({on_chip})"
    );
}

#[test]
fn chip_of_tile_mapping() {
    let cfg = IpuConfig::mk2_multi(4);
    assert_eq!(cfg.tiles, 4 * 1472);
    assert_eq!(cfg.ipu_of(0), 0);
    assert_eq!(cfg.ipu_of(1471), 0);
    assert_eq!(cfg.ipu_of(1472), 1);
    assert_eq!(cfg.ipu_of(4 * 1472 - 1), 3);
}

#[test]
fn single_chip_costs_are_unchanged_by_the_multi_ipu_model() {
    let single = copy_cycles(8, IpuConfig::tiny(8), 0, 5);
    let multi_same_chip = copy_cycles(8, IpuConfig::tiny_multi(1, 8), 0, 5);
    assert_eq!(single, multi_same_chip);
}

#[test]
fn broadcast_to_replica_pays_links_once_per_remote_chip() {
    let run = |cfg: IpuConfig| {
        let tiles = cfg.tiles;
        let mut g = Graph::new(cfg);
        let src = g.add_tensor("s", DType::F32, 256);
        g.map_to_tile(src, 0).unwrap();
        let m = g.add_replicated("m", DType::F32, 256);
        let mut e = g
            .compile(Program::broadcast(src.whole(), m.whole()))
            .unwrap();
        e.run().unwrap();
        let _ = tiles;
        e.stats().exchange_cycles
    };
    let one_chip = run(IpuConfig::tiny_multi(1, 4));
    let two_chips = run(IpuConfig::tiny_multi(2, 4));
    let four_chips = run(IpuConfig::tiny_multi(4, 4));
    assert!(two_chips > one_chip);
    assert!(four_chips > two_chips);
    // Cost grows with the number of *chips*, not the number of tiles:
    // eight tiles on one chip would cost the same as four.
    let one_chip_8 = run(IpuConfig::tiny_multi(1, 8));
    assert_eq!(one_chip, one_chip_8);
}

#[test]
fn multi_chip_broadcast_heatmap_matches_exchange_bytes() {
    // Regression pin: the per-pair exchange accounting
    // (`exchange_pair_bytes`, surfaced as the profiler heatmap) must
    // total exactly what `CycleStats::exchange_bytes` charged, on a
    // program mixing a replicated broadcast with a cross-chip copy on a
    // multi-chip device. A replicated refresh is one heatmap cell
    // `(src, BROADCAST_TILE)` counted once — not once per replica —
    // which is the invariant the chip-aware program builders rely on
    // when they move broadcast sources off the collector.
    let cfg = IpuConfig::tiny_multi(4, 4);
    let mut g = Graph::new(cfg);
    let src = g.add_tensor("s", DType::F32, 64);
    g.map_to_tile(src, 5).unwrap();
    let m = g.add_replicated("m", DType::F32, 64);
    let d = g.add_tensor("d", DType::F32, 64);
    g.map_to_tile(d, 9).unwrap(); // chip 2: the copy crosses a link
    let prog = Program::seq(vec![
        Program::broadcast(src.whole(), m.whole()),
        Program::copy(src.whole(), d.whole()),
    ]);
    let mut e = g.compile(prog).unwrap();
    e.enable_profiling(ProfileConfig::default());
    e.run().unwrap();

    let p = e.profile_report().unwrap();
    assert_eq!(p.exchange_bytes, e.stats().exchange_bytes);
    let heatmap_total: u64 = p.exchange_heatmap.iter().map(|c| c.bytes).sum();
    assert_eq!(heatmap_total, e.stats().exchange_bytes);
    // 64 f32 broadcast (counted once) + 64 f32 cross-chip copy.
    assert_eq!(e.stats().exchange_bytes, 256 + 256);
    let bcast = p
        .exchange_heatmap
        .iter()
        .find(|c| c.dst_tile == BROADCAST_TILE)
        .expect("replicated refresh must appear as a broadcast cell");
    assert_eq!((bcast.src_tile, bcast.bytes), (5, 256));
}

#[test]
fn cross_chip_replica_traffic_is_charged_per_receiving_chip() {
    // The engine attributes a replicated broadcast's link traffic as
    // `bytes × (chips − 1)` on the *source* tile — once per receiving
    // chip, not per receiving tile. Doubling tiles-per-chip must leave
    // the cost unchanged; doubling chips from the same source must not.
    let run = |chips: usize, tiles_per_chip: usize| {
        let mut g = Graph::new(IpuConfig::tiny_multi(chips, tiles_per_chip));
        let src = g.add_tensor("s", DType::F32, 128);
        g.map_to_tile(src, 0).unwrap();
        let m = g.add_replicated("m", DType::F32, 128);
        let mut e = g
            .compile(Program::broadcast(src.whole(), m.whole()))
            .unwrap();
        e.run().unwrap();
        e.stats().exchange_cycles
    };
    assert_eq!(run(2, 4), run(2, 8));
    assert_eq!(run(4, 4), run(4, 8));
    assert!(run(4, 4) > run(2, 4));
}

#[test]
fn inconsistent_topology_is_rejected_at_compile() {
    // tiles ≠ ipus × tiles_per_ipu would mis-attribute cross-chip
    // traffic; `Graph::compile` must refuse before any program runs.
    let cfg = IpuConfig {
        ipus: 3,
        tiles_per_ipu: 4,
        ..IpuConfig::tiny(8)
    };
    let mut g = Graph::new(cfg);
    let t = g.add_tensor("t", DType::F32, 4);
    g.map_to_tile(t, 0).unwrap();
    let err = g.compile(Program::seq(vec![])).unwrap_err();
    assert!(
        matches!(err, GraphError::Invalid { ref detail } if detail.contains("tiles")),
        "expected topology validation error, got: {err}"
    );
}

// (HunIPU-on-multi-chip correctness lives in crates/hunipu/tests/ —
// ipu-sim cannot dev-depend on hunipu without a cycle.)
