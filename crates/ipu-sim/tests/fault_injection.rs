//! Integration tests for the deterministic fault-injection layer:
//! seeded reproducibility, targeting, accounting, checkpoint/restore, and
//! zero-overhead inertness.

use ipu_sim::{cost, Access, DType, FaultPlan, Graph, GraphError, IpuConfig, Program};

/// A two-tensor graph that repeatedly increments `x` and copies it to `y`,
/// driving both compute supersteps and exchange phases. Returns the engine
/// plus the `x` tensor handle for peeking.
fn pump_graph(iters: u64) -> (ipu_sim::Engine, ipu_sim::Tensor) {
    let mut g = Graph::new(IpuConfig::tiny(2));
    let x = g.add_tensor("x_state", DType::F32, 8);
    let y = g.add_tensor("y_mirror", DType::F32, 8);
    g.map_to_tile(x, 0).unwrap();
    g.map_to_tile(y, 1).unwrap();
    let cs = g.add_compute_set("pump");
    let v = g
        .add_vertex(cs, 0, "inc", |ctx| {
            let mut x = ctx.f32_mut(0);
            for e in x.iter_mut() {
                *e += 1.0;
            }
            cost::f32_update(x.len())
        })
        .unwrap();
    g.connect(v, x.whole(), Access::ReadWrite).unwrap();
    let body = Program::seq(vec![
        Program::execute(cs),
        Program::copy(x.whole(), y.whole()),
    ]);
    (g.compile(Program::repeat(iters, body)).unwrap(), x)
}

#[test]
fn same_seed_injects_identical_faults() {
    let run = |seed: u64| {
        let (mut e, x) = pump_graph(64);
        e.set_fault_plan(
            FaultPlan::new(seed)
                .with_bit_flips(0.25)
                .with_exchange_corruption(0.25),
        );
        e.run().unwrap();
        (e.stats().clone(), e.peek_f32(x.whole()))
    };
    let (s1, x1) = run(11);
    let (s2, x2) = run(11);
    let (s3, x3) = run(12);
    assert_eq!(s1, s2, "same seed must reproduce identical stats");
    assert!(x1.iter().zip(&x2).all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(s1.faults.bit_flips > 0, "rate 0.25 over 64 steps must fire");
    assert!(s1.faults.exchange_corruptions > 0);
    // A different seed lands faults elsewhere (counts or data differ).
    assert!(s1 != s3 || x1.iter().zip(&x3).any(|(a, b)| a.to_bits() != b.to_bits()));
}

#[test]
fn flip_target_filter_restricts_eligible_tensors() {
    // Target a name that matches nothing: flips can never fire even at
    // rate 1, because the eligible set is empty.
    let (mut e, _) = pump_graph(16);
    e.set_fault_plan(FaultPlan::new(3).with_bit_flips(1.0).targeting("no_such"));
    e.run().unwrap();
    assert_eq!(e.stats().faults.bit_flips, 0);

    // Target the mirror tensor only: the compute tensor stays clean, so
    // its value is exactly the iteration count.
    let (mut e, x) = pump_graph(16);
    e.set_fault_plan(FaultPlan::new(3).with_bit_flips(1.0).targeting("y_mirror"));
    e.run().unwrap();
    assert_eq!(e.stats().faults.bit_flips, 16);
    assert_eq!(e.peek_f32(x.whole()), vec![16.0; 8]);
}

#[test]
fn after_supersteps_delays_arming() {
    let (mut e, _) = pump_graph(16);
    e.set_fault_plan(FaultPlan::new(5).with_bit_flips(1.0).after_supersteps(10));
    e.run().unwrap();
    // 16 supersteps, armed once 10 have executed: steps 10..=16 flip.
    assert_eq!(e.stats().faults.bit_flips, 7);
}

#[test]
fn stragglers_inflate_compute_cycles_and_are_accounted() {
    let clean = {
        let (mut e, _) = pump_graph(32);
        e.run().unwrap();
        e.stats().clone()
    };
    let (mut e, _) = pump_graph(32);
    e.set_fault_plan(FaultPlan::new(1).with_stragglers(1.0, 4.0));
    e.run().unwrap();
    let faulty = e.stats();
    assert_eq!(faulty.faults.stragglers, 32);
    assert!(faulty.faults.straggler_cycles > 0);
    assert_eq!(
        faulty.compute_cycles,
        clean.compute_cycles + faulty.faults.straggler_cycles,
        "straggler cycles must reconcile against the clean run"
    );
    // Factor 4 on every superstep: total compute is exactly quadrupled
    // (ceil is exact here because cycles are integral).
    assert_eq!(faulty.compute_cycles, 4 * clean.compute_cycles);
    // The per-set breakdown absorbs the inflation too.
    assert_eq!(
        faulty.per_compute_set[0].compute_cycles,
        4 * clean.per_compute_set[0].compute_cycles
    );
}

#[test]
fn exchange_corruption_hits_destination_data() {
    let (mut e, _) = pump_graph(64);
    e.set_fault_plan(FaultPlan::new(2).with_exchange_corruption(1.0));
    e.run().unwrap();
    assert_eq!(e.stats().faults.exchange_corruptions, 64);
}

#[test]
fn forced_divergence_fails_the_run_with_loop_name() {
    let mut g = Graph::new(IpuConfig::tiny(1));
    let flag = g.add_tensor("flag", DType::I32, 1);
    let count = g.add_tensor("count", DType::I32, 1);
    g.map_to_tile(flag, 0).unwrap();
    g.map_to_tile(count, 0).unwrap();
    let cs = g.add_compute_set("tick");
    let v = g
        .add_vertex(cs, 0, "tick", |ctx| {
            let mut c = ctx.i32_mut(1);
            c[0] += 1;
            let mut f = ctx.i32_mut(0);
            f[0] = i32::from(c[0] < 5);
            3
        })
        .unwrap();
    g.connect(v, flag.whole(), Access::ReadWrite).unwrap();
    g.connect(v, count.whole(), Access::ReadWrite).unwrap();
    let mut e = g
        .compile(Program::while_true(flag, Program::execute(cs)))
        .unwrap();
    e.set_fault_plan(FaultPlan::new(0).with_forced_divergence(1.0));
    e.write_i32(flag, &[1]).unwrap();
    let err = e.run().unwrap_err();
    match &err {
        GraphError::Divergence { context, .. } => assert_eq!(context, "tick"),
        other => panic!("expected Divergence, got {other:?}"),
    }
    assert_eq!(e.stats().faults.forced_divergences, 1);
}

#[test]
fn snapshot_restore_rewinds_memory_and_stats() {
    let (mut e, x) = pump_graph(8);
    e.run().unwrap();
    let checkpoint = e.snapshot();
    let stats_at_checkpoint = e.stats().clone();
    let x_at_checkpoint = e.peek_f32(x.whole());

    // Keep running with aggressive corruption.
    e.set_fault_plan(FaultPlan::new(7).with_bit_flips(1.0).targeting("x_state"));
    e.run().unwrap();
    assert!(e.stats().faults.bit_flips > 0);

    e.restore(&checkpoint);
    assert_eq!(e.stats(), &stats_at_checkpoint);
    let x_restored = e.peek_f32(x.whole());
    assert!(x_restored
        .iter()
        .zip(&x_at_checkpoint)
        .all(|(a, b)| a.to_bits() == b.to_bits()));

    // The fault stream advanced across the restore: the retry is not
    // doomed to replay the identical corruption pattern.
    let before_retry = e.peek_f32(x.whole());
    e.run().unwrap();
    let after_retry = e.peek_f32(x.whole());
    assert_ne!(before_retry, after_retry);
}

#[test]
fn inert_plan_changes_nothing() {
    let (mut clean, cx) = pump_graph(32);
    clean.run().unwrap();
    let (mut inert, ix) = pump_graph(32);
    inert.set_fault_plan(FaultPlan::new(99));
    inert.run().unwrap();
    assert_eq!(clean.stats(), inert.stats());
    assert_eq!(inert.stats().faults.total_events(), 0);
    assert_eq!(clean.peek_f32(cx.whole()), inert.peek_f32(ix.whole()));
}
