//! Batched multi-instance solving on the IPU model.
//!
//! The static-program constraint (C4) means a compiled solve program is a
//! function of the tensor shape only — so a batch of same-size instances
//! can share one compiled engine, paying the (expensive) program load
//! once instead of per solve. [`BatchHunIpu`] implements two strategies:
//!
//! - **Streaming** (the default): one engine per instance size, a
//!   pristine snapshot taken right after compile, and every instance run
//!   as restore → write inputs → run → read results. Because restoring
//!   the pristine snapshot makes the engine bit-identical to a freshly
//!   compiled one, every per-instance [`SolveReport`] — assignment,
//!   duals, cycle statistics — is *exactly* what the single-instance
//!   [`HunIpu`] would produce for that matrix, at any `SIM_THREADS`.
//! - **Packing** ([`BatchStrategy::Pack`], opt-in): fuses groups of `g`
//!   same-size instances into one `g·n × g·n` block-diagonal matrix with
//!   a prohibitive off-block penalty, spreading the group across more of
//!   the chip's 1472 tiles in a single run. Extraction is validated per
//!   instance (assignment must stay inside its block and the per-block
//!   dual certificate must verify); any instance the packed solve cannot
//!   certify falls back to a solo streamed solve, so packing can change
//!   throughput but never correctness. Packed per-instance *statistics*
//!   are amortized shares of the fused run.
//!
//! Fault handling: each instance is wrapped in the shared
//! verify-and-retry loop ([`lsap::solve_instance_verified`]), and every
//! engine launch draws its fault seed from the same epoch counter the
//! single-instance solver uses — so a batch under an armed
//! [`ipu_sim::FaultPlan`] reproduces the exact launch sequence of the
//! equivalent sequential solves.

use crate::solver::F32_VERIFY_EPS;
use crate::warm::WarmEngine;
use crate::HunIpu;
use lsap::{
    solve_instance_verified, BatchLsapSolver, BatchReport, BatchStats, CostMatrix, LsapError,
    SolveReport,
};
use std::collections::HashMap;
use std::time::Instant;

/// How [`BatchHunIpu`] maps instances onto the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Stream every instance through one compiled engine per shape
    /// (restore a pristine snapshot, rebind buffers, run). Per-instance
    /// results match the single-instance solver bit-for-bit.
    Stream,
    /// Fuse up to `group` consecutive same-size instances into one
    /// block-diagonal solve packed across the tiles, with certificate
    /// extraction per instance and solo-streamed fallback on any
    /// instance the packed run cannot certify.
    Pack {
        /// Maximum instances fused per device solve (≥ 1).
        group: usize,
    },
}

/// Default per-instance attempt budget under fault injection.
const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Batched IPU solver: one compiled program per tensor shape, reused
/// across all instances of that shape (C4 turned from a constraint into
/// the serving strategy).
#[derive(Debug, Clone)]
pub struct BatchHunIpu {
    solver: HunIpu,
    strategy: BatchStrategy,
    max_attempts: u32,
    verify_eps: f64,
}

impl Default for BatchHunIpu {
    fn default() -> Self {
        Self::new()
    }
}

/// Cache key for compiled engines: the tensor shape plus the chip
/// topology and layout family the program was compiled against. A
/// `BatchHunIpu` is topology-fixed for its lifetime, but a program
/// compiled for a flat layout is not interchangeable with a chip-aware
/// one of the same `n` — keying on the topology keeps the cache honest
/// if cached engines are ever shared across differently-configured
/// solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EngineKey {
    n: usize,
    ipus: usize,
    tiles_per_ipu: usize,
    hierarchical: bool,
    /// `true` when the solver routes this shape out-of-core
    /// ([`crate::LayoutMode::Tiled`], or an Auto upgrade past the SRAM
    /// ceiling). The in-SRAM dense program and the streamed tiled
    /// program are different graphs with different cycle accounting, so
    /// a cache entry compiled for one must never serve the other.
    tiled: bool,
}

impl EngineKey {
    fn for_shape(solver: &HunIpu, n: usize) -> Self {
        Self {
            n,
            ipus: solver.config().ipus,
            tiles_per_ipu: solver.config().tiles_per_ipu,
            hierarchical: solver.hierarchical(),
            tiled: solver.takes_tiled_path(n),
        }
    }
}

impl BatchHunIpu {
    /// A streaming batch solver over the paper's Mk2 device.
    pub fn new() -> Self {
        Self::with_solver(HunIpu::new())
    }

    /// Wraps a configured single-instance solver (device config, column
    /// segmentation, ablations, fault plan all carry over).
    pub fn with_solver(solver: HunIpu) -> Self {
        Self {
            solver,
            strategy: BatchStrategy::Stream,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            verify_eps: F32_VERIFY_EPS,
        }
    }

    /// Selects the instance-to-device mapping strategy.
    pub fn with_strategy(mut self, strategy: BatchStrategy) -> Self {
        if let BatchStrategy::Pack { group } = strategy {
            assert!(group >= 1, "pack group must be >= 1");
        }
        self.strategy = strategy;
        self
    }

    /// Overrides the per-instance attempt budget (≥ 1); attempts beyond
    /// the first re-run the instance under a decorrelated fault seed.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "need at least one attempt");
        self.max_attempts = attempts;
        self
    }

    /// Overrides the certificate-verification tolerance (default
    /// [`F32_VERIFY_EPS`]).
    pub fn with_verify_eps(mut self, eps: f64) -> Self {
        self.verify_eps = eps;
        self
    }

    /// The wrapped single-instance solver.
    pub fn solver(&self) -> &HunIpu {
        &self.solver
    }

    /// Streams one instance through the cached warm engine for its
    /// shape, compiling (and charging `overhead`) on first use of the
    /// shape.
    fn stream_instance(
        solver: &HunIpu,
        cache: &mut HashMap<EngineKey, WarmEngine>,
        overhead: &mut u64,
        matrix: &CostMatrix,
        verify_eps: f64,
        max_attempts: u32,
    ) -> Result<(SolveReport, u64), LsapError> {
        let n = solver.validate_size(matrix)?;
        let cached = match cache.entry(EngineKey::for_shape(solver, n)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let warm = solver.warm(n)?;
                *overhead += warm.program_load_cycles();
                v.insert(warm)
            }
        };
        solve_instance_verified(matrix, verify_eps, max_attempts, |_k| {
            cached.solve(solver, matrix)
        })
    }

    fn solve_stream(&mut self, batch: &[CostMatrix]) -> Result<BatchReport, LsapError> {
        let start = Instant::now();
        let mut cache: HashMap<EngineKey, WarmEngine> = HashMap::new();
        let mut overhead = 0u64;
        let mut retries = 0u64;
        let mut reports = Vec::with_capacity(batch.len());
        for matrix in batch {
            let (report, r) = Self::stream_instance(
                &self.solver,
                &mut cache,
                &mut overhead,
                matrix,
                self.verify_eps,
                self.max_attempts,
            )?;
            retries += r;
            reports.push(report);
        }
        Ok(self.finish(batch, reports, overhead, retries, start))
    }

    fn solve_pack(&mut self, batch: &[CostMatrix], group: usize) -> Result<BatchReport, LsapError> {
        let start = Instant::now();
        let mut cache: HashMap<EngineKey, WarmEngine> = HashMap::new();
        let mut overhead = 0u64;
        let mut retries = 0u64;
        let mut reports: Vec<Option<SolveReport>> = vec![None; batch.len()];

        // Chunk consecutive same-size instances (packing across sizes
        // would need one compiled program per mixed shape — against the
        // point of reuse).
        let mut i = 0;
        while i < batch.len() {
            let n = self.solver.validate_size(&batch[i])?;
            let mut j = i + 1;
            while j < batch.len() && j - i < group && batch[j].is_square() && batch[j].n() == n {
                j += 1;
            }
            let chunk = &batch[i..j];
            let packed = if chunk.len() >= 2 {
                self.try_pack_chunk(&mut cache, &mut overhead, chunk, n)
            } else {
                None
            };
            match packed {
                Some(chunk_reports) => {
                    for (k, rep) in chunk_reports.into_iter().enumerate() {
                        match rep {
                            Some(r) => reports[i + k] = Some(r),
                            None => {
                                // Packed solve could not certify this
                                // instance: solo fallback, counted as a
                                // retry.
                                retries += 1;
                                let (r, extra) = Self::stream_instance(
                                    &self.solver,
                                    &mut cache,
                                    &mut overhead,
                                    &batch[i + k],
                                    self.verify_eps,
                                    self.max_attempts,
                                )?;
                                retries += extra;
                                reports[i + k] = Some(r);
                            }
                        }
                    }
                }
                None => {
                    // Chunk of one, or the packed shape failed to
                    // compile (e.g. per-tile memory): stream each.
                    for (k, m) in chunk.iter().enumerate() {
                        let (r, extra) = Self::stream_instance(
                            &self.solver,
                            &mut cache,
                            &mut overhead,
                            m,
                            self.verify_eps,
                            self.max_attempts,
                        )?;
                        retries += extra;
                        reports[i + k] = Some(r);
                    }
                }
            }
            i = j;
        }
        let reports: Vec<SolveReport> = reports.into_iter().map(Option::unwrap).collect();
        Ok(self.finish(batch, reports, overhead, retries, start))
    }

    /// Solves a chunk of `g ≥ 2` same-size instances as one fused
    /// block-diagonal run. Returns `None` if the fused shape cannot be
    /// compiled or the fused run itself fails (caller streams the chunk);
    /// otherwise per-instance slots are `None` exactly where extraction
    /// or certification failed (caller re-solves those solo).
    fn try_pack_chunk(
        &self,
        cache: &mut HashMap<EngineKey, WarmEngine>,
        overhead: &mut u64,
        chunk: &[CostMatrix],
        n: usize,
    ) -> Option<Vec<Option<SolveReport>>> {
        let g = chunk.len();
        let m = g * n;

        // Off-block penalty: any assignment using one off-block entry
        // costs at least `penalty + (m-1)·lo`, while staying block
        // diagonal costs at most `m·hi`; the margin factor absorbs the
        // device's f32 rounding. Certification below re-checks every
        // instance regardless.
        let (lo, hi) = chunk
            .iter()
            .map(|c| c.min_max())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), (l, h)| {
                (a.min(l), b.max(h))
            });
        let span = hi - lo;
        let penalty = lo + 4.0 * (m as f64 + 1.0) * (span + 1.0);

        let fused = CostMatrix::from_fn(m, m, |r, c| {
            if r / n == c / n {
                chunk[r / n].get(r % n, c % n)
            } else {
                penalty
            }
        })
        .ok()?;

        let cached = match cache.entry(EngineKey::for_shape(&self.solver, m)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let warm = self.solver.warm(m).ok()?;
                *overhead += warm.program_load_cycles();
                v.insert(warm)
            }
        };
        let fused_report = cached.solve(&self.solver, &fused).ok()?;

        let mut out = Vec::with_capacity(g);
        for (k, small) in chunk.iter().enumerate() {
            out.push(self.extract_packed(&fused_report, small, n, k, g));
        }
        Some(out)
    }

    /// Carves instance `k`'s report out of a fused block-diagonal solve;
    /// `None` if its rows were assigned outside their block or the
    /// extracted certificate fails verification.
    fn extract_packed(
        &self,
        fused: &SolveReport,
        small: &CostMatrix,
        n: usize,
        k: usize,
        g: usize,
    ) -> Option<SolveReport> {
        let base = k * n;
        let row_to_col: Vec<Option<usize>> = (0..n)
            .map(|r| {
                let c = fused.assignment.col_of(base + r)?;
                (c >= base && c < base + n).then_some(c - base)
            })
            .collect();
        if row_to_col.iter().any(Option::is_none) {
            return None;
        }
        let assignment = lsap::Assignment::from_row_to_col(row_to_col);
        let objective = assignment.cost(small).ok()?;
        let u = fused.certificate.u[base..base + n].to_vec();
        let v = fused.certificate.v[base..base + n].to_vec();
        let report = SolveReport {
            assignment,
            objective,
            certificate: lsap::DualCertificate::new(u, v),
            // Fused-run statistics cannot be attributed per instance;
            // report even shares (remainder to instance 0) so chunk
            // totals are preserved.
            stats: lsap::SolverStats {
                modeled_seconds: fused.stats.modeled_seconds.map(|s| s / g as f64),
                modeled_cycles: fused.stats.modeled_cycles.map(|c| share(c, g, k)),
                wall_seconds: fused.stats.wall_seconds / g as f64,
                augmentations: share(fused.stats.augmentations, g, k),
                dual_updates: share(fused.stats.dual_updates, g, k),
                device_steps: share(fused.stats.device_steps, g, k),
                profile_events: 0,
                ..Default::default()
            },
        };
        report.verify(small, self.verify_eps).ok()?;
        Some(report)
    }

    /// Assembles batch-level accounting from finished per-instance
    /// reports.
    fn finish(
        &self,
        batch: &[CostMatrix],
        reports: Vec<SolveReport>,
        overhead: u64,
        retries: u64,
        start: Instant,
    ) -> BatchReport {
        debug_assert_eq!(reports.len(), batch.len());
        let solve_cycles: Option<u64> = reports
            .iter()
            .map(|r| r.stats.modeled_cycles)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().sum());
        let modeled_cycles = solve_cycles.map(|c| c + overhead);
        let modeled_seconds = modeled_cycles.map(|c| self.solver.config().cycles_to_seconds(c));
        BatchReport {
            reports,
            stats: BatchStats {
                instances: batch.len(),
                wall_seconds: start.elapsed().as_secs_f64(),
                modeled_cycles,
                overhead_cycles: Some(overhead),
                modeled_seconds,
                retries,
            },
        }
    }
}

/// `total / g` with the remainder folded into share 0, so the `g` shares
/// sum back to `total`.
fn share(total: u64, g: usize, k: usize) -> u64 {
    let g = g as u64;
    total / g + if k == 0 { total % g } else { 0 }
}

impl BatchLsapSolver for BatchHunIpu {
    fn name(&self) -> &'static str {
        "hunipu-batch"
    }

    fn solve_batch(&mut self, batch: &[CostMatrix]) -> Result<BatchReport, LsapError> {
        match self.strategy {
            BatchStrategy::Stream => self.solve_stream(batch),
            BatchStrategy::Pack { group } => self.solve_pack(batch, group),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_sim::IpuConfig;
    use lsap::LsapSolver;

    fn tiny_solver() -> HunIpu {
        HunIpu::with_config(IpuConfig::tiny(8))
    }

    fn instances(sizes: &[usize], seed: u64) -> Vec<CostMatrix> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| datasets::gaussian_cost_matrix(n, 100, seed + i as u64))
            .collect()
    }

    #[test]
    fn stream_matches_single_instance_solver_exactly() {
        let batch = instances(&[6, 6, 6, 6], 7);
        let mut batched = BatchHunIpu::with_solver(tiny_solver());
        let rep = batched.solve_batch(&batch).unwrap();
        rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();

        let mut solo = tiny_solver();
        for (m, r) in batch.iter().zip(&rep.reports) {
            let s = solo.solve(m).unwrap();
            assert_eq!(s.assignment, r.assignment);
            assert_eq!(s.objective.to_bits(), r.objective.to_bits());
            assert_eq!(s.certificate, r.certificate);
            assert_eq!(s.stats.modeled_cycles, r.stats.modeled_cycles);
            assert_eq!(s.stats.augmentations, r.stats.augmentations);
            assert_eq!(s.stats.dual_updates, r.stats.dual_updates);
            assert_eq!(s.stats.device_steps, r.stats.device_steps);
        }
    }

    #[test]
    fn stream_amortizes_program_load() {
        let batch = instances(&[6; 8], 3);
        let mut batched = BatchHunIpu::with_solver(tiny_solver());
        let rep = batched.solve_batch(&batch).unwrap();
        let overhead = rep.stats.overhead_cycles.unwrap();
        assert!(overhead > 0, "one compile must be charged");

        // The sequential baseline pays the load per solve; the batch
        // pays it once. Amortized batch cost must be strictly below.
        let solve_cycles: u64 = rep
            .reports
            .iter()
            .map(|r| r.stats.modeled_cycles.unwrap())
            .sum();
        let batch_total = solve_cycles + overhead;
        let sequential_total = solve_cycles + overhead * batch.len() as u64;
        assert!(batch_total < sequential_total);
        assert_eq!(rep.stats.modeled_cycles, Some(batch_total));
    }

    #[test]
    fn stream_handles_mixed_shapes_with_one_compile_per_shape() {
        let batch = instances(&[4, 6, 4, 6, 4], 11);
        let mut batched = BatchHunIpu::with_solver(tiny_solver());
        let rep = batched.solve_batch(&batch).unwrap();
        rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();
        // Two shapes → exactly two program loads.
        let mut probe = tiny_solver();
        let load4 = probe.compile_for(4).unwrap().0.program_load_cycles();
        let load6 = probe.compile_for(6).unwrap().0.program_load_cycles();
        let _ = &mut probe;
        assert_eq!(rep.stats.overhead_cycles, Some(load4 + load6));
    }

    #[test]
    fn pack_produces_certified_optima() {
        let batch = instances(&[5; 6], 19);
        let mut packed =
            BatchHunIpu::with_solver(tiny_solver()).with_strategy(BatchStrategy::Pack { group: 3 });
        let rep = packed.solve_batch(&batch).unwrap();
        rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();

        let mut truth = cpu_hungarian::JonkerVolgenant::new();
        for (m, r) in batch.iter().zip(&rep.reports) {
            let t = truth.solve(m).unwrap();
            assert!((t.objective - r.objective).abs() < 1e-6 * (1.0 + t.objective.abs()));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let rep = BatchHunIpu::with_solver(tiny_solver())
            .solve_batch(&[])
            .unwrap();
        assert_eq!(rep.stats.instances, 0);
        assert_eq!(rep.stats.overhead_cycles, Some(0));
    }
}
