//! [`StreamingHunIpu`]: the adapter that plugs HunIPU into the generic
//! incremental re-solve machinery ([`lsap::IncrementalSolver`]).
//!
//! [`crate::HunIpu`] itself stays a cheap, clonable *configuration* (the
//! batch and serving layers rely on that); the state needed for
//! streaming — a warm compiled engine plus its lazily compiled seeded
//! companion — lives here. Cold solves through the adapter are routed
//! through the warm engine's pristine snapshot, so they are bit-identical
//! to a fresh [`crate::HunIpu::solve`] (assignment, duals, and cycle
//! statistics), and seeded solves run the Step-1-free re-solve program
//! with host-repaired duals.

use crate::{HunIpu, WarmEngine, F32_VERIFY_EPS};
use lsap::{CostMatrix, LsapError, LsapSolver, SeedSolve, SolveReport, WarmStart};

/// A HunIPU solver with one warm engine held for streaming, implementing
/// [`SeedSolve`] so it can drive [`lsap::IncrementalSolver`].
///
/// The engine is compiled for the first shape solved and recompiled only
/// when the shape changes (same policy as the serving layer's pool, pool
/// size 1). Both the cold and the seeded program restore a pristine
/// snapshot before every run, so streaming is free of cross-instance
/// state leaks.
///
/// # Example
///
/// ```
/// use hunipu::StreamingHunIpu;
/// use hunipu::HunIpu;
/// use ipu_sim::IpuConfig;
/// use lsap::{DeltaUpdate, IncrementalSolver};
///
/// let m = datasets::uniform_cost_matrix(8, 10, 1);
/// let solver = StreamingHunIpu::new(HunIpu::with_config(IpuConfig::tiny(8)));
/// let mut stream = IncrementalSolver::new(solver, m);
/// // First tick solves cold (no warm state yet) …
/// let first = stream.solve_next(&DeltaUpdate::new()).unwrap();
/// assert!(!first.stats.seeded);
/// // … subsequent ticks reuse the previous duals, certificate-gated.
/// let mut delta = DeltaUpdate::new();
/// delta.set_entry(2, 3, 1.0);
/// let report = stream.solve_next(&delta).unwrap();
/// assert!(report.stats.seeded || report.stats.resolve_fallbacks > 0);
/// ```
pub struct StreamingHunIpu {
    solver: HunIpu,
    warm: Option<WarmEngine>,
}

impl StreamingHunIpu {
    /// Wraps a configured [`HunIpu`]; no engine is compiled until the
    /// first solve.
    pub fn new(solver: HunIpu) -> Self {
        Self { solver, warm: None }
    }

    /// The underlying solver configuration.
    pub fn solver(&self) -> &HunIpu {
        &self.solver
    }

    /// Mutable access to the underlying solver — e.g. to arm or disarm
    /// an [`ipu_sim::FaultPlan`] mid-stream. Compiled engines pick the
    /// change up on their next solve; no recompilation happens.
    pub fn solver_mut(&mut self) -> &mut HunIpu {
        &mut self.solver
    }

    /// The warm engine currently held, if any (for cycle-level
    /// inspection between solves).
    pub fn warm_engine(&self) -> Option<&WarmEngine> {
        self.warm.as_ref()
    }

    /// Compiles (or recompiles, on a shape change) the warm engine for
    /// instance size `n`.
    fn ensure_warm(&mut self, n: usize) -> Result<(), LsapError> {
        if self.warm.as_ref().map(WarmEngine::n) != Some(n) {
            self.warm = Some(self.solver.warm(n)?);
        }
        Ok(())
    }
}

impl LsapSolver for StreamingHunIpu {
    fn name(&self) -> &'static str {
        "hunipu"
    }

    fn solve(&mut self, matrix: &CostMatrix) -> Result<SolveReport, LsapError> {
        let n = self.solver.validate_size(matrix)?;
        self.ensure_warm(n)?;
        let warm = self.warm.as_mut().expect("ensured above");
        warm.solve(&self.solver, matrix)
    }
}

impl SeedSolve for StreamingHunIpu {
    fn solve_seeded(
        &mut self,
        matrix: &CostMatrix,
        warm_start: &WarmStart,
    ) -> Result<SolveReport, LsapError> {
        let n = self.solver.validate_size(matrix)?;
        self.ensure_warm(n)?;
        let warm = self.warm.as_mut().expect("ensured above");
        warm.solve_seeded(&self.solver, matrix, warm_start)
    }

    fn verify_eps(&self) -> f64 {
        F32_VERIFY_EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_sim::IpuConfig;
    use lsap::{DeltaUpdate, IncrementalSolver};

    fn tiny() -> StreamingHunIpu {
        StreamingHunIpu::new(HunIpu::with_config(IpuConfig::tiny(8)))
    }

    #[test]
    fn streaming_cold_solves_are_bit_identical_to_plain_solves() {
        let mut stream = tiny();
        let mut cold = HunIpu::with_config(IpuConfig::tiny(8));
        for seed in 0..3u64 {
            let m = datasets::uniform_cost_matrix(8, 10, seed);
            let s = stream.solve(&m).unwrap();
            let c = cold.solve(&m).unwrap();
            assert_eq!(s.assignment, c.assignment);
            assert_eq!(s.objective.to_bits(), c.objective.to_bits());
            assert_eq!(s.certificate, c.certificate);
            assert_eq!(s.stats.modeled_cycles, c.stats.modeled_cycles);
        }
    }

    #[test]
    fn seeded_resolve_matches_cold_objective_and_is_cheaper() {
        let n = 16;
        let m0 = datasets::uniform_cost_matrix(n, 10, 7);
        let mut stream = tiny();
        let first = stream.solve(&m0).unwrap();
        first.verify(&m0, F32_VERIFY_EPS).unwrap();
        let warm = WarmStart::from_report(&first);

        // Perturb one row: integer costs keep all f32 arithmetic exact.
        let mut m1 = m0.clone();
        for j in 0..n {
            m1.set(3, j, m1.get(3, j) + 5.0);
        }
        let seeded = stream.solve_seeded(&m1, &warm).unwrap();
        seeded.verify(&m1, F32_VERIFY_EPS).unwrap();
        assert!(seeded.stats.seeded);

        let cold = stream.solve(&m1).unwrap();
        assert_eq!(seeded.objective.to_bits(), cold.objective.to_bits());
        assert!(
            seeded.stats.modeled_cycles.unwrap() < cold.stats.modeled_cycles.unwrap(),
            "seeded {:?} !< cold {:?}",
            seeded.stats.modeled_cycles,
            cold.stats.modeled_cycles
        );
    }

    #[test]
    fn seeded_resolve_on_unchanged_matrix_skips_step1_cycles() {
        let n = 16;
        let m = datasets::uniform_cost_matrix(n, 10, 11);
        let mut stream = tiny();
        let first = stream.solve(&m).unwrap();
        let warm = WarmStart::from_report(&first);
        let seeded = stream.solve_seeded(&m, &warm).unwrap();
        seeded.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(seeded.objective.to_bits(), first.objective.to_bits());
        // No Step 1 and a nearly complete initial matching: the re-solve
        // must be strictly cheaper than the cold solve of the same matrix.
        assert!(seeded.stats.modeled_cycles.unwrap() < first.stats.modeled_cycles.unwrap());
    }

    #[test]
    fn incremental_stream_over_hunipu_verifies_every_tick() {
        let n = 12;
        let m0 = datasets::uniform_cost_matrix(n, 10, 3);
        let mut stream = IncrementalSolver::new(tiny(), m0);
        let first = stream.solve_next(&DeltaUpdate::new()).unwrap();
        assert!(!first.stats.seeded);
        for tick in 0..4u64 {
            let mut delta = DeltaUpdate::new();
            let row = (tick as usize * 5) % n;
            let bumped: Vec<f64> = (0..n)
                .map(|j| stream.matrix().get(row, j) + ((tick + j as u64) % 7) as f64)
                .collect();
            delta.set_row(row, bumped);
            let report = stream.solve_next(&delta).unwrap();
            report.verify(stream.matrix(), F32_VERIFY_EPS).unwrap();
        }
        let stats = stream.stats();
        assert_eq!(stats.resolves, 5);
        assert_eq!(stats.seeded + stats.fallbacks, 4);
        // Integer perturbations keep the dual repair exact; the seeded
        // path must actually be taken, not just fall back every tick.
        assert!(stats.seeded >= 3, "stats: {stats:?}");
    }

    #[test]
    fn shape_change_recompiles_instead_of_erroring() {
        let mut stream = tiny();
        let a = datasets::uniform_cost_matrix(8, 10, 1);
        let b = datasets::uniform_cost_matrix(12, 10, 1);
        stream.solve(&a).unwrap();
        assert_eq!(stream.warm_engine().unwrap().n(), 8);
        stream.solve(&b).unwrap();
        assert_eq!(stream.warm_engine().unwrap().n(), 12);
    }
}
