//! Graph construction for HunIPU: tensors, mappings, and shared builder
//! utilities. The per-step compute sets live in [`crate::steps`].

use crate::layout::Layout;
use ipu_sim::{
    cost, Access, ComputeSetId, DType, Graph, GraphError, IpuConfig, Program, Tensor, TensorSlice,
    VertexCtx,
};
use std::ops::Range;

/// Which cost-matrix representation the device graph stores.
///
/// The dense mode is the paper's layout: the full `n x n` slack matrix
/// resident in tile SRAM. The two other modes break that SRAM ceiling:
/// `Sparse` keeps only `k` candidate columns per row (CSR-style), and
/// `Tiled` keeps the cost matrix in host memory and streams it through
/// the device one column block at a time, so only duals, matching state,
/// and one block are ever resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Storage {
    /// Full `n x n` slack in SRAM.
    Dense,
    /// `k` candidate columns per row; per-tile memory O(n·k / tiles).
    Sparse {
        /// Candidate columns stored per row.
        k: usize,
    },
    /// Out-of-core block streaming over host-resident costs.
    Tiled {
        /// Columns per streamed block (the resident working-set width).
        block_cols: usize,
        /// Zero-list capacity per row (Step 2 warm-start bound).
        zcap: usize,
    },
}

/// All device state of one HunIPU instance.
///
/// Naming follows the paper: `slack` and the compressed matrix (§IV-B),
/// star/prime/cover state (§II-A), `zero_status` (§IV-F), the green
/// stack (§IV-G), and the dual potentials `u`, `v` that Step 1 and Step 6
/// maintain implicitly (tracked explicitly here so every solve returns an
/// LP-duality certificate).
#[derive(Clone)]
pub(crate) struct Ts {
    // ---- matrix-shaped, 1D row decomposition ----
    /// Slack matrix, f32 `n x n`.
    pub slack: Tensor,
    /// Compressed zero positions, i32 `n x n` (−1 padding), per-thread
    /// segments (§IV-B, Fig. 1).
    pub compress: Tensor,
    /// Zeros per (row, thread segment), i32 `n x threads`.
    pub zero_count: Tensor,
    /// Per-(row, segment) f32 scratch minima (Step 1 row minima and
    /// Step 6 uncovered minima share this buffer).
    pub seg_min: Tensor,
    /// Total zeros per row, i32 `n` (Step 2's τ reduction input).
    pub row_total: Tensor,
    // ---- per-row state (on the row's tile) ----
    pub row_star: Tensor,
    pub row_cover: Tensor,
    pub row_prime: Tensor,
    /// Row state −1/0/1 of §IV-F.
    pub zero_status: Tensor,
    /// First uncovered-zero column of each row (valid when status ≥ 0).
    pub row_zero_col: Tensor,
    /// Encoded (status, row) keys for the arg-max reduction.
    pub enc: Tensor,
    /// Row potentials (dual certificate), f32 `n`.
    pub u: Tensor,
    /// Step 2 proposals, i32 `n`.
    pub prop: Tensor,
    // ---- per-column state (32-element segments, §IV-E) ----
    pub col_star: Tensor,
    pub col_cover: Tensor,
    /// Column potentials (dual certificate), f32 `n`.
    pub v: Tensor,
    // ---- collector-tile state ----
    /// The green stack of §IV-G: (row, col) hops of the augmenting path.
    pub green_rows: Tensor,
    pub green_cols: Tensor,
    pub green_len: Tensor,
    /// Loop/branch flags (i32 scalars).
    pub not_done: Tensor,
    pub searching: Tensor,
    pub st1: Tensor,
    pub st0: Tensor,
    pub pass: Tensor,
    pub pass_lt: Tensor,
    /// Selected row of Step 4's arg-max (decode output).
    pub sel_row: Tensor,
    /// Current column of the Step 5 walk.
    pub cur_col: Tensor,
    /// Walk-continuation flag.
    pub walking: Tensor,
    /// Device-side counters: augmentations and dual (slack) updates.
    pub ctr_aug: Tensor,
    pub ctr_dual: Tensor,
    // ---- replicated mirrors (each tile holds a read-only copy) ----
    /// Column-cover mirror, refreshed before every Step 4/6 superstep.
    pub ccm: Tensor,
    /// Scratch mirrors `n` i32 (proposals / col_star / green rows+cols —
    /// reused at disjoint program points to respect tile SRAM, C2).
    pub ma: Tensor,
    pub mb: Tensor,
    /// Scalar mirrors.
    pub len_m: Tensor,
    pub pass_m: Tensor,
    pub sel_row_m: Tensor,
    pub sel_col_m: Tensor,
    pub star_col_m: Tensor,
    pub cur_col_m: Tensor,
    pub k_row_m: Tensor,
    /// Step 6's Δ, f32.
    pub delta_m: Tensor,
    // ---- representation-specific state (all `None` in dense mode) ----
    /// Candidate column ids, i32 `n x k` (sparse mode): `cand[r*k + p]`
    /// is the absolute column of stored entry `p` of row `r`.
    pub cand: Option<Tensor>,
    /// Host-resident cost matrix, f32 `n x n` (tiled mode) — never
    /// mapped to a tile, streamed through PCIe block by block.
    pub host_cost: Option<Tensor>,
    /// Replicated column-potential mirror, f32 `n` (tiled mode): lets
    /// every tile recompute `c - u - v` slacks on streamed blocks.
    pub vm: Option<Tensor>,
    /// Per-row uncovered minima, f32 `n` (tiled Step 6 accumulator).
    pub rowacc: Option<Tensor>,
    /// Collector flag: Step 6's δ was finite, so the dual update may run.
    pub delta_ok: Option<Tensor>,
    /// Collector flag: the candidate graph admits no perfect matching
    /// (δ = ∞ in sparse Step 6 — a Hall violation from pruning).
    pub infeasible: Option<Tensor>,
}

/// Builds the static HunIPU graph for one problem size on one device.
pub(crate) struct Builder {
    pub g: Graph,
    pub l: Layout,
    pub t: Ts,
    pub ab: crate::ablation::AblationConfig,
    pub storage: Storage,
}

impl Builder {
    pub fn with_layout(
        config: IpuConfig,
        l: Layout,
        ab: crate::ablation::AblationConfig,
    ) -> Result<Self, GraphError> {
        Self::with_layout_storage(config, l, ab, Storage::Dense)
    }

    pub fn with_layout_storage(
        config: IpuConfig,
        l: Layout,
        ab: crate::ablation::AblationConfig,
        storage: Storage,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(config);
        let n = l.n;
        let th = l.threads;
        let c = l.collector_tile;

        // Per-row widths of the two matrix-shaped buffers. The layout's
        // `width` drives thread segmentation and must match the width the
        // per-thread fragments iterate (slack in dense/sparse, the zero
        // list in tiled mode).
        let (slack_w, comp_w) = match storage {
            Storage::Dense => (n, n),
            Storage::Sparse { k } => (k, k),
            Storage::Tiled { block_cols, zcap } => (block_cols, zcap),
        };
        match storage {
            Storage::Dense => debug_assert_eq!(l.width, n),
            Storage::Sparse { k } => debug_assert_eq!(l.width, k),
            Storage::Tiled { zcap, .. } => debug_assert_eq!(l.width, zcap),
        }

        // Matrix-shaped tensors: row blocks of `rows_per_tile` rows per
        // tile, in tile order (contiguous in the flat layout). In dense
        // mode both span the full `n` columns; sparse stores `k` entries
        // per row, tiled stores one streamed block and a bounded zero
        // list.
        let slack = g.add_tensor("slack", DType::F32, n * slack_w);
        let compress = g.add_tensor("compress", DType::I32, n * comp_w);
        let zero_count = g.add_tensor("zero_count", DType::I32, n * th);
        let seg_min = g.add_tensor("seg_min", DType::F32, n * th);
        let row_total = g.add_tensor("row_total", DType::I32, n);
        let row_star = g.add_tensor("row_star", DType::I32, n);
        let row_cover = g.add_tensor("row_cover", DType::I32, n);
        let row_prime = g.add_tensor("row_prime", DType::I32, n);
        let zero_status = g.add_tensor("zero_status", DType::I32, n);
        let row_zero_col = g.add_tensor("row_zero_col", DType::I32, n);
        let enc = g.add_tensor("enc", DType::I32, n);
        let u = g.add_tensor("u", DType::F32, n);
        let prop = g.add_tensor("prop", DType::I32, n);
        for (tensor, per_row) in [
            (slack, slack_w),
            (compress, comp_w),
            (zero_count, th),
            (seg_min, th),
            (row_total, 1),
            (row_star, 1),
            (row_cover, 1),
            (row_prime, 1),
            (zero_status, 1),
            (row_zero_col, 1),
            (enc, 1),
            (u, 1),
            (prop, 1),
        ] {
            for tile in l.owner_tiles() {
                let rows = l.rows_of_tile(tile);
                g.map_slice(tensor.slice(rows.start * per_row..rows.end * per_row), tile)?;
            }
        }

        // Per-column state in `col_seg`-element segments (§IV-E).
        let col_star = g.add_tensor("col_star", DType::I32, n);
        let col_cover = g.add_tensor("col_cover", DType::I32, n);
        let v = g.add_tensor("v", DType::F32, n);
        for tensor in [col_star, col_cover, v] {
            for s in 0..l.n_col_segs() {
                g.map_slice(tensor.slice(l.col_seg_cols(s)), l.col_seg_tile(s))?;
            }
        }

        // Collector-tile state.
        let green_rows = g.add_tensor("green_rows", DType::I32, n);
        let green_cols = g.add_tensor("green_cols", DType::I32, n);
        let green_len = g.add_tensor("green_len", DType::I32, 1);
        let not_done = g.add_tensor("not_done", DType::I32, 1);
        let searching = g.add_tensor("searching", DType::I32, 1);
        let st1 = g.add_tensor("st1", DType::I32, 1);
        let st0 = g.add_tensor("st0", DType::I32, 1);
        let pass = g.add_tensor("pass", DType::I32, 1);
        let pass_lt = g.add_tensor("pass_lt", DType::I32, 1);
        let sel_row = g.add_tensor("sel_row", DType::I32, 1);
        let cur_col = g.add_tensor("cur_col", DType::I32, 1);
        let walking = g.add_tensor("walking", DType::I32, 1);
        let ctr_aug = g.add_tensor("ctr_aug", DType::I32, 1);
        let ctr_dual = g.add_tensor("ctr_dual", DType::I32, 1);
        for tensor in [
            green_rows, green_cols, green_len, not_done, searching, st1, st0, pass, pass_lt,
            sel_row, cur_col, walking, ctr_aug, ctr_dual,
        ] {
            g.map_to_tile(tensor, c)?;
        }

        // Replicated mirrors.
        let ccm = g.add_replicated("ccm", DType::I32, n);
        let ma = g.add_replicated("mirror_a", DType::I32, n);
        let mb = g.add_replicated("mirror_b", DType::I32, n);
        let len_m = g.add_replicated("len_m", DType::I32, 1);
        let pass_m = g.add_replicated("pass_m", DType::I32, 1);
        let sel_row_m = g.add_replicated("sel_row_m", DType::I32, 1);
        let sel_col_m = g.add_replicated("sel_col_m", DType::I32, 1);
        let star_col_m = g.add_replicated("star_col_m", DType::I32, 1);
        let cur_col_m = g.add_replicated("cur_col_m", DType::I32, 1);
        let k_row_m = g.add_replicated("k_row_m", DType::I32, 1);
        let delta_m = g.add_replicated("delta_m", DType::F32, 1);

        // Representation-specific tensors, created strictly after every
        // shared tensor so the dense graph stays byte-identical to the
        // seed (committed cycle baselines depend on it).
        let mut cand = None;
        let mut host_cost = None;
        let mut vm = None;
        let mut rowacc = None;
        let mut delta_ok = None;
        let mut infeasible = None;
        match storage {
            Storage::Dense => {}
            Storage::Sparse { k } => {
                let t = g.add_tensor("cand", DType::I32, n * k);
                for tile in l.owner_tiles() {
                    let rows = l.rows_of_tile(tile);
                    g.map_slice(t.slice(rows.start * k..rows.end * k), tile)?;
                }
                cand = Some(t);
            }
            Storage::Tiled { .. } => {
                host_cost = Some(g.add_host_tensor("host_cost", DType::F32, n * n));
                vm = Some(g.add_replicated("v_m", DType::F32, n));
                let t = g.add_tensor("rowacc", DType::F32, n);
                for tile in l.owner_tiles() {
                    g.map_slice(t.slice(l.rows_of_tile(tile)), tile)?;
                }
                rowacc = Some(t);
            }
        }
        if storage != Storage::Dense {
            let ok = g.add_tensor("delta_ok", DType::I32, 1);
            let inf = g.add_tensor("infeasible", DType::I32, 1);
            g.map_to_tile(ok, c)?;
            g.map_to_tile(inf, c)?;
            delta_ok = Some(ok);
            infeasible = Some(inf);
        }

        let t = Ts {
            slack,
            compress,
            zero_count,
            seg_min,
            row_total,
            row_star,
            row_cover,
            row_prime,
            zero_status,
            row_zero_col,
            enc,
            u,
            prop,
            col_star,
            col_cover,
            v,
            green_rows,
            green_cols,
            green_len,
            not_done,
            searching,
            st1,
            st0,
            pass,
            pass_lt,
            sel_row,
            cur_col,
            walking,
            ctr_aug,
            ctr_dual,
            ccm,
            ma,
            mb,
            len_m,
            pass_m,
            sel_row_m,
            sel_col_m,
            star_col_m,
            cur_col_m,
            k_row_m,
            delta_m,
            cand,
            host_cost,
            vm,
            rowacc,
            delta_ok,
            infeasible,
        };
        Ok(Self {
            g,
            l,
            t,
            ab,
            storage,
        })
    }

    /// Interval list of a per-row tensor (`per_row` elements per row):
    /// one `(range, tile)` per row-owning tile.
    pub fn row_block_intervals(&self, per_row: usize) -> Vec<(Range<usize>, usize)> {
        self.l
            .owner_tiles()
            .into_iter()
            .map(|tile| {
                let rows = self.l.rows_of_tile(tile);
                (rows.start * per_row..rows.end * per_row, tile)
            })
            .collect()
    }

    /// Interval list of a per-column tensor in `col_seg` segments.
    pub fn col_seg_intervals(&self) -> Vec<(Range<usize>, usize)> {
        (0..self.l.n_col_segs())
            .map(|s| (self.l.col_seg_cols(s), self.l.col_seg_tile(s)))
            .collect()
    }

    /// Builds a gather of `src` (distributed per `intervals`) into a new
    /// same-length tensor on the collector tile — one exchange phase.
    pub fn gather_to_collector(
        &mut self,
        name: &str,
        src: Tensor,
        intervals: &[(Range<usize>, usize)],
    ) -> Result<(Tensor, Program), GraphError> {
        let dst = self.g.add_tensor(name, src.dtype(), src.len());
        self.g.map_to_tile(dst, self.l.collector_tile)?;
        let pairs = intervals
            .iter()
            .map(|(r, _)| (src.slice(r.clone()), dst.slice(r.clone())))
            .collect();
        Ok((dst, Program::exchange(pairs)))
    }

    /// Whether a two-level reduction pays for itself when `off_chip`
    /// partial scalars live off the collector's chip: the flat gather
    /// serializes `4·off_chip` bytes through the collector's IPU-Link,
    /// while the hierarchy spends two extra supersteps (one exchange
    /// phase plus one compute set). Both sides are static per shape, so
    /// the structure choice is deterministic at build time — tiny
    /// multi-chip configs keep the flat gather, Mk2-scale ones go
    /// hierarchical.
    fn hier_reduce_pays(&self, off_chip: usize) -> bool {
        let c = self.g.config();
        let saved = off_chip as f64 * 4.0 / c.inter_ipu_bytes_per_cycle;
        let overhead = 2.0 * (c.sync_cycles + c.exchange_setup_cycles) as f64;
        saved > overhead
    }

    /// Number of distinct tiles holding `input` elements outside the
    /// collector's chip — the partial scalars a flat gather would drag
    /// across IPU-Links.
    fn off_root_chip_tiles(&self, input: Tensor) -> usize {
        let root = self.l.chip_of_tile(self.l.collector_tile);
        let mut tiles: Vec<usize> = (0..input.len())
            .filter_map(|i| self.g.tile_of(input, i))
            .filter(|&t| self.l.chip_of_tile(t) != root)
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles.len()
    }

    /// Builds a reduction of a distributed tensor to a scalar on the
    /// collector tile, picking the flat single-gather structure on
    /// chip-oblivious layouts (identical graph to the seed — the
    /// single-chip bit-identity hinge) and the two-level
    /// gather-through-sub-collectors structure on chip-aware layouts
    /// where the cross-chip partial traffic outweighs the extra phases
    /// (see [`Builder::hier_reduce_pays`]).
    pub fn reduce_scalar(
        &mut self,
        name: &str,
        input: Tensor,
        op: ipu_sim::poplib::ReduceOp,
    ) -> Result<(Tensor, Program), GraphError> {
        if self.l.chips > 1 {
            let off_chip = self.off_root_chip_tiles(input);
            if self.hier_reduce_pays(off_chip) {
                return ipu_sim::poplib::reduce_to_scalar_hier(
                    &mut self.g,
                    name,
                    input,
                    op,
                    &self.l.chip_stages(),
                    self.l.collector_tile,
                );
            }
        }
        ipu_sim::poplib::reduce_to_scalar(&mut self.g, name, input, op, self.l.collector_tile)
    }

    /// Builds a refresh of the replicated `mirror` from a tensor that
    /// lives wholly on the collector tile (the green stack after a
    /// serial walk). Flat layouts broadcast straight from the collector
    /// — one phase, but the collector's link share serializes a copy
    /// per remote chip. Chip-aware layouts first scatter distinct
    /// `n/chips` chunks to the per-chip sub-collectors (the collector
    /// sends each byte across each link once) and then broadcast from
    /// the now-distributed staging tensor, so the per-chip replica
    /// traffic leaves from `chips` tiles in parallel.
    pub fn broadcast_from_collector(
        &mut self,
        name: &str,
        src: Tensor,
        mirror: Tensor,
    ) -> Result<Program, GraphError> {
        if self.l.chips == 1 {
            return Ok(Program::broadcast(src.whole(), mirror.whole()));
        }
        let n = src.len();
        let stage = self.g.add_tensor(&format!("{name}.stage"), src.dtype(), n);
        let mut pairs = Vec::with_capacity(self.l.chips);
        for c in 0..self.l.chips {
            let chunk = c * n / self.l.chips..(c + 1) * n / self.l.chips;
            if chunk.is_empty() {
                continue;
            }
            self.g
                .map_slice(stage.slice(chunk.clone()), self.l.sub_collector(c))?;
            pairs.push((src.slice(chunk.clone()), stage.slice(chunk)));
        }
        Ok(Program::seq(vec![
            Program::exchange(pairs),
            Program::broadcast(stage.whole(), mirror.whole()),
        ]))
    }

    /// Builds a **dynamic read**: reads `src[idx]` where `idx` arrives in
    /// the replicated scalar `idx_m`, using the strategy selected by the
    /// ablation config — partition-and-distribute (§IV-G, Fig. 4: every
    /// interval owner probes in parallel, a ≤-tiles temporary is reduced
    /// on the collector) or the rejected whole-tensor single-tile copy.
    /// On chip-aware layouts the ≤-tiles temporary is reduced through
    /// the per-chip sub-collectors instead of one flat gather.
    /// Returns the 1-element output tensor (on the collector) and the
    /// program fragment.
    pub fn dyn_read_i32(
        &mut self,
        name: &str,
        src: Tensor,
        idx_m: Tensor,
        intervals: &[(Range<usize>, usize)],
    ) -> Result<(Tensor, Program), GraphError> {
        if self.ab.dyn_slice == crate::ablation::DynSlice::SingleTileGather {
            return self.dyn_read_i32_single_tile(name, src, idx_m);
        }
        if self.l.chips > 1 {
            let root = self.l.chip_of_tile(self.l.collector_tile);
            let off_chip = intervals
                .iter()
                .filter(|(_, t)| self.l.chip_of_tile(*t) != root)
                .count();
            if self.hier_reduce_pays(off_chip) {
                return self.dyn_read_i32_hier(name, src, idx_m, intervals);
            }
        }
        let k = intervals.len();
        let partials = self.g.add_tensor(&format!("{name}.part"), DType::I32, k);
        for (i, (_, tile)) in intervals.iter().enumerate() {
            self.g.map_slice(partials.element(i), *tile)?;
        }
        let gathered = self.g.add_tensor(&format!("{name}.gath"), DType::I32, k);
        self.g.map_to_tile(gathered, self.l.collector_tile)?;
        let out = self.g.add_tensor(&format!("{name}.out"), DType::I32, 1);
        self.g.map_to_tile(out, self.l.collector_tile)?;

        let cs = self.g.add_compute_set(&format!("{name}.probe"));
        for (i, (range, tile)) in intervals.iter().enumerate() {
            let (start, end) = (range.start, range.end);
            let vtx = self
                .g
                .add_vertex(cs, *tile, &format!("{name}.probe[{i}]"), move |ctx| {
                    let idx = ctx.i32(0)[0] as usize;
                    let seg = ctx.i32(1);
                    let out = if idx >= start && idx < end {
                        seg[idx - start]
                    } else {
                        i32::MIN
                    };
                    ctx.i32_mut(2)[0] = out;
                    cost::scalar(6)
                })?;
            self.g.connect(vtx, idx_m.whole(), Access::Read)?;
            self.g
                .connect(vtx, src.slice(range.clone()), Access::Read)?;
            self.g.connect(vtx, partials.element(i), Access::Write)?;
        }

        // Multithreaded max over the gathered partials (exactly the
        // "slice the element from the temporary tensor in a single tile"
        // step of Fig. 4, using the tile's six threads).
        let pick = ipu_sim::poplib::reduce_on_tile(
            &mut self.g,
            &format!("{name}.pick"),
            gathered,
            out,
            ipu_sim::poplib::ReduceOp::Max,
            self.l.collector_tile,
        )?;

        let gather = Program::exchange(
            (0..k)
                .map(|i| (partials.element(i), gathered.element(i)))
                .collect(),
        );
        Ok((out, Program::seq(vec![Program::execute(cs), gather, pick])))
    }

    /// Chip-aware dynamic read: the same per-owner probe vertices as the
    /// flat path (non-owners emit `i32::MIN`), but the max over the
    /// partials travels through the per-chip sub-collectors so only one
    /// scalar per chip crosses an IPU-Link.
    fn dyn_read_i32_hier(
        &mut self,
        name: &str,
        src: Tensor,
        idx_m: Tensor,
        intervals: &[(Range<usize>, usize)],
    ) -> Result<(Tensor, Program), GraphError> {
        let k = intervals.len();
        let partials = self.g.add_tensor(&format!("{name}.part"), DType::I32, k);
        for (i, (_, tile)) in intervals.iter().enumerate() {
            self.g.map_slice(partials.element(i), *tile)?;
        }
        let cs = self.g.add_compute_set(&format!("{name}.probe"));
        for (i, (range, tile)) in intervals.iter().enumerate() {
            let (start, end) = (range.start, range.end);
            let vtx = self
                .g
                .add_vertex(cs, *tile, &format!("{name}.probe[{i}]"), move |ctx| {
                    let idx = ctx.i32(0)[0] as usize;
                    let seg = ctx.i32(1);
                    let out = if idx >= start && idx < end {
                        seg[idx - start]
                    } else {
                        i32::MIN
                    };
                    ctx.i32_mut(2)[0] = out;
                    cost::scalar(6)
                })?;
            self.g.connect(vtx, idx_m.whole(), Access::Read)?;
            self.g
                .connect(vtx, src.slice(range.clone()), Access::Read)?;
            self.g.connect(vtx, partials.element(i), Access::Write)?;
        }
        let (out, pick) = ipu_sim::poplib::reduce_partials_hier(
            &mut self.g,
            &format!("{name}.pick"),
            partials,
            ipu_sim::poplib::ReduceOp::Max,
            &self.l.chip_stages(),
            self.l.collector_tile,
        )?;
        Ok((out, Program::seq(vec![Program::execute(cs), pick])))
    }

    /// The rejected dynamic-slice alternative (§IV-G): ship the whole
    /// tensor to the collector for every read, then index locally.
    fn dyn_read_i32_single_tile(
        &mut self,
        name: &str,
        src: Tensor,
        idx_m: Tensor,
    ) -> Result<(Tensor, Program), GraphError> {
        let scratch = self
            .g
            .add_tensor(&format!("{name}.shipped"), DType::I32, src.len());
        self.g.map_to_tile(scratch, self.l.collector_tile)?;
        let out = self.g.add_tensor(&format!("{name}.out"), DType::I32, 1);
        self.g.map_to_tile(out, self.l.collector_tile)?;
        let cs = self.g.add_compute_set(&format!("{name}.index"));
        let vtx =
            self.g
                .add_vertex(cs, self.l.collector_tile, &format!("{name}.index"), |ctx| {
                    let idx = ctx.i32(0)[0] as usize;
                    let data = ctx.i32(1);
                    ctx.i32_mut(2)[0] = if idx < data.len() {
                        data[idx]
                    } else {
                        i32::MIN
                    };
                    cost::scalar(5)
                })?;
        self.g.connect(vtx, idx_m.whole(), Access::Read)?;
        self.g.connect(vtx, scratch.whole(), Access::Read)?;
        self.g.connect(vtx, out.whole(), Access::Write)?;
        Ok((
            out,
            Program::seq(vec![
                Program::copy(src.whole(), scratch.whole()),
                Program::execute(cs),
            ]),
        ))
    }

    /// Adds one vertex on the collector tile — the home of scalar control
    /// state (decode, flag updates, green-stack pushes).
    pub fn collector_vertex(
        &mut self,
        cs: ComputeSetId,
        name: &str,
        fields: Vec<(TensorSlice, Access)>,
        f: impl Fn(&VertexCtx) -> u64 + Send + Sync + 'static,
    ) -> Result<(), GraphError> {
        let vtx = self.g.add_vertex(cs, self.l.collector_tile, name, f)?;
        for (slice, access) in fields {
            self.g.connect(vtx, slice, access)?;
        }
        Ok(())
    }
}
