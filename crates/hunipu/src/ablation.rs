//! Ablation support: the design alternatives DESIGN.md calls out.
//!
//! - **A1 — 1D vs 2D decomposition (§IV-A).** The paper rejects the 2D
//!   decomposition at design time because every row operation would need
//!   cross-tile combination. We model the 2D exchange volume analytically
//!   ([`two_d_exchange_bytes_per_scan`]) and compare it against the 1D
//!   implementation's *measured* exchange volume.
//! - **A2 — matrix compression (§IV-B).** [`AblationConfig::compression`]
//!   switches the Step 4 row scan between the compressed zero lists and a
//!   direct slack-row scan (and skips the per-update re-compression).
//! - **A3 — column-segment size (§IV-E).** Swept via
//!   [`crate::HunIpu::with_col_seg`].
//! - **A4 — dynamic-slice strategy (§IV-G).** Partition-and-distribute
//!   (Fig. 4) versus shipping the whole tensor to one tile per read.

use serde::{Deserialize, Serialize};

/// Strategy for reading a tensor element at a runtime-computed index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DynSlice {
    /// The paper's partition-and-distribute scheme (Fig. 4): every
    /// interval owner probes in parallel; a ≤-tiles-long temporary is
    /// reduced on one tile.
    #[default]
    PartitionDistribute,
    /// The rejected alternative: copy the whole tensor to the collector
    /// tile for every read — simple, but the exchange moves `n` elements
    /// instead of `tiles`.
    SingleTileGather,
}

/// Toggles for the design choices HunIPU is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Use the compressed zero matrix in the Step 4/6 loop (§IV-B). When
    /// off, Step 4 scans the slack rows directly and Step 6 skips the
    /// re-compression (Step 2's one-time initial matching still uses
    /// compression in both settings, isolating the loop effect).
    pub compression: bool,
    /// Dynamic-slice strategy (§IV-G).
    pub dyn_slice: DynSlice,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            compression: true,
            dyn_slice: DynSlice::PartitionDistribute,
        }
    }
}

/// Modeled exchange bytes that ONE full-matrix row-status scan would
/// need under a 2D `g x g` decomposition (`g = floor(sqrt(tiles))`).
///
/// Under 2D, each of the `n` rows is split over `g` tiles; producing a
/// per-row flag requires a `g`-way combine per row (each participant
/// ships one 4-byte partial), plus redistributing the result — `≈ 8·n·…`
/// bytes per scan, against the 1D layout's **zero** exchange for the
/// same step (each row is tile-local; only the final scalar reduction
/// leaves the tile).
pub fn two_d_exchange_bytes_per_scan(n: usize, tiles: usize) -> u64 {
    let g = (tiles as f64).sqrt().floor() as u64;
    // Per row: (g - 1) partials gathered + 1 result scattered back to
    // (g - 1) tiles, 4 bytes each.
    2 * (g.saturating_sub(1)) * 4 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_design() {
        let c = AblationConfig::default();
        assert!(c.compression);
        assert_eq!(c.dyn_slice, DynSlice::PartitionDistribute);
    }

    #[test]
    fn two_d_volume_grows_with_grid() {
        let small = two_d_exchange_bytes_per_scan(512, 64);
        let big = two_d_exchange_bytes_per_scan(512, 1472);
        assert!(big > small);
        // 1472 tiles -> g = 38: 2 * 37 * 4 * 512 bytes.
        assert_eq!(big, 2 * 37 * 4 * 512);
    }

    #[test]
    fn single_tile_handles_degenerate_grid() {
        assert_eq!(two_d_exchange_bytes_per_scan(100, 1), 0);
    }
}
