//! The [`HunIpu`] solver: builds the static graph for an instance size,
//! loads the cost matrix, runs the device program, and extracts the
//! verified result.

use crate::build::Builder;
use crate::layout::Layout;
use ipu_sim::{FaultPlan, IpuConfig, ProfileConfig};
use lsap::{
    Assignment, CostMatrix, DualCertificate, LsapError, LsapSolver, SolveReport, SolverStats,
};
use std::cell::Cell;
use std::time::Instant;

/// Relative tolerance for verifying HunIPU results: the device computes
/// in f32 (as the real IPU implementation does), so certificates carry
/// single-precision round-off. Instances with integer costs below 2^24
/// verify exactly.
pub const F32_VERIFY_EPS: f64 = 1e-5;

/// How the solver lays work out across the device's chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutMode {
    /// Chip-aware on multi-IPU configs, flat on single-chip (the default).
    #[default]
    Auto,
    /// Force the chip-oblivious round-robin layout everywhere. On
    /// multi-IPU configs this is the seed behavior: column segments and
    /// collector traffic ignore chip boundaries, so most exchange phases
    /// pay IPU-Link bandwidth. Kept for differential tests and as the
    /// baseline the multi-IPU bench compares against.
    Flat,
    /// Force the chip-aware layout: rows block-partitioned per chip,
    /// column segments round-robined within their owning chip, and
    /// reductions/broadcasts restructured as hierarchical exchanges that
    /// cross each IPU-Link once per phase. Requires `config.ipus > 1`
    /// (single-chip chip-aware degenerates to flat by construction).
    ChipAware,
}

/// The paper's IPU-optimized Hungarian algorithm, executed on the
/// [`ipu_sim`] machine model.
///
/// Construction is cheap; the static graph is built per `solve` call for
/// the instance's size (the IPU compiles one program per tensor shape —
/// §III-A). Reuse across same-size instances is available through
/// [`HunIpu::solve_report_with_engine`]-style helpers in the bench crate.
#[derive(Debug, Clone)]
pub struct HunIpu {
    config: IpuConfig,
    col_seg: usize,
    ablation: crate::ablation::AblationConfig,
    fault_plan: Option<FaultPlan>,
    /// Number of solves already launched with faults armed; decorrelates
    /// the fault stream across retries (see [`HunIpu::with_fault_plan`]).
    fault_epoch: Cell<u64>,
    profile: Option<ProfileConfig>,
    layout_mode: LayoutMode,
}

impl Default for HunIpu {
    fn default() -> Self {
        Self::new()
    }
}

impl HunIpu {
    /// A solver targeting the paper's Mk2 device.
    pub fn new() -> Self {
        Self {
            config: IpuConfig::mk2(),
            col_seg: crate::COL_SEG_DEFAULT,
            ablation: Default::default(),
            fault_plan: None,
            fault_epoch: Cell::new(0),
            profile: None,
            layout_mode: LayoutMode::Auto,
        }
    }

    /// A solver targeting a custom device (smaller configs are useful in
    /// tests; ablations sweep parameters).
    pub fn with_config(config: IpuConfig) -> Self {
        Self {
            config,
            ..Self::new()
        }
    }

    /// Overrides the column-segment size of §IV-E (default 32) — used by
    /// the segment-size ablation.
    pub fn with_col_seg(mut self, col_seg: usize) -> Self {
        assert!(col_seg >= 1);
        self.col_seg = col_seg;
        self
    }

    /// Overrides the ablation toggles (compression, dynamic-slice
    /// strategy); the default is the paper's design.
    pub fn with_ablation(mut self, ablation: crate::ablation::AblationConfig) -> Self {
        self.ablation = ablation;
        self
    }

    /// Arms a [`FaultPlan`] on every engine this solver builds, simulating
    /// a faulty device.
    ///
    /// The plan's seed is the seed of the *first* solve; each subsequent
    /// solve on the same `HunIpu` derives a fresh seed from it, so a retry
    /// (e.g. driven by [`lsap::ResilientSolver`]) sees a different fault
    /// pattern rather than deterministically replaying the corruption that
    /// just killed it — matching real soft-error behavior while keeping
    /// whole-experiment reproducibility.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self.fault_epoch.set(0);
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Arms or disarms the fault plan in place — the serving layer uses
    /// this to start and stop fault storms mid-run without rebuilding the
    /// solver or its pooled engines (the plan is applied per launch, so
    /// already-compiled warm engines pick the change up on their next
    /// solve). Resets the fault epoch: re-arming the same plan replays
    /// the same fault stream.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        self.fault_epoch.set(0);
    }

    /// Enables the per-tile execution profiler on every engine this
    /// solver builds. The timeline is recovered from the engine returned
    /// by [`HunIpu::solve_with_engine`] (via `profile_report` /
    /// `chrome_trace`); [`lsap::SolverStats::profile_events`] counts the
    /// captured events either way.
    pub fn with_profiling(mut self, config: ProfileConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// The armed profiler configuration, if any.
    pub fn profile_config(&self) -> Option<&ProfileConfig> {
        self.profile.as_ref()
    }

    /// Overrides the [`LayoutMode`] (default [`LayoutMode::Auto`]) — used
    /// by differential tests and the multi-IPU bench to pin the
    /// chip-oblivious baseline.
    pub fn with_layout_mode(mut self, mode: LayoutMode) -> Self {
        self.layout_mode = mode;
        self
    }

    /// The layout mode this solver compiles with.
    pub fn layout_mode(&self) -> LayoutMode {
        self.layout_mode
    }

    /// Whether [`HunIpu::compile_for`] will build the chip-aware
    /// hierarchical program for this solver's config and layout mode.
    pub fn hierarchical(&self) -> bool {
        match self.layout_mode {
            LayoutMode::Auto => self.config.ipus > 1,
            LayoutMode::Flat => false,
            LayoutMode::ChipAware => true,
        }
    }

    /// The device configuration this solver targets.
    pub fn config(&self) -> &IpuConfig {
        &self.config
    }

    /// Builds and runs the device program, returning the report plus the
    /// engine (for cycle-level inspection in benches/ablations).
    pub fn solve_with_engine(
        &self,
        matrix: &CostMatrix,
    ) -> Result<(SolveReport, ipu_sim::Engine), LsapError> {
        let n = self.validate_size(matrix)?;
        let start = Instant::now();
        let (mut engine, t) = self.compile_for(n)?;
        let report = self.run_instance(&mut engine, &t, matrix, start)?;
        Ok((report, engine))
    }

    /// Rejects shapes the device program cannot represent, returning `n`.
    pub(crate) fn validate_size(&self, matrix: &CostMatrix) -> Result<usize, LsapError> {
        if !matrix.is_square() {
            return Err(LsapError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let n = matrix.n();
        if n >= (1 << 24) {
            return Err(LsapError::Backend {
                detail: format!("instance size {n} exceeds the 2^24 arg-max encoding limit"),
            });
        }
        Ok(n)
    }

    /// Builds and compiles the static solve program for instance size `n`
    /// (the expensive, shape-dependent step — C4). The returned engine is
    /// pristine: batch serving snapshots it once and streams instances
    /// through it via [`HunIpu::run_instance`].
    pub(crate) fn compile_for(
        &self,
        n: usize,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        self.compile_with(n, false)
    }

    /// Builds and compiles the warm-start re-solve program for instance
    /// size `n`: the same graph as [`HunIpu::compile_for`] driven by
    /// [`Builder::assemble_seeded`] (no Step 1 — the host uploads the
    /// reduced slack and repaired duals). A separate program in a
    /// separate engine so the cold path's cycle accounting is untouched.
    pub(crate) fn compile_for_seeded(
        &self,
        n: usize,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        self.compile_with(n, true)
    }

    fn compile_with(
        &self,
        n: usize,
        seeded: bool,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        let layout = if self.hierarchical() {
            Layout::chip_aware(
                n,
                self.config.threads_per_tile,
                self.col_seg,
                self.config.ipus,
                self.config.tiles_per_ipu,
            )
        } else {
            Layout::with_col_seg(
                n,
                self.config.tiles,
                self.config.threads_per_tile,
                self.col_seg,
            )
        };
        let mut builder =
            Builder::with_layout(self.config.clone(), layout, self.ablation).map_err(backend)?;
        let program = if seeded {
            builder.assemble_seeded().map_err(backend)?
        } else {
            builder.assemble().map_err(backend)?
        };
        let Builder { g, t, .. } = builder;
        let mut engine = g.compile(program).map_err(backend)?;
        if let Some(cfg) = &self.profile {
            engine.enable_profiling(cfg.clone());
        }
        Ok((engine, t))
    }

    /// The fault plan for the next engine run, if faults are armed:
    /// attempt `k` runs under `seed ^ k·φ64` (the first uses the plan's
    /// own seed unchanged), decorrelating retries from the corruption
    /// that killed the previous attempt. Every launch — single solve,
    /// batch instance, or batch retry — draws from the same epoch
    /// counter, which is what makes a batch solve reproduce a sequence
    /// of single solves bit-for-bit.
    pub(crate) fn next_fault_plan(&self) -> Option<ipu_sim::FaultPlan> {
        let plan = self.fault_plan.as_ref()?;
        let epoch = self.fault_epoch.get();
        self.fault_epoch.set(epoch.wrapping_add(1));
        let mut derived = plan.clone();
        derived.seed ^= epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Some(derived)
    }

    /// Loads one instance into a compiled engine, runs the device
    /// program, and extracts the verified-shape report. The engine must
    /// be pristine (fresh from [`HunIpu::compile_for`] or restored from a
    /// pristine snapshot); cycle statistics read back as exactly this
    /// instance's run.
    pub(crate) fn run_instance(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        start: Instant,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        // Arm (or disarm) faults per launch: a warm engine reused from a
        // pool may still carry the plan from a previous run, so a solver
        // with no plan must actively clear it.
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        // Load the instance (cast to the device's f32, as the real
        // implementation does) and the -1-initialized matching state.
        let slack_f32: Vec<f32> = matrix.as_slice().iter().map(|&x| x as f32).collect();
        engine.write_f32(t.slack, &slack_f32).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        self.extract_report(engine, t, matrix, start, false)
    }

    /// Loads a warm-start re-solve into a compiled *seeded* engine (from
    /// [`HunIpu::compile_for_seeded`]) and runs it. Instead of the raw
    /// cost matrix, the host uploads the repaired seed: the reduced slack
    /// (non-negative, exact `0.0` at each row argmin) and the feasible
    /// dual potentials `u, v`, exactly the state Step 1 would have
    /// produced had the duals been derivable by row/column subtractions.
    /// The matching state starts at −1 as in a cold solve; Step 2's
    /// greedy starring rebuilds the matching from the (near-complete)
    /// zero structure, and the search loop repairs the remainder.
    pub(crate) fn run_instance_seeded(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        seed: &lsap::RepairedSeedF32,
        start: Instant,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        engine.write_f32(t.slack, &seed.slack).map_err(backend)?;
        engine.write_f32(t.u, &seed.u).map_err(backend)?;
        engine.write_f32(t.v, &seed.v).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        self.extract_report(engine, t, matrix, start, true)
    }

    /// Reads the finished device state back into a [`SolveReport`] —
    /// shared by the cold and seeded launch paths.
    fn extract_report(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        start: Instant,
        seeded: bool,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let row_star = engine.read_i32(t.row_star);
        let row_to_col = row_star
            .iter()
            .map(|&j| (j >= 0).then_some(j as usize))
            .collect();
        let assignment = Assignment::from_row_to_col(row_to_col);
        let objective = assignment.cost(matrix)?;
        let u: Vec<f64> = engine.read_f32(t.u).iter().map(|&x| x as f64).collect();
        let v: Vec<f64> = engine.read_f32(t.v).iter().map(|&x| x as f64).collect();
        // Each augmentation grows the matching by one row, so a sane run
        // records at most n; each dual update visits at least one new
        // column between augmentations, bounding the total by n per
        // augmentation. Anything outside these bounds (negative included —
        // a naive `as u64` cast would wrap a corrupted -1 to 2^64-1) means
        // the counter itself was hit by a fault.
        let augmentations = read_counter(engine, t.ctr_aug, "ctr_aug", n as u64)?;
        let dual_updates = read_counter(engine, t.ctr_dual, "ctr_dual", (n as u64).pow(2))?;

        let stats = SolverStats {
            modeled_seconds: Some(engine.modeled_seconds()),
            modeled_cycles: Some(engine.stats().total_cycles()),
            wall_seconds: start.elapsed().as_secs_f64(),
            augmentations,
            dual_updates,
            device_steps: engine.stats().supersteps,
            profile_events: engine
                .profile()
                .map_or(0, |p| p.events.len() as u64 + p.dropped),
            seeded,
            ..Default::default()
        };
        Ok(SolveReport {
            assignment,
            objective,
            certificate: DualCertificate::new(u, v),
            stats,
        })
    }
}

/// Reads a device step counter and validates it against its theoretical
/// bound, turning corrupted values into [`LsapError::Backend`] instead of
/// nonsense statistics.
fn read_counter(
    engine: &mut ipu_sim::Engine,
    tensor: ipu_sim::Tensor,
    name: &str,
    max_plausible: u64,
) -> Result<u64, LsapError> {
    let raw = engine.read_i32(tensor)[0];
    if raw < 0 {
        return Err(LsapError::Backend {
            detail: format!(
                "device counter `{name}` read back negative ({raw}); memory corruption suspected"
            ),
        });
    }
    let value = raw as u64;
    if value > max_plausible {
        return Err(LsapError::Backend {
            detail: format!(
                "device counter `{name}` = {value} exceeds its theoretical bound \
                 {max_plausible}; memory corruption suspected"
            ),
        });
    }
    Ok(value)
}

impl LsapSolver for HunIpu {
    fn name(&self) -> &'static str {
        "hunipu"
    }

    fn solve(&mut self, matrix: &CostMatrix) -> Result<SolveReport, LsapError> {
        self.solve_with_engine(matrix).map(|(report, _)| report)
    }
}
