//! The [`HunIpu`] solver: builds the static graph for an instance size,
//! loads the cost matrix, runs the device program, and extracts the
//! verified result.

use crate::build::{Builder, Storage};
use crate::layout::Layout;
use ipu_sim::{FaultPlan, IpuConfig, ProfileConfig};
use lsap::sparse::SparseCost;
use lsap::{
    Assignment, CostMatrix, DualCertificate, LsapError, LsapSolver, SolveReport, SolverStats,
};
use std::cell::Cell;
use std::time::Instant;

/// Relative tolerance for verifying HunIPU results: the device computes
/// in f32 (as the real IPU implementation does), so certificates carry
/// single-precision round-off. Instances with integer costs below 2^24
/// verify exactly.
pub const F32_VERIFY_EPS: f64 = 1e-5;

/// How the solver lays work out across the device's chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutMode {
    /// Chip-aware on multi-IPU configs, flat on single-chip (the default).
    #[default]
    Auto,
    /// Force the chip-oblivious round-robin layout everywhere. On
    /// multi-IPU configs this is the seed behavior: column segments and
    /// collector traffic ignore chip boundaries, so most exchange phases
    /// pay IPU-Link bandwidth. Kept for differential tests and as the
    /// baseline the multi-IPU bench compares against.
    Flat,
    /// Force the chip-aware layout: rows block-partitioned per chip,
    /// column segments round-robined within their owning chip, and
    /// reductions/broadcasts restructured as hierarchical exchanges that
    /// cross each IPU-Link once per phase. Requires `config.ipus > 1`
    /// (single-chip chip-aware degenerates to flat by construction).
    ChipAware,
    /// Force the out-of-core tiled layout: the cost matrix stays
    /// host-resident and streams through PCIe block by block, while
    /// duals, matching state, and one active block live in SRAM. Breaks
    /// the dense SRAM ceiling (per-tile memory `O(n·block_cols/tiles)`
    /// instead of `O(n²/tiles)`) at the price of re-streaming the matrix
    /// every search sweep. Requires integer costs below 2^24 (the
    /// streamed slack is recomputed in f32 on the fly). Single-chip
    /// structure; [`LayoutMode::Auto`] upgrades to this automatically
    /// when the dense slack cannot fit the per-tile budget.
    Tiled,
}

/// The paper's IPU-optimized Hungarian algorithm, executed on the
/// [`ipu_sim`] machine model.
///
/// Construction is cheap; the static graph is built per `solve` call for
/// the instance's size (the IPU compiles one program per tensor shape —
/// §III-A). Reuse across same-size instances is available through
/// [`HunIpu::solve_report_with_engine`]-style helpers in the bench crate.
#[derive(Debug, Clone)]
pub struct HunIpu {
    config: IpuConfig,
    col_seg: usize,
    ablation: crate::ablation::AblationConfig,
    fault_plan: Option<FaultPlan>,
    /// Number of solves already launched with faults armed; decorrelates
    /// the fault stream across retries (see [`HunIpu::with_fault_plan`]).
    fault_epoch: Cell<u64>,
    profile: Option<ProfileConfig>,
    layout_mode: LayoutMode,
    tiled_block_cols: usize,
    tiled_zcap: usize,
}

/// Default streamed-block width for [`LayoutMode::Tiled`] (columns per
/// PCIe block; the resident work buffer is `n × TILED_BLOCK_COLS` f32
/// spread over the row owners).
pub const TILED_BLOCK_COLS: usize = 512;

/// Default zero-list capacity per row for [`LayoutMode::Tiled`] — the
/// bounded Step 2 warm-start lists (the search loop itself rescans
/// streamed blocks, so truncation only costs iterations, never
/// correctness).
pub const TILED_ZCAP: usize = 8;

impl Default for HunIpu {
    fn default() -> Self {
        Self::new()
    }
}

impl HunIpu {
    /// A solver targeting the paper's Mk2 device.
    pub fn new() -> Self {
        Self {
            config: IpuConfig::mk2(),
            col_seg: crate::COL_SEG_DEFAULT,
            ablation: Default::default(),
            fault_plan: None,
            fault_epoch: Cell::new(0),
            profile: None,
            layout_mode: LayoutMode::Auto,
            tiled_block_cols: TILED_BLOCK_COLS,
            tiled_zcap: TILED_ZCAP,
        }
    }

    /// A solver targeting a custom device (smaller configs are useful in
    /// tests; ablations sweep parameters).
    pub fn with_config(config: IpuConfig) -> Self {
        Self {
            config,
            ..Self::new()
        }
    }

    /// Overrides the column-segment size of §IV-E (default 32) — used by
    /// the segment-size ablation.
    pub fn with_col_seg(mut self, col_seg: usize) -> Self {
        assert!(col_seg >= 1);
        self.col_seg = col_seg;
        self
    }

    /// Overrides the ablation toggles (compression, dynamic-slice
    /// strategy); the default is the paper's design.
    pub fn with_ablation(mut self, ablation: crate::ablation::AblationConfig) -> Self {
        self.ablation = ablation;
        self
    }

    /// Arms a [`FaultPlan`] on every engine this solver builds, simulating
    /// a faulty device.
    ///
    /// The plan's seed is the seed of the *first* solve; each subsequent
    /// solve on the same `HunIpu` derives a fresh seed from it, so a retry
    /// (e.g. driven by [`lsap::ResilientSolver`]) sees a different fault
    /// pattern rather than deterministically replaying the corruption that
    /// just killed it — matching real soft-error behavior while keeping
    /// whole-experiment reproducibility.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self.fault_epoch.set(0);
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Arms or disarms the fault plan in place — the serving layer uses
    /// this to start and stop fault storms mid-run without rebuilding the
    /// solver or its pooled engines (the plan is applied per launch, so
    /// already-compiled warm engines pick the change up on their next
    /// solve). Resets the fault epoch: re-arming the same plan replays
    /// the same fault stream.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        self.fault_epoch.set(0);
    }

    /// Enables the per-tile execution profiler on every engine this
    /// solver builds. The timeline is recovered from the engine returned
    /// by [`HunIpu::solve_with_engine`] (via `profile_report` /
    /// `chrome_trace`); [`lsap::SolverStats::profile_events`] counts the
    /// captured events either way.
    pub fn with_profiling(mut self, config: ProfileConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// The armed profiler configuration, if any.
    pub fn profile_config(&self) -> Option<&ProfileConfig> {
        self.profile.as_ref()
    }

    /// Overrides the [`LayoutMode`] (default [`LayoutMode::Auto`]) — used
    /// by differential tests and the multi-IPU bench to pin the
    /// chip-oblivious baseline.
    pub fn with_layout_mode(mut self, mode: LayoutMode) -> Self {
        self.layout_mode = mode;
        self
    }

    /// The layout mode this solver compiles with.
    pub fn layout_mode(&self) -> LayoutMode {
        self.layout_mode
    }

    /// Whether [`HunIpu::compile_for`] will build the chip-aware
    /// hierarchical program for this solver's config and layout mode.
    pub fn hierarchical(&self) -> bool {
        match self.layout_mode {
            LayoutMode::Auto => self.config.ipus > 1,
            LayoutMode::Flat => false,
            LayoutMode::ChipAware => true,
            LayoutMode::Tiled => false,
        }
    }

    /// Overrides the tiled streaming parameters (block width and
    /// zero-list capacity; defaults [`TILED_BLOCK_COLS`], [`TILED_ZCAP`]).
    pub fn with_tiled_params(mut self, block_cols: usize, zcap: usize) -> Self {
        assert!(block_cols >= 1 && zcap >= 1);
        self.tiled_block_cols = block_cols;
        self.tiled_zcap = zcap;
        self
    }

    /// Whether the dense in-SRAM program plausibly fits the per-tile
    /// memory budget for instance size `n` — the [`LayoutMode::Auto`]
    /// upgrade heuristic. The authoritative gate stays
    /// `Graph::compile`'s per-tile accounting; this estimate counts the
    /// two `O(n²/tiles)` tensors (f32 slack + i32 compress) plus the
    /// replicated n-length mirrors.
    pub fn dense_fits(&self, n: usize) -> bool {
        let tiles = self.config.tiles.min(n.max(1));
        let rows_per_tile = n.div_ceil(tiles);
        let bytes = rows_per_tile * n * 8 + 6 * n * 4;
        bytes <= self.config.tile_memory_bytes
    }

    /// Whether a square instance of size `n` goes through the tiled
    /// out-of-core path: forced by [`LayoutMode::Tiled`], or chosen by
    /// [`LayoutMode::Auto`] when the dense program cannot fit SRAM
    /// (compile would reject it anyway).
    pub fn takes_tiled_path(&self, n: usize) -> bool {
        match self.layout_mode {
            LayoutMode::Tiled => true,
            LayoutMode::Auto => !self.dense_fits(n),
            LayoutMode::Flat | LayoutMode::ChipAware => false,
        }
    }

    /// The device configuration this solver targets.
    pub fn config(&self) -> &IpuConfig {
        &self.config
    }

    /// Builds and runs the device program, returning the report plus the
    /// engine (for cycle-level inspection in benches/ablations).
    pub fn solve_with_engine(
        &self,
        matrix: &CostMatrix,
    ) -> Result<(SolveReport, ipu_sim::Engine), LsapError> {
        let n = self.validate_size(matrix)?;
        let start = Instant::now();
        let (mut engine, t) = self.compile_for(n)?;
        let report = self.run_instance(&mut engine, &t, matrix, start)?;
        Ok((report, engine))
    }

    /// Rejects shapes the device program cannot represent, returning `n`.
    pub(crate) fn validate_size(&self, matrix: &CostMatrix) -> Result<usize, LsapError> {
        if !matrix.is_square() {
            return Err(LsapError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let n = matrix.n();
        if n >= (1 << 24) {
            return Err(LsapError::Backend {
                detail: format!("instance size {n} exceeds the 2^24 arg-max encoding limit"),
            });
        }
        Ok(n)
    }

    /// Builds and compiles the static solve program for instance size `n`
    /// (the expensive, shape-dependent step — C4). The returned engine is
    /// pristine: batch serving snapshots it once and streams instances
    /// through it via [`HunIpu::run_instance`].
    pub(crate) fn compile_for(
        &self,
        n: usize,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        self.compile_with(n, false)
    }

    /// Builds and compiles the warm-start re-solve program for instance
    /// size `n`: the same graph as [`HunIpu::compile_for`] driven by
    /// [`Builder::assemble_seeded`] (no Step 1 — the host uploads the
    /// reduced slack and repaired duals). A separate program in a
    /// separate engine so the cold path's cycle accounting is untouched.
    pub(crate) fn compile_for_seeded(
        &self,
        n: usize,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        self.compile_with(n, true)
    }

    fn compile_with(
        &self,
        n: usize,
        seeded: bool,
    ) -> Result<(ipu_sim::Engine, crate::build::Ts), LsapError> {
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        let layout = if self.hierarchical() {
            Layout::chip_aware(
                n,
                self.config.threads_per_tile,
                self.col_seg,
                self.config.ipus,
                self.config.tiles_per_ipu,
            )
        } else {
            Layout::with_col_seg(
                n,
                self.config.tiles,
                self.config.threads_per_tile,
                self.col_seg,
            )
        };
        let mut builder =
            Builder::with_layout(self.config.clone(), layout, self.ablation).map_err(backend)?;
        let program = if seeded {
            builder.assemble_seeded().map_err(backend)?
        } else {
            builder.assemble().map_err(backend)?
        };
        let Builder { g, t, .. } = builder;
        let mut engine = g.compile(program).map_err(backend)?;
        if let Some(cfg) = &self.profile {
            engine.enable_profiling(cfg.clone());
        }
        Ok((engine, t))
    }

    /// The fault plan for the next engine run, if faults are armed:
    /// attempt `k` runs under `seed ^ k·φ64` (the first uses the plan's
    /// own seed unchanged), decorrelating retries from the corruption
    /// that killed the previous attempt. Every launch — single solve,
    /// batch instance, or batch retry — draws from the same epoch
    /// counter, which is what makes a batch solve reproduce a sequence
    /// of single solves bit-for-bit.
    pub(crate) fn next_fault_plan(&self) -> Option<ipu_sim::FaultPlan> {
        let plan = self.fault_plan.as_ref()?;
        let epoch = self.fault_epoch.get();
        self.fault_epoch.set(epoch.wrapping_add(1));
        let mut derived = plan.clone();
        derived.seed ^= epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Some(derived)
    }

    /// Loads one instance into a compiled engine, runs the device
    /// program, and extracts the verified-shape report. The engine must
    /// be pristine (fresh from [`HunIpu::compile_for`] or restored from a
    /// pristine snapshot); cycle statistics read back as exactly this
    /// instance's run.
    pub(crate) fn run_instance(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        start: Instant,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        // Arm (or disarm) faults per launch: a warm engine reused from a
        // pool may still carry the plan from a previous run, so a solver
        // with no plan must actively clear it.
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        // Load the instance (cast to the device's f32, as the real
        // implementation does) and the -1-initialized matching state.
        let slack_f32: Vec<f32> = matrix.as_slice().iter().map(|&x| x as f32).collect();
        engine.write_f32(t.slack, &slack_f32).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        self.extract_report(engine, t, matrix, start, false)
    }

    /// Loads a warm-start re-solve into a compiled *seeded* engine (from
    /// [`HunIpu::compile_for_seeded`]) and runs it. Instead of the raw
    /// cost matrix, the host uploads the repaired seed: the reduced slack
    /// (non-negative, exact `0.0` at each row argmin) and the feasible
    /// dual potentials `u, v`, exactly the state Step 1 would have
    /// produced had the duals been derivable by row/column subtractions.
    /// The matching state starts at −1 as in a cold solve; Step 2's
    /// greedy starring rebuilds the matching from the (near-complete)
    /// zero structure, and the search loop repairs the remainder.
    pub(crate) fn run_instance_seeded(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        seed: &lsap::RepairedSeedF32,
        start: Instant,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        engine.write_f32(t.slack, &seed.slack).map_err(backend)?;
        engine.write_f32(t.u, &seed.u).map_err(backend)?;
        engine.write_f32(t.v, &seed.v).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        self.extract_report(engine, t, matrix, start, true)
    }

    /// Reads the finished device state back into a [`SolveReport`] —
    /// shared by the cold and seeded launch paths.
    fn extract_report(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        matrix: &CostMatrix,
        start: Instant,
        seeded: bool,
    ) -> Result<SolveReport, LsapError> {
        let n = matrix.n();
        let row_star = engine.read_i32(t.row_star);
        let row_to_col = row_star
            .iter()
            .map(|&j| (j >= 0).then_some(j as usize))
            .collect();
        let assignment = Assignment::from_row_to_col(row_to_col);
        let objective = assignment.cost(matrix)?;
        let u: Vec<f64> = engine.read_f32(t.u).iter().map(|&x| x as f64).collect();
        let v: Vec<f64> = engine.read_f32(t.v).iter().map(|&x| x as f64).collect();
        // Each augmentation grows the matching by one row, so a sane run
        // records at most n; each dual update visits at least one new
        // column between augmentations, bounding the total by n per
        // augmentation. Anything outside these bounds (negative included —
        // a naive `as u64` cast would wrap a corrupted -1 to 2^64-1) means
        // the counter itself was hit by a fault.
        let augmentations = read_counter(engine, t.ctr_aug, "ctr_aug", n as u64)?;
        let dual_updates = read_counter(engine, t.ctr_dual, "ctr_dual", (n as u64).pow(2))?;

        let stats = SolverStats {
            modeled_seconds: Some(engine.modeled_seconds()),
            modeled_cycles: Some(engine.stats().total_cycles()),
            wall_seconds: start.elapsed().as_secs_f64(),
            augmentations,
            dual_updates,
            device_steps: engine.stats().supersteps,
            profile_events: engine
                .profile()
                .map_or(0, |p| p.events.len() as u64 + p.dropped),
            seeded,
            ..Default::default()
        };
        Ok(SolveReport {
            assignment,
            objective,
            certificate: DualCertificate::new(u, v),
            stats,
        })
    }

    /// Solves a k-candidate sparse instance on the device: only the `k`
    /// candidate costs and column ids per row are resident (per-tile
    /// memory `O(n·k/tiles)`), and the Step 1/4/6 fragments operate on
    /// candidate positions with an indirect column map. When the
    /// candidate graph admits no perfect matching the device latches an
    /// infeasibility flag (non-finite δ ⇒ Hall violation) and the call
    /// returns [`LsapError::SparseInfeasible`] — the signal
    /// [`HunIpu::solve_pruned`] uses to escalate `k`.
    ///
    /// The certificate is a valid dual for the *sparse* instance; against
    /// the dense instance it may overshoot on pruned entries, which is
    /// exactly what [`lsap::violated_entries`] screens for.
    pub fn solve_sparse(&self, sc: &SparseCost) -> Result<SolveReport, LsapError> {
        self.solve_sparse_with_engine(sc).map(|(report, _)| report)
    }

    /// [`HunIpu::solve_sparse`], also returning the engine for
    /// cycle-level inspection.
    pub fn solve_sparse_with_engine(
        &self,
        sc: &SparseCost,
    ) -> Result<(SolveReport, ipu_sim::Engine), LsapError> {
        let (n, k) = (sc.n(), sc.k());
        if n >= (1 << 24) {
            return Err(LsapError::Backend {
                detail: format!("instance size {n} exceeds the 2^24 arg-max encoding limit"),
            });
        }
        let start = Instant::now();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        // The sparse program is single-chip flat by construction, and the
        // position-indexed status scan requires the compressed zero lists.
        let mut ablation = self.ablation;
        ablation.compression = true;
        let layout = Layout::with_col_seg(
            n,
            self.config.tiles,
            self.config.threads_per_tile,
            self.col_seg,
        )
        .with_width(k);
        let mut builder = Builder::with_layout_storage(
            self.config.clone(),
            layout,
            ablation,
            Storage::Sparse { k },
        )
        .map_err(backend)?;
        let program = builder.assemble().map_err(backend)?;
        let Builder { g, t, .. } = builder;
        let mut engine = g.compile(program).map_err(backend)?;
        if let Some(cfg) = &self.profile {
            engine.enable_profiling(cfg.clone());
        }
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        let costs_f32: Vec<f32> = sc.costs_flat().iter().map(|&x| x as f32).collect();
        engine.write_f32(t.slack, &costs_f32).map_err(backend)?;
        let cand_i32: Vec<i32> = sc.cols_flat().iter().map(|&c| c as i32).collect();
        let t_cand = t.cand.expect("sparse storage has cand");
        engine.write_i32(t_cand, &cand_i32).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        let t_inf = t.infeasible.expect("sparse storage has infeasible");
        if engine.read_i32(t_inf)[0] != 0 {
            return Err(LsapError::SparseInfeasible { k });
        }
        let report = self.extract_report_sparse(&mut engine, &t, sc, start)?;
        Ok((report, engine))
    }

    /// [`HunIpu::extract_report`] for the sparse path: the objective
    /// comes from candidate costs (there is no dense matrix), and a
    /// matched edge outside the candidate set is memory corruption.
    fn extract_report_sparse(
        &self,
        engine: &mut ipu_sim::Engine,
        t: &crate::build::Ts,
        sc: &SparseCost,
        start: Instant,
    ) -> Result<SolveReport, LsapError> {
        let n = sc.n();
        let row_star = engine.read_i32(t.row_star);
        let row_to_col = row_star
            .iter()
            .map(|&j| (j >= 0).then_some(j as usize))
            .collect();
        let assignment = Assignment::from_row_to_col(row_to_col);
        let mut objective = 0.0;
        for (i, j) in assignment.pairs() {
            objective += sc.cost_of(i, j).ok_or_else(|| LsapError::Backend {
                detail: format!(
                    "sparse solve matched row {i} to column {j}, which is not a \
                     candidate; memory corruption suspected"
                ),
            })?;
        }
        let u: Vec<f64> = engine.read_f32(t.u).iter().map(|&x| x as f64).collect();
        let v: Vec<f64> = engine.read_f32(t.v).iter().map(|&x| x as f64).collect();
        let augmentations = read_counter(engine, t.ctr_aug, "ctr_aug", n as u64)?;
        let dual_updates = read_counter(engine, t.ctr_dual, "ctr_dual", (n as u64).pow(2))?;
        let stats = SolverStats {
            modeled_seconds: Some(engine.modeled_seconds()),
            modeled_cycles: Some(engine.stats().total_cycles()),
            wall_seconds: start.elapsed().as_secs_f64(),
            augmentations,
            dual_updates,
            device_steps: engine.stats().supersteps,
            profile_events: engine
                .profile()
                .map_or(0, |p| p.events.len() as u64 + p.dropped),
            ..Default::default()
        };
        Ok(SolveReport {
            assignment,
            objective,
            certificate: DualCertificate::new(u, v),
            stats,
        })
    }

    /// Solves a dense instance out-of-core via [`LayoutMode::Tiled`]
    /// block streaming, returning the report plus the engine. The cost
    /// matrix lives in a host tensor and streams through PCIe one
    /// `block_cols`-wide block at a time; only duals, matching state,
    /// and the active block are SRAM-resident, so instances whose dense
    /// slack would blow the per-tile budget still compile and solve.
    ///
    /// Costs must be integers with magnitude below 2^24: the streamed
    /// slack `c − u − v` is recomputed in f32 every sweep, and integer
    /// arithmetic is what keeps those recomputations exact (the same
    /// contract [`datasets::f32_exact`] documents for the dense path,
    /// hardened here into a precondition because zero-detection drives
    /// the search).
    pub fn solve_tiled(
        &self,
        matrix: &CostMatrix,
    ) -> Result<(SolveReport, ipu_sim::Engine), LsapError> {
        let n = self.validate_size(matrix)?;
        if let Some(&bad) = matrix
            .as_slice()
            .iter()
            .find(|c| c.fract() != 0.0 || c.abs() >= (1u64 << 24) as f64)
        {
            return Err(LsapError::Backend {
                detail: format!(
                    "tiled solve requires integer costs with |c| < 2^24 (streamed \
                     slacks are recomputed in f32); found {bad}"
                ),
            });
        }
        let start = Instant::now();
        let backend = |e: ipu_sim::GraphError| LsapError::Backend {
            detail: e.to_string(),
        };
        let block_cols = self.tiled_block_cols.clamp(1, n);
        let zcap = self.tiled_zcap.clamp(1, n);
        let layout = Layout::with_col_seg(
            n,
            self.config.tiles,
            self.config.threads_per_tile,
            self.col_seg,
        )
        .with_width(zcap);
        let mut builder = Builder::with_layout_storage(
            self.config.clone(),
            layout,
            self.ablation,
            Storage::Tiled { block_cols, zcap },
        )
        .map_err(backend)?;
        let program = builder.assemble_tiled().map_err(backend)?;
        let Builder { g, t, .. } = builder;
        let mut engine = g.compile(program).map_err(backend)?;
        if let Some(cfg) = &self.profile {
            engine.enable_profiling(cfg.clone());
        }
        match self.next_fault_plan() {
            Some(plan) => engine.set_fault_plan(plan),
            None => engine.clear_fault_plan(),
        }

        let cost_f32: Vec<f32> = matrix.as_slice().iter().map(|&x| x as f32).collect();
        let t_host = t.host_cost.expect("tiled storage has host_cost");
        engine.write_f32(t_host, &cost_f32).map_err(backend)?;
        let neg1 = vec![-1i32; n];
        engine.write_i32(t.row_star, &neg1).map_err(backend)?;
        engine.write_i32(t.col_star, &neg1).map_err(backend)?;
        engine.write_i32(t.row_prime, &neg1).map_err(backend)?;

        engine.run().map_err(backend)?;
        let t_inf = t.infeasible.expect("tiled storage has infeasible");
        if engine.read_i32(t_inf)[0] != 0 {
            return Err(LsapError::Backend {
                detail: "tiled solve latched a non-finite δ on a square dense \
                         instance; memory corruption suspected"
                    .into(),
            });
        }
        let report = self.extract_report(&mut engine, &t, matrix, start, false)?;
        Ok((report, engine))
    }

    /// Solves `dense` through the sparse k-candidate engine with
    /// certificate repair ([`lsap::solve_pruned_with_repair`]): prune to
    /// `k` candidates per row, solve on-device, verify against the dense
    /// certificate, re-admit violated columns and re-solve on failure,
    /// falling back to the dense device solve only after `max_rounds`.
    pub fn solve_pruned(
        &self,
        dense: &CostMatrix,
        k: usize,
        max_rounds: u32,
    ) -> Result<lsap::RepairReport, LsapError> {
        lsap::solve_pruned_with_repair(
            dense,
            k,
            max_rounds,
            F32_VERIFY_EPS,
            |sc| self.solve_sparse(sc),
            |m| self.solve_with_engine(m).map(|(report, _)| report),
        )
    }
}

/// Reads a device step counter and validates it against its theoretical
/// bound, turning corrupted values into [`LsapError::Backend`] instead of
/// nonsense statistics.
fn read_counter(
    engine: &mut ipu_sim::Engine,
    tensor: ipu_sim::Tensor,
    name: &str,
    max_plausible: u64,
) -> Result<u64, LsapError> {
    let raw = engine.read_i32(tensor)[0];
    if raw < 0 {
        return Err(LsapError::Backend {
            detail: format!(
                "device counter `{name}` read back negative ({raw}); memory corruption suspected"
            ),
        });
    }
    let value = raw as u64;
    if value > max_plausible {
        return Err(LsapError::Backend {
            detail: format!(
                "device counter `{name}` = {value} exceeds its theoretical bound \
                 {max_plausible}; memory corruption suspected"
            ),
        });
    }
    Ok(value)
}

impl LsapSolver for HunIpu {
    fn name(&self) -> &'static str {
        "hunipu"
    }

    fn solve(&mut self, matrix: &CostMatrix) -> Result<SolveReport, LsapError> {
        if matrix.is_square() && self.takes_tiled_path(matrix.n()) {
            return self.solve_tiled(matrix).map(|(report, _)| report);
        }
        self.solve_with_engine(matrix).map(|(report, _)| report)
    }
}
