//! Data-to-tile layout for HunIPU.
//!
//! Implements the paper's mapping decisions:
//!
//! - **1D row decomposition (§IV-A):** each tile owns a contiguous block
//!   of matrix rows, with an (almost) equal number of rows per tile so
//!   the BSP supersteps stay balanced (C3).
//! - **Six per-row thread segments (§IV-B):** every row is split into six
//!   approximately equal column segments, one per hardware thread.
//! - **32-element column segments (§IV-E):** the per-column state
//!   (`col_star`, `col_cover`, `v`) is partitioned into segments of 32
//!   elements, distributed round-robin over the row-owning tiles. The
//!   paper finds 32 to work well "regardless of the data and the
//!   architecture"; the ablation harness sweeps this constant.
//! - **Chip-aware placement (multi-IPU):** on devices with more than one
//!   chip, [`Layout::chip_aware`] block-partitions the rows per chip,
//!   round-robins each chip's column segments over that chip's own
//!   row-owning tiles, and reserves the last tile of every chip as a
//!   *sub-collector* that stages the chip's share of reductions and
//!   broadcasts before anything crosses an IPU-Link. The root collector
//!   stays the device's last tile (the last chip's sub-collector), so
//!   single-chip layouts are bit-identical to the flat ones.

use std::ops::Range;

/// Default column-segment size for per-column state (§IV-E footnote).
pub const COL_SEG: usize = 32;

/// The static layout of one HunIPU instance on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Problem size (square matrix side).
    pub n: usize,
    /// Stored elements per row of the matrix-shaped tensors. Equal to
    /// `n` for the dense layouts; the sparse k-candidate layout stores
    /// only `k` entries per row, and the tiled out-of-core layout keeps
    /// just a small zero-list per row on the device. Thread segments
    /// ([`Layout::seg_cols`]) and flat row indexing
    /// ([`Layout::row_range`]) partition *this* width, so the step
    /// builders that walk per-row storage compile unchanged against
    /// narrow rows; the per-column state stays `n`-sized regardless.
    pub width: usize,
    /// Rows per tile (the last used tile may hold fewer).
    pub rows_per_tile: usize,
    /// Number of tiles that own matrix rows.
    pub used_tiles: usize,
    /// Hardware threads per tile (row segments per row).
    pub threads: usize,
    /// Column-segment size for per-column state.
    pub col_seg: usize,
    /// The tile hosting gathered scalars, reductions, and the green
    /// stack — chosen as the last tile of the device, which holds no (or
    /// the fewest) matrix rows, keeping its memory free (C2).
    pub collector_tile: usize,
    /// Chips the layout places data across. `1` means chip-oblivious
    /// (the flat layout, also used on multi-chip devices as the
    /// ablation baseline); `> 1` activates per-chip row blocks,
    /// per-chip column-segment round-robin, and sub-collectors.
    pub chips: usize,
    /// Tiles per chip (the whole device when `chips == 1`).
    pub tiles_per_chip: usize,
    /// Per-chip row ranges (`chips` entries; `[0..n]` when flat).
    chip_rows: Vec<Range<usize>>,
    /// Per-chip rows-per-tile (`chips` entries).
    chip_rpt: Vec<usize>,
}

impl Layout {
    /// Computes the layout for an `n x n` problem on a device with
    /// `tiles` tiles and `threads` threads per tile.
    ///
    /// # Panics
    /// Panics if `n == 0` or the device has fewer than 2 tiles.
    pub fn new(n: usize, tiles: usize, threads: usize) -> Self {
        Self::with_col_seg(n, tiles, threads, COL_SEG)
    }

    /// Layout with an explicit column-segment size (for the §IV-E
    /// ablation).
    pub fn with_col_seg(n: usize, tiles: usize, threads: usize, col_seg: usize) -> Self {
        assert!(n > 0, "empty problem");
        assert!(tiles >= 2, "need at least 2 tiles (one collector)");
        assert!(threads >= 1 && col_seg >= 1);
        // Spread rows over all tiles but the collector.
        let worker_tiles = tiles - 1;
        let rows_per_tile = n.div_ceil(worker_tiles).max(1);
        let used_tiles = n.div_ceil(rows_per_tile);
        Self {
            n,
            width: n,
            rows_per_tile,
            used_tiles,
            threads,
            col_seg,
            collector_tile: tiles - 1,
            chips: 1,
            tiles_per_chip: tiles,
            // One chip owning every row (a single Range, not 0..n items).
            chip_rows: std::iter::once(0..n).collect(),
            chip_rpt: vec![rows_per_tile],
        }
    }

    /// Chip-aware layout for a device of `chips` chips with
    /// `tiles_per_chip` tiles each: rows are block-partitioned per chip
    /// (balanced to within one row), each chip's last tile is its
    /// sub-collector, and the root collector is the device's last tile.
    /// With `chips == 1` this **is** [`Self::with_col_seg`] — the flat
    /// layout — which is what keeps single-chip solves bit-identical.
    ///
    /// # Panics
    /// Panics if `n == 0`, `chips == 0`, or any chip has fewer than
    /// 2 tiles.
    pub fn chip_aware(
        n: usize,
        threads: usize,
        col_seg: usize,
        chips: usize,
        tiles_per_chip: usize,
    ) -> Self {
        assert!(chips >= 1, "need at least one chip");
        if chips == 1 {
            return Self::with_col_seg(n, tiles_per_chip, threads, col_seg);
        }
        assert!(n > 0, "empty problem");
        assert!(
            tiles_per_chip >= 2,
            "need at least 2 tiles per chip (one sub-collector)"
        );
        assert!(threads >= 1 && col_seg >= 1);
        let workers_per_chip = tiles_per_chip - 1;
        let chip_rows: Vec<Range<usize>> = (0..chips)
            .map(|c| c * n / chips..(c + 1) * n / chips)
            .collect();
        let chip_rpt: Vec<usize> = chip_rows
            .iter()
            .map(|r| r.len().div_ceil(workers_per_chip).max(1))
            .collect();
        let used_tiles = chip_rows
            .iter()
            .zip(&chip_rpt)
            .map(|(r, &rpt)| r.len().div_ceil(rpt))
            .sum();
        let rows_per_tile = chip_rpt.iter().copied().max().unwrap_or(1);
        Self {
            n,
            width: n,
            rows_per_tile,
            used_tiles,
            threads,
            col_seg,
            collector_tile: chips * tiles_per_chip - 1,
            chips,
            tiles_per_chip,
            chip_rows,
            chip_rpt,
        }
    }

    /// Narrows the per-row storage width (candidates per row for the
    /// sparse layout, zero-list capacity for the tiled one). Row
    /// ownership and per-column state are untouched.
    ///
    /// # Panics
    /// Panics if `width` is zero or exceeds `n`.
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width >= 1 && width <= self.n, "width must be in 1..=n");
        self.width = width;
        self
    }

    /// The tile owning matrix row `row`.
    pub fn tile_of_row(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        if self.chips == 1 {
            return row / self.rows_per_tile;
        }
        let c = self
            .chip_rows
            .iter()
            .position(|r| r.contains(&row))
            .expect("row ranges cover 0..n");
        c * self.tiles_per_chip + (row - self.chip_rows[c].start) / self.chip_rpt[c]
    }

    /// The rows owned by tile `tile` (empty if the tile owns none).
    pub fn rows_of_tile(&self, tile: usize) -> Range<usize> {
        if self.chips == 1 {
            let start = (tile * self.rows_per_tile).min(self.n);
            let end = ((tile + 1) * self.rows_per_tile).min(self.n);
            return start..end;
        }
        let c = tile / self.tiles_per_chip;
        let local = tile % self.tiles_per_chip;
        let r = &self.chip_rows[c];
        let rpt = self.chip_rpt[c];
        let start = (r.start + local * rpt).min(r.end);
        let end = (r.start + (local + 1) * rpt).min(r.end);
        start..end
    }

    /// The chip hosting `tile`.
    pub fn chip_of_tile(&self, tile: usize) -> usize {
        tile / self.tiles_per_chip
    }

    /// The rows block-assigned to chip `chip` (the whole problem when
    /// flat).
    pub fn chip_row_range(&self, chip: usize) -> Range<usize> {
        self.chip_rows[chip].clone()
    }

    /// Chip `chip`'s staging tile: its last tile. The last chip's
    /// sub-collector coincides with [`collector_tile`]
    /// (Self::collector_tile), so the root of the reduction tree needs
    /// no extra hop.
    pub fn sub_collector(&self, chip: usize) -> usize {
        (chip + 1) * self.tiles_per_chip - 1
    }

    /// All sub-collectors in chip order — the `stages` argument the
    /// hierarchical poplib builders expect.
    pub fn chip_stages(&self) -> Vec<usize> {
        (0..self.chips).map(|c| self.sub_collector(c)).collect()
    }

    /// Row-owning tiles in row order. Contiguous `0..used_tiles` when
    /// flat; per-chip blocks with gaps at the sub-collectors when
    /// chip-aware.
    pub fn owner_tiles(&self) -> Vec<usize> {
        if self.chips == 1 {
            return (0..self.used_tiles).collect();
        }
        let mut tiles = Vec::with_capacity(self.used_tiles);
        for c in 0..self.chips {
            let used = self.chip_rows[c].len().div_ceil(self.chip_rpt[c]);
            tiles.extend((0..used).map(|i| c * self.tiles_per_chip + i));
        }
        tiles
    }

    /// Index of `tile`'s block in an owner-ranked mirror tensor (the
    /// `reduce_columns_mirrored*` builders emit one `n`-sized block per
    /// row-owning tile, in owner order). Equal to the tile id itself on
    /// flat layouts, where owner tiles are contiguous from 0; chip-aware
    /// layouts skip the per-chip sub-collector tiles, so the rank runs
    /// behind the tile id by one per preceding chip.
    pub fn mirror_block(&self, tile: usize) -> usize {
        if self.chips == 1 {
            return tile;
        }
        let c = tile / self.tiles_per_chip;
        let before: usize = (0..c).map(|cc| self.chip_owner_count(cc)).sum();
        let local = tile - c * self.tiles_per_chip;
        debug_assert!(
            local < self.chip_owner_count(c),
            "tile {tile} is not a row owner"
        );
        before + local
    }

    /// Number of row-owning tiles on chip `chip`.
    fn chip_owner_count(&self, chip: usize) -> usize {
        if self.chips == 1 {
            return self.used_tiles;
        }
        self.chip_rows[chip].len().div_ceil(self.chip_rpt[chip])
    }

    /// The position range of thread segment `seg` (`0..threads`) within
    /// a stored row ([`Layout::width`] elements), balanced to within one
    /// element. On dense layouts positions are column indices; on narrow
    /// layouts they index the per-row candidate/zero storage.
    pub fn seg_cols(&self, seg: usize) -> Range<usize> {
        debug_assert!(seg < self.threads);
        let base = self.width / self.threads;
        let extra = self.width % self.threads;
        let start = seg * base + seg.min(extra);
        let len = base + usize::from(seg < extra);
        start..(start + len)
    }

    /// Number of 32-element (or `col_seg`-element) column segments.
    pub fn n_col_segs(&self) -> usize {
        self.n.div_ceil(self.col_seg)
    }

    /// The column range of column segment `seg`.
    pub fn col_seg_cols(&self, seg: usize) -> Range<usize> {
        let start = seg * self.col_seg;
        start..(start + self.col_seg).min(self.n)
    }

    /// The tile owning column segment `seg`: round-robin over the
    /// row-owning tiles (so column-state owners also hold the
    /// column-minimum mirror built in Step 1).
    ///
    /// Chip-aware layouts first block-assign segments to chips
    /// (contiguous runs of `ceil(n_col_segs/chips)` segments), then
    /// round-robin within the owning chip's row-owning tiles — so
    /// per-column state is served by on-chip traffic wherever possible.
    /// A chip that owns no rows (only possible when `n < chips`) falls
    /// back to the global owner list.
    pub fn col_seg_tile(&self, seg: usize) -> usize {
        if self.chips == 1 {
            return seg % self.used_tiles;
        }
        let per = self.n_col_segs().div_ceil(self.chips);
        let c = (seg / per).min(self.chips - 1);
        let owners = self.chip_owner_count(c);
        if owners == 0 {
            let all = self.owner_tiles();
            return all[seg % all.len()];
        }
        c * self.tiles_per_chip + (seg - c * per) % owners
    }

    /// Flat range of row `row` inside an `n x width` row-major tensor.
    pub fn row_range(&self, row: usize) -> Range<usize> {
        row * self.width..(row + 1) * self.width
    }

    /// Flat range of `(row, thread segment)` inside an `n x width`
    /// row-major tensor.
    pub fn row_seg_range(&self, row: usize, seg: usize) -> Range<usize> {
        let c = self.seg_cols(seg);
        row * self.width + c.start..row * self.width + c.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_balanced_and_cover_everything() {
        let l = Layout::new(100, 8, 6);
        // 7 worker tiles -> ceil(100/7) = 15 rows per tile, 7 used tiles.
        assert_eq!(l.rows_per_tile, 15);
        assert_eq!(l.used_tiles, 7);
        let mut total = 0;
        for t in 0..l.used_tiles {
            let r = l.rows_of_tile(t);
            assert!(r.len() <= l.rows_per_tile);
            total += r.len();
        }
        assert_eq!(total, 100);
        assert_eq!(l.tile_of_row(0), 0);
        assert_eq!(l.tile_of_row(99), 6);
    }

    #[test]
    fn collector_is_last_tile() {
        let l = Layout::new(16, 4, 6);
        assert_eq!(l.collector_tile, 3);
        // Workers are tiles 0..3.
        assert!(l.used_tiles <= 3);
    }

    #[test]
    fn thread_segments_partition_each_row() {
        let l = Layout::new(17, 4, 6);
        let mut covered = 0;
        for s in 0..6 {
            let c = l.seg_cols(s);
            assert_eq!(c.start, covered);
            covered = c.end;
            // Balanced to within one element.
            assert!(c.len() == 2 || c.len() == 3);
        }
        assert_eq!(covered, 17);
    }

    #[test]
    fn col_segments_partition_columns() {
        let l = Layout::with_col_seg(70, 8, 6, 32);
        assert_eq!(l.n_col_segs(), 3);
        assert_eq!(l.col_seg_cols(0), 0..32);
        assert_eq!(l.col_seg_cols(2), 64..70);
        for s in 0..3 {
            assert!(l.col_seg_tile(s) < l.used_tiles);
        }
    }

    #[test]
    fn mk2_scale_layout_matches_paper_numbers() {
        // n = 8192 on 1472 tiles: 6 rows on most tiles, collector free.
        let l = Layout::new(8192, 1472, 6);
        assert_eq!(l.rows_per_tile, 6);
        assert_eq!(l.used_tiles, 1366);
        assert_eq!(l.collector_tile, 1471);
        assert!(l.rows_of_tile(1471).is_empty());
        // Per-tile slack block: 6 rows x 8192 cols x 4 B = 192 KiB, under
        // the 624 KiB budget even with the compressed matrix alongside.
        assert_eq!(6 * 8192 * 4, 192 * 1024);
    }

    #[test]
    fn row_seg_range_indexes_flat_tensor() {
        let l = Layout::new(12, 4, 6);
        assert_eq!(l.row_range(2), 24..36);
        let r = l.row_seg_range(2, 0);
        assert_eq!(r.start, 24);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn zero_size_rejected() {
        Layout::new(0, 4, 6);
    }

    #[test]
    fn narrow_width_partitions_row_storage_not_columns() {
        let l = Layout::new(64, 8, 6).with_width(8);
        // Thread segments split the 8 stored positions...
        let mut covered = 0;
        for s in 0..6 {
            let c = l.seg_cols(s);
            assert_eq!(c.start, covered);
            covered = c.end;
        }
        assert_eq!(covered, 8);
        assert_eq!(l.row_range(3), 24..32);
        // ...while per-column state stays n-sized.
        assert_eq!(l.n_col_segs(), 2);
        assert_eq!(l.col_seg_cols(1), 32..64);
        // Row ownership is unchanged by the width.
        assert_eq!(l.tile_of_row(63), Layout::new(64, 8, 6).tile_of_row(63));
    }

    #[test]
    fn tiny_problem_fewer_rows_than_workers() {
        // n=3 on 8 tiles: 1 row per tile, only 3 used tiles; the rest
        // (including the collector) own nothing.
        let l = Layout::new(3, 8, 6);
        assert_eq!(l.rows_per_tile, 1);
        assert_eq!(l.used_tiles, 3);
        assert_eq!(l.owner_tiles(), vec![0, 1, 2]);
        for t in 3..8 {
            assert!(l.rows_of_tile(t).is_empty());
        }
        for row in 0..3 {
            assert!(l.rows_of_tile(l.tile_of_row(row)).contains(&row));
        }
    }

    #[test]
    fn ragged_last_tile_when_n_not_divisible() {
        // n=10 on 5 tiles: 4 workers -> 3 rows per tile, last used tile
        // holds only one row; coverage is exact and non-overlapping.
        let l = Layout::new(10, 5, 6);
        assert_eq!(l.rows_per_tile, 3);
        assert_eq!(l.used_tiles, 4);
        assert_eq!(l.rows_of_tile(3), 9..10);
        let mut seen = vec![false; 10];
        for t in l.owner_tiles() {
            for r in l.rows_of_tile(t) {
                assert!(!seen[r], "row {r} owned twice");
                seen[r] = true;
                assert_eq!(l.tile_of_row(r), t);
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn col_seg_larger_than_n_is_one_segment() {
        let l = Layout::with_col_seg(10, 5, 6, 32);
        assert_eq!(l.n_col_segs(), 1);
        assert_eq!(l.col_seg_cols(0), 0..10);
        assert!(l.col_seg_tile(0) < l.used_tiles);
    }

    #[test]
    fn chip_aware_single_chip_is_exactly_flat() {
        // The bit-identity hinge: chips == 1 must not merely be
        // equivalent but the very same layout.
        for (n, tiles) in [(16, 4), (100, 8), (7, 8)] {
            assert_eq!(
                Layout::chip_aware(n, 6, 32, 1, tiles),
                Layout::with_col_seg(n, tiles, 6, 32)
            );
        }
    }

    #[test]
    fn chip_aware_partitions_rows_per_chip() {
        // n=100 on 4 chips x 8 tiles: 25 rows per chip over 7 workers.
        let l = Layout::chip_aware(100, 6, 32, 4, 8);
        assert_eq!(l.chips, 4);
        assert_eq!(l.collector_tile, 31);
        for c in 0..4 {
            assert_eq!(l.chip_row_range(c), c * 25..(c + 1) * 25);
            assert_eq!(l.sub_collector(c), c * 8 + 7);
            // Sub-collectors own no rows.
            assert!(l.rows_of_tile(l.sub_collector(c)).is_empty());
        }
        assert_eq!(l.chip_stages(), vec![7, 15, 23, 31]);
        // Every row is owned exactly once, by a tile on its own chip.
        let mut seen = vec![false; 100];
        for t in l.owner_tiles() {
            for r in l.rows_of_tile(t) {
                assert!(!seen[r]);
                seen[r] = true;
                assert_eq!(l.tile_of_row(r), t);
                assert_eq!(l.chip_of_tile(t), r / 25);
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn chip_aware_col_segs_stay_on_their_chip() {
        // 128 columns / 32 = 4 segments on 2 chips: segments 0-1 on
        // chip 0's owners, 2-3 on chip 1's.
        let l = Layout::chip_aware(128, 6, 32, 2, 8);
        assert_eq!(l.n_col_segs(), 4);
        assert_eq!(l.chip_of_tile(l.col_seg_tile(0)), 0);
        assert_eq!(l.chip_of_tile(l.col_seg_tile(1)), 0);
        assert_eq!(l.chip_of_tile(l.col_seg_tile(2)), 1);
        assert_eq!(l.chip_of_tile(l.col_seg_tile(3)), 1);
        // Segment owners are always row-owning tiles.
        let owners = l.owner_tiles();
        for s in 0..l.n_col_segs() {
            assert!(owners.contains(&l.col_seg_tile(s)));
        }
    }

    #[test]
    fn chip_aware_survives_fewer_rows_than_chips() {
        // n=3 on 4 chips x 4 tiles: one chip ends up rowless; column
        // segments fall back to the global owner list.
        let l = Layout::chip_aware(3, 6, 32, 4, 4);
        let owners = l.owner_tiles();
        assert_eq!(owners.len(), 3);
        let mut seen = vec![false; 3];
        for &t in &owners {
            for r in l.rows_of_tile(t) {
                seen[r] = true;
                assert_eq!(l.tile_of_row(r), t);
            }
        }
        assert!(seen.into_iter().all(|s| s));
        for s in 0..l.n_col_segs() {
            assert!(owners.contains(&l.col_seg_tile(s)));
        }
    }

    #[test]
    fn chip_aware_mk2_scale() {
        // n=8192 on 4 Mk2 chips: 2048 rows per chip over 1471 workers
        // -> 2 rows per tile, 1024 owners per chip.
        let l = Layout::chip_aware(8192, 6, 32, 4, 1472);
        assert_eq!(l.rows_per_tile, 2);
        assert_eq!(l.used_tiles, 4 * 1024);
        assert_eq!(l.collector_tile, 4 * 1472 - 1);
        assert_eq!(l.chip_row_range(1), 2048..4096);
        assert_eq!(l.tile_of_row(2048), 1472);
        assert_eq!(l.owner_tiles().len(), l.used_tiles);
    }
}
