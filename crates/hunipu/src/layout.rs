//! Data-to-tile layout for HunIPU.
//!
//! Implements the paper's mapping decisions:
//!
//! - **1D row decomposition (§IV-A):** each tile owns a contiguous block
//!   of matrix rows, with an (almost) equal number of rows per tile so
//!   the BSP supersteps stay balanced (C3).
//! - **Six per-row thread segments (§IV-B):** every row is split into six
//!   approximately equal column segments, one per hardware thread.
//! - **32-element column segments (§IV-E):** the per-column state
//!   (`col_star`, `col_cover`, `v`) is partitioned into segments of 32
//!   elements, distributed round-robin over the row-owning tiles. The
//!   paper finds 32 to work well "regardless of the data and the
//!   architecture"; the ablation harness sweeps this constant.

use std::ops::Range;

/// Default column-segment size for per-column state (§IV-E footnote).
pub const COL_SEG: usize = 32;

/// The static layout of one HunIPU instance on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Problem size (square matrix side).
    pub n: usize,
    /// Rows per tile (the last used tile may hold fewer).
    pub rows_per_tile: usize,
    /// Number of tiles that own matrix rows.
    pub used_tiles: usize,
    /// Hardware threads per tile (row segments per row).
    pub threads: usize,
    /// Column-segment size for per-column state.
    pub col_seg: usize,
    /// The tile hosting gathered scalars, reductions, and the green
    /// stack — chosen as the last tile of the device, which holds no (or
    /// the fewest) matrix rows, keeping its memory free (C2).
    pub collector_tile: usize,
}

impl Layout {
    /// Computes the layout for an `n x n` problem on a device with
    /// `tiles` tiles and `threads` threads per tile.
    ///
    /// # Panics
    /// Panics if `n == 0` or the device has fewer than 2 tiles.
    pub fn new(n: usize, tiles: usize, threads: usize) -> Self {
        Self::with_col_seg(n, tiles, threads, COL_SEG)
    }

    /// Layout with an explicit column-segment size (for the §IV-E
    /// ablation).
    pub fn with_col_seg(n: usize, tiles: usize, threads: usize, col_seg: usize) -> Self {
        assert!(n > 0, "empty problem");
        assert!(tiles >= 2, "need at least 2 tiles (one collector)");
        assert!(threads >= 1 && col_seg >= 1);
        // Spread rows over all tiles but the collector.
        let worker_tiles = tiles - 1;
        let rows_per_tile = n.div_ceil(worker_tiles).max(1);
        let used_tiles = n.div_ceil(rows_per_tile);
        Self {
            n,
            rows_per_tile,
            used_tiles,
            threads,
            col_seg,
            collector_tile: tiles - 1,
        }
    }

    /// The tile owning matrix row `row`.
    pub fn tile_of_row(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        row / self.rows_per_tile
    }

    /// The rows owned by tile `tile` (empty if the tile owns none).
    pub fn rows_of_tile(&self, tile: usize) -> Range<usize> {
        let start = (tile * self.rows_per_tile).min(self.n);
        let end = ((tile + 1) * self.rows_per_tile).min(self.n);
        start..end
    }

    /// The column range of thread segment `seg` (`0..threads`) within a
    /// row, balanced to within one element.
    pub fn seg_cols(&self, seg: usize) -> Range<usize> {
        debug_assert!(seg < self.threads);
        let base = self.n / self.threads;
        let extra = self.n % self.threads;
        let start = seg * base + seg.min(extra);
        let len = base + usize::from(seg < extra);
        start..(start + len)
    }

    /// Number of 32-element (or `col_seg`-element) column segments.
    pub fn n_col_segs(&self) -> usize {
        self.n.div_ceil(self.col_seg)
    }

    /// The column range of column segment `seg`.
    pub fn col_seg_cols(&self, seg: usize) -> Range<usize> {
        let start = seg * self.col_seg;
        start..(start + self.col_seg).min(self.n)
    }

    /// The tile owning column segment `seg`: round-robin over the
    /// row-owning tiles (so column-state owners also hold the
    /// column-minimum mirror built in Step 1).
    pub fn col_seg_tile(&self, seg: usize) -> usize {
        seg % self.used_tiles
    }

    /// Flat range of row `row` inside an `n x n` row-major tensor.
    pub fn row_range(&self, row: usize) -> Range<usize> {
        row * self.n..(row + 1) * self.n
    }

    /// Flat range of `(row, thread segment)` inside an `n x n` row-major
    /// tensor.
    pub fn row_seg_range(&self, row: usize, seg: usize) -> Range<usize> {
        let c = self.seg_cols(seg);
        row * self.n + c.start..row * self.n + c.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_balanced_and_cover_everything() {
        let l = Layout::new(100, 8, 6);
        // 7 worker tiles -> ceil(100/7) = 15 rows per tile, 7 used tiles.
        assert_eq!(l.rows_per_tile, 15);
        assert_eq!(l.used_tiles, 7);
        let mut total = 0;
        for t in 0..l.used_tiles {
            let r = l.rows_of_tile(t);
            assert!(r.len() <= l.rows_per_tile);
            total += r.len();
        }
        assert_eq!(total, 100);
        assert_eq!(l.tile_of_row(0), 0);
        assert_eq!(l.tile_of_row(99), 6);
    }

    #[test]
    fn collector_is_last_tile() {
        let l = Layout::new(16, 4, 6);
        assert_eq!(l.collector_tile, 3);
        // Workers are tiles 0..3.
        assert!(l.used_tiles <= 3);
    }

    #[test]
    fn thread_segments_partition_each_row() {
        let l = Layout::new(17, 4, 6);
        let mut covered = 0;
        for s in 0..6 {
            let c = l.seg_cols(s);
            assert_eq!(c.start, covered);
            covered = c.end;
            // Balanced to within one element.
            assert!(c.len() == 2 || c.len() == 3);
        }
        assert_eq!(covered, 17);
    }

    #[test]
    fn col_segments_partition_columns() {
        let l = Layout::with_col_seg(70, 8, 6, 32);
        assert_eq!(l.n_col_segs(), 3);
        assert_eq!(l.col_seg_cols(0), 0..32);
        assert_eq!(l.col_seg_cols(2), 64..70);
        for s in 0..3 {
            assert!(l.col_seg_tile(s) < l.used_tiles);
        }
    }

    #[test]
    fn mk2_scale_layout_matches_paper_numbers() {
        // n = 8192 on 1472 tiles: 6 rows on most tiles, collector free.
        let l = Layout::new(8192, 1472, 6);
        assert_eq!(l.rows_per_tile, 6);
        assert_eq!(l.used_tiles, 1366);
        assert_eq!(l.collector_tile, 1471);
        assert!(l.rows_of_tile(1471).is_empty());
        // Per-tile slack block: 6 rows x 8192 cols x 4 B = 192 KiB, under
        // the 624 KiB budget even with the compressed matrix alongside.
        assert_eq!(6 * 8192 * 4, 192 * 1024);
    }

    #[test]
    fn row_seg_range_indexes_flat_tensor() {
        let l = Layout::new(12, 4, 6);
        assert_eq!(l.row_range(2), 24..36);
        let r = l.row_seg_range(2, 0);
        assert_eq!(r.start, 24);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn zero_size_rejected() {
        Layout::new(0, 4, 6);
    }
}
