//! HunIPU — the paper's IPU-optimized Hungarian algorithm (§IV),
//! implemented on the [`ipu_sim`] machine model.
//!
//! The algorithm follows the paper's six-step decomposition exactly:
//!
//! 1. **Initial subtraction** (§IV-C): row minima via six per-row thread
//!    segments, then column minima via a cross-tile reduction tree,
//!    subtracted in parallel ("two floats at a time").
//! 2. **Initial matching** (§IV-D): compress the slack matrix (§IV-B),
//!    reduce the maximum per-row zero count τ, sort the compressed rows
//!    descending, and run τ parallel propose/decide/confirm passes over
//!    the sorted zero columns (Fig. 2).
//! 3. **Completion assessment** (§IV-E): cover starred columns in
//!    32-element segments distributed over tiles; a sum reduction decides
//!    termination.
//! 4. **Alternating-path search** (§IV-F): each row scans only its
//!    compressed zeros and publishes a −1/0/1 state; an arg-max reduction
//!    selects the action.
//! 5. **Path augmentation** (§IV-G): the alternating path is recorded in
//!    the `green_column` stack, with every runtime-index access built as
//!    a partition-and-distribute dynamic slice (Fig. 4); the flip then
//!    runs in parallel on all tiles.
//! 6. **Slack update** (§IV-H): per-thread segment minima, a global min
//!    reduction, a broadcast of Δ, the parallel shift, and re-compression.
//!
//! The machine constraints that shaped the paper's design (no atomics,
//! 624 KiB tiles, BSP synchronization, static graphs — §III-B) are
//! *enforced* by `ipu_sim` at graph-compile time, so this implementation
//! demonstrably respects them.
//!
//! Every solve returns an [`lsap::DualCertificate`]: the device tracks the
//! dual potentials `u, v` alongside the slack matrix (Step 1 initializes
//! them, Step 6 shifts them), so optimality is verifiable without any
//! reference solver.
//!
//! # Example
//!
//! ```
//! use lsap::{CostMatrix, LsapSolver};
//! use ipu_sim::IpuConfig;
//! use hunipu::HunIpu;
//!
//! let m = CostMatrix::from_rows(&[
//!     &[4.0, 1.0, 3.0],
//!     &[2.0, 0.0, 5.0],
//!     &[3.0, 2.0, 2.0],
//! ]).unwrap();
//! // A small simulated device keeps the doc test fast; `HunIpu::new()`
//! // targets the paper's 1472-tile Mk2.
//! let mut solver = HunIpu::with_config(IpuConfig::tiny(8));
//! let report = solver.solve(&m).unwrap();
//! assert_eq!(report.objective, 5.0);
//! report.verify(&m, hunipu::F32_VERIFY_EPS).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
mod batch;
mod build;
mod layout;
mod solver;
mod steps;
mod streaming;
mod warm;

pub use ablation::{AblationConfig, DynSlice};
pub use batch::{BatchHunIpu, BatchStrategy};
pub use layout::{Layout, COL_SEG};
pub use solver::{HunIpu, LayoutMode, F32_VERIFY_EPS, TILED_BLOCK_COLS, TILED_ZCAP};
pub use streaming::StreamingHunIpu;
pub use warm::WarmEngine;

/// Default column-segment size (§IV-E footnote: "we empirically find
/// that 32 works well regardless of the data and the architecture").
pub const COL_SEG_DEFAULT: usize = 32;
