//! The six HunIPU steps (§IV-C through §IV-H), each built as a program
//! fragment over the static graph.

use crate::build::{Builder, Storage};
use ipu_sim::kernels;
use ipu_sim::poplib::{reduce_columns_mirrored, reduce_columns_mirrored_hier, ReduceOp};
use ipu_sim::{cost, Access, DType, GraphError, Program};

/// Bits of the row index inside the Step 4 arg-max encoding; supports
/// n < 2^24 (the paper's largest instance is 2^13).
const ENC_SHIFT: u32 = 24;
const ENC_MASK: i32 = (1 << ENC_SHIFT) - 1;

impl Builder {
    /// Step 1 (§IV-C): subtract row minima then column minima from the
    /// slack matrix, initializing the dual potentials `u` (row minima of
    /// C) and `v` (column minima of the row-reduced matrix).
    pub fn frag_step1(&mut self) -> Result<Program, GraphError> {
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let t_slack = self.t.slack;
        let t_segmin = self.t.seg_min;
        let t_u = self.t.u;

        // 1a: per-(row, thread-segment) minima — six threads per row, two
        // floats retrieved at a time (§IV-C).
        let cs_seg = self.g.add_compute_set("step1.rowmin.seg");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_seg, tile, s, "rowmin", |ctx| {
                        let seg = ctx.f32(0);
                        ctx.f32_mut(1)[0] = kernels::min_f32(&seg);
                        cost::f32_scan(seg.len())
                    })?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g.connect(
                    v,
                    t_segmin.slice(row * th + s..row * th + s + 1),
                    Access::Write,
                )?;
            }
        }
        // 1b: combine the six per-segment minima into u[row].
        let cs_comb = self.g.add_compute_set("step1.rowmin.combine");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let v = self.g.add_vertex(cs_comb, tile, "rowmin.combine", |ctx| {
                let mins = ctx.f32(0);
                ctx.f32_mut(1)[0] = kernels::min_f32(&mins);
                cost::f32_scan(mins.len())
            })?;
            self.g
                .connect(v, t_segmin.slice(row * th..(row + 1) * th), Access::Read)?;
            self.g.connect(v, t_u.element(row), Access::Write)?;
        }
        // 1c: subtract u[row] from the row, segment-parallel.
        let cs_sub = self.g.add_compute_set("step1.rowsub");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_sub, tile, s, "rowsub", |ctx| {
                        let m = ctx.f32(0)[0];
                        let mut seg = ctx.f32_mut(1);
                        kernels::sub_scalar(&mut seg, m);
                        cost::f32_update(seg.len())
                    })?;
                self.g.connect(v, t_u.element(row), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::ReadWrite)?;
            }
        }

        // 1d: column minima of the row-reduced matrix, mirrored per tile.
        // Sparse storage scatters its candidate entries into per-owner
        // column vectors first (a stored entry's position no longer *is*
        // its column); dense reduces the slack matrix directly.
        // Min is order-exact, so the hierarchical variant (per-chip trees,
        // one link crossing) produces bit-identical minima on multi-chip
        // configs while the flat path stays byte-for-byte unchanged.
        if let Storage::Sparse { k } = self.storage {
            return self.frag_step1_sparse_tail(cs_seg, cs_comb, cs_sub, k);
        }
        let (colmirror, col_prog) = if l.chips > 1 {
            reduce_columns_mirrored_hier(
                &mut self.g,
                "step1.colmin",
                t_slack,
                n,
                n,
                ReduceOp::Min,
                &l.chip_stages(),
            )?
        } else {
            reduce_columns_mirrored(&mut self.g, "step1.colmin", t_slack, n, n, ReduceOp::Min)?
        };

        // 1e: subtract the column minima; 1f: initialize v from them.
        let cs_csub = self.g.add_compute_set("step1.colsub");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_csub, tile, s, "colsub", |ctx| {
                        let mins = ctx.f32(0);
                        let mut seg = ctx.f32_mut(1);
                        kernels::sub_elementwise(&mut seg, &mins);
                        cost::f32_update(seg.len())
                    })?;
                let cols = l.seg_cols(s);
                let blk = l.mirror_block(tile);
                self.g.connect(
                    v,
                    colmirror.slice(blk * n + cols.start..blk * n + cols.end),
                    Access::Read,
                )?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::ReadWrite)?;
            }
        }
        let cs_vinit = self.g.add_compute_set("step1.vinit");
        let t_v = self.t.v;
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let v = self.g.add_vertex(cs_vinit, tile, "vinit", |ctx| {
                let mins = ctx.f32(0);
                let mut out = ctx.f32_mut(1);
                out.copy_from_slice(&mins);
                cost::f32_update(out.len())
            })?;
            let cols = l.col_seg_cols(seg);
            let blk = l.mirror_block(tile);
            self.g.connect(
                v,
                colmirror.slice(blk * n + cols.start..blk * n + cols.end),
                Access::Read,
            )?;
            self.g.connect(v, t_v.slice(cols), Access::Write)?;
        }

        Ok(Program::seq(vec![
            Program::execute(cs_seg),
            Program::execute(cs_comb),
            Program::execute(cs_sub),
            col_prog,
            Program::execute(cs_csub),
            Program::execute(cs_vinit),
        ]))
    }

    /// Sparse tail of Step 1 (1d–1f): the stored entries carry explicit
    /// column ids, so the column minima come from a scatter — each owner
    /// tile folds its candidate entries into a full-width `n` partial
    /// vector (∞ where it holds no candidate), and the standard mirrored
    /// column reduction combines the partials. Subtraction and `v`
    /// initialization then index the mirror through `cand`. Columns that
    /// no row kept have an ∞ minimum; their `v` clamps to 0 (they can
    /// only matter on infeasible prunes, which Step 6's δ-guard reports).
    fn frag_step1_sparse_tail(
        &mut self,
        cs_seg: ipu_sim::ComputeSetId,
        cs_comb: ipu_sim::ComputeSetId,
        cs_sub: ipu_sim::ComputeSetId,
        k: usize,
    ) -> Result<Program, GraphError> {
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let t_slack = self.t.slack;
        let t_cand = self.t.cand.expect("sparse storage has cand");
        let owners = self.l.owner_tiles();

        // 1d: per-owner scatter of candidate minima, then the mirrored
        // column reduction (sparse runs on flat single-chip layouts).
        let scat = self
            .g
            .add_tensor("step1.scat", DType::F32, owners.len() * n);
        for (i, &tile) in owners.iter().enumerate() {
            self.g.map_slice(scat.slice(i * n..(i + 1) * n), tile)?;
        }
        let cs_scat = self.g.add_compute_set("step1.scatter");
        for (i, &tile) in owners.iter().enumerate() {
            let rows = l.rows_of_tile(tile);
            let v = self.g.add_vertex(cs_scat, tile, "scatter", |ctx| {
                let slack = ctx.f32(0);
                let cand = ctx.i32(1);
                let mut part = ctx.f32_mut(2);
                for p in part.iter_mut() {
                    *p = f32::INFINITY;
                }
                for (pos, &c) in cand.iter().enumerate() {
                    let c = c as usize;
                    part[c] = part[c].min(slack[pos]);
                }
                cost::f32_scan(slack.len()) + cost::f32_update(part.len())
            })?;
            self.g
                .connect(v, t_slack.slice(rows.start * k..rows.end * k), Access::Read)?;
            self.g
                .connect(v, t_cand.slice(rows.start * k..rows.end * k), Access::Read)?;
            self.g
                .connect(v, scat.slice(i * n..(i + 1) * n), Access::Write)?;
        }
        let (colmirror, col_prog) = reduce_columns_mirrored(
            &mut self.g,
            "step1.colmin",
            scat,
            owners.len(),
            n,
            ReduceOp::Min,
        )?;

        // 1e: subtract each stored entry's column minimum via `cand`.
        let cs_csub = self.g.add_compute_set("step1.colsub");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_csub, tile, s, "colsub", |ctx| {
                        let mins = ctx.f32(0);
                        let cand = ctx.i32(1);
                        let mut seg = ctx.f32_mut(2);
                        for (p, x) in seg.iter_mut().enumerate() {
                            *x -= mins[cand[p] as usize];
                        }
                        cost::f32_update(seg.len()) + cost::i32_scan(seg.len())
                    })?;
                let blk = l.mirror_block(tile);
                self.g
                    .connect(v, colmirror.slice(blk * n..(blk + 1) * n), Access::Read)?;
                self.g
                    .connect(v, t_cand.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::ReadWrite)?;
            }
        }

        // 1f: v from the column minima, ∞ (candidate-free column) → 0.
        let cs_vinit = self.g.add_compute_set("step1.vinit");
        let t_v = self.t.v;
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let v = self.g.add_vertex(cs_vinit, tile, "vinit", |ctx| {
                let mins = ctx.f32(0);
                let mut out = ctx.f32_mut(1);
                for (o, &m) in out.iter_mut().zip(mins.iter()) {
                    *o = if m.is_finite() { m } else { 0.0 };
                }
                cost::f32_update(out.len())
            })?;
            let cols = l.col_seg_cols(seg);
            let blk = l.mirror_block(tile);
            self.g.connect(
                v,
                colmirror.slice(blk * n + cols.start..blk * n + cols.end),
                Access::Read,
            )?;
            self.g.connect(v, t_v.slice(cols), Access::Write)?;
        }

        Ok(Program::seq(vec![
            Program::execute(cs_seg),
            Program::execute(cs_comb),
            Program::execute(cs_sub),
            Program::execute(cs_scat),
            col_prog,
            Program::execute(cs_csub),
            Program::execute(cs_vinit),
        ]))
    }

    /// Matrix compression (§IV-B, Fig. 1): per (row, thread segment),
    /// compact the zero positions to the front of the segment (−1
    /// padding) and count them.
    pub fn frag_compress(&mut self) -> Result<Program, GraphError> {
        if let Storage::Sparse { .. } = self.storage {
            return self.frag_compress_sparse();
        }
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let (t_slack, t_comp, t_zc) = (self.t.slack, self.t.compress, self.t.zero_count);
        let cs = self.g.add_compute_set("compress");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let cols = l.seg_cols(s);
                let col0 = cols.start as i32;
                let v = self
                    .g
                    .add_vertex_on_thread(cs, tile, s, "compress", move |ctx| {
                        let slack = ctx.f32(0);
                        let mut comp = ctx.i32_mut(1);
                        // Branchless compaction: store the candidate
                        // unconditionally, advance the cursor only on a
                        // zero. A non-zero's store lands at the same
                        // cursor and is overwritten by the next candidate
                        // (or the -1 fill), so the result is identical to
                        // the branchy loop — without the data-dependent
                        // branch that dominates this, the hottest codelet
                        // of the whole solve.
                        let comp = &mut comp[..slack.len()];
                        let mut k = 0;
                        for (off, &x) in slack.iter().enumerate() {
                            comp[k] = col0 + off as i32;
                            k += (x == 0.0) as usize;
                        }
                        for c in comp[k..].iter_mut() {
                            *c = -1;
                        }
                        ctx.i32_mut(2)[0] = k as i32;
                        cost::f32_scan(slack.len()) + cost::i32_update(slack.len())
                    })?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_comp.slice(l.row_seg_range(row, s)), Access::Write)?;
                self.g
                    .connect(v, t_zc.slice(row * th + s..row * th + s + 1), Access::Write)?;
            }
        }
        Ok(Program::execute(cs))
    }

    /// Sparse compression: identical compaction, but a stored zero's
    /// *column* comes from `cand` rather than its position — the rest of
    /// the pipeline (sort, propose/decide, the Step 4 status scan) already
    /// speaks absolute column ids, so everything downstream of the
    /// compressed matrix is representation-agnostic.
    fn frag_compress_sparse(&mut self) -> Result<Program, GraphError> {
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let (t_slack, t_comp, t_zc) = (self.t.slack, self.t.compress, self.t.zero_count);
        let t_cand = self.t.cand.expect("sparse storage has cand");
        let cs = self.g.add_compute_set("compress");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs, tile, s, "compress", move |ctx| {
                        let slack = ctx.f32(0);
                        let cand = ctx.i32(1);
                        let mut comp = ctx.i32_mut(2);
                        let comp = &mut comp[..slack.len()];
                        let mut k = 0;
                        for (off, &x) in slack.iter().enumerate() {
                            comp[k] = cand[off];
                            k += (x == 0.0) as usize;
                        }
                        for c in comp[k..].iter_mut() {
                            *c = -1;
                        }
                        ctx.i32_mut(3)[0] = k as i32;
                        cost::f32_scan(slack.len()) + cost::i32_update(slack.len())
                    })?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_cand.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_comp.slice(l.row_seg_range(row, s)), Access::Write)?;
                self.g
                    .connect(v, t_zc.slice(row * th + s..row * th + s + 1), Access::Write)?;
            }
        }
        Ok(Program::execute(cs))
    }

    /// Step 2 (§IV-D, Fig. 2): initial matching. Counts zeros per row,
    /// reduces the maximum τ, sorts each compressed row descending, and
    /// runs τ parallel proposal/decide/confirm passes over the sorted
    /// zero positions.
    pub fn frag_step2(&mut self) -> Result<Program, GraphError> {
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let t = self.t.clone();
        let (t_zc, t_total, t_comp) = (t.zero_count, t.row_total, t.compress);
        let (t_star, t_prop, t_cstar) = (t.row_star, t.prop, t.col_star);
        let (t_pass, t_pass_lt, t_pass_m, t_ma, t_mb) = (t.pass, t.pass_lt, t.pass_m, t.ma, t.mb);

        // Zeros per row and τ = max over rows.
        let cs_total = self.g.add_compute_set("step2.rowtotal");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let v = self.g.add_vertex(cs_total, tile, "rowtotal", |ctx| {
                let zc = ctx.i32(0);
                ctx.i32_mut(1)[0] = zc.iter().sum();
                cost::i32_scan(zc.len())
            })?;
            self.g
                .connect(v, t_zc.slice(row * th..(row + 1) * th), Access::Read)?;
            self.g.connect(v, t_total.element(row), Access::Write)?;
        }
        let (tau, tau_prog) = self.reduce_scalar("step2.tau", t_total, ReduceOp::Max)?;

        // Sort each compressed row descending (zero positions first, −1
        // padding last) — Poplar's sort operation in the paper.
        let cs_sort = self.g.add_compute_set("step2.sort");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let v = self.g.add_vertex(cs_sort, tile, "sort", |ctx| {
                let mut c = ctx.i32_mut(0);
                c.sort_unstable_by(|a, b| b.cmp(a));
                cost::sort(c.len())
            })?;
            self.g
                .connect(v, t_comp.slice(l.row_range(row)), Access::ReadWrite)?;
        }

        // pass = 0; pass_lt = pass < τ.
        let cs_init = self.g.add_compute_set("step2.passinit");
        self.collector_vertex(
            cs_init,
            "passinit",
            vec![
                (tau.whole(), Access::Read),
                (t_pass.whole(), Access::Write),
                (t_pass_lt.whole(), Access::Write),
            ],
            |ctx| {
                let tau = ctx.i32(0)[0];
                ctx.i32_mut(1)[0] = 0;
                ctx.i32_mut(2)[0] = i32::from(0 < tau);
                cost::scalar(3)
            },
        )?;

        // Pass body: propose → decide → confirm.
        let cs_prop = self.g.add_compute_set("step2.propose");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let row_i = row;
            let v = self.g.add_vertex(cs_prop, tile, "propose", move |ctx| {
                let pass = ctx.i32(0)[0] as usize;
                let star = ctx.i32(1)[0];
                let sorted = ctx.i32(2);
                let p = if star == -1 { sorted[pass] } else { -1 };
                ctx.i32_mut(3)[0] = p;
                let _ = row_i;
                cost::scalar(4)
            })?;
            self.g.connect(v, t_pass_m.whole(), Access::Read)?;
            self.g.connect(v, t_star.element(row), Access::Read)?;
            self.g
                .connect(v, t_comp.slice(l.row_range(row)), Access::Read)?;
            self.g.connect(v, t_prop.element(row), Access::Write)?;
        }
        // Multi-chip: broadcast straight from the distributed proposal
        // vector so the replica traffic is sourced from every owner tile
        // instead of serializing on the collector's IPU-Links. Single-chip
        // keeps the seed's gather-then-broadcast byte-for-byte.
        let row_intervals = self.row_block_intervals(1);
        let (prop_g, gather_prop) = if self.l.chips > 1 {
            (t_prop, Program::seq(vec![]))
        } else {
            self.gather_to_collector("step2.propg", t_prop, &row_intervals)?
        };

        let cs_decide = self.g.add_compute_set("step2.decide");
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let (c0, c1) = (cols.start as i32, cols.end as i32);
            let v = self.g.add_vertex(cs_decide, tile, "decide", move |ctx| {
                let props = ctx.i32(0);
                let mut stars = ctx.i32_mut(1);
                for (r, &p) in props.iter().enumerate() {
                    if p >= c0 && p < c1 && stars[(p - c0) as usize] == -1 {
                        stars[(p - c0) as usize] = r as i32;
                    }
                }
                cost::i32_scan(props.len())
            })?;
            self.g.connect(v, t_ma.whole(), Access::Read)?;
            self.g.connect(v, t_cstar.slice(cols), Access::ReadWrite)?;
        }
        let col_intervals = self.col_seg_intervals();
        let (cstar_g, gather_cstar) = if self.l.chips > 1 {
            (t_cstar, Program::seq(vec![]))
        } else {
            self.gather_to_collector("step2.cstarg", t_cstar, &col_intervals)?
        };

        let cs_confirm = self.g.add_compute_set("step2.confirm");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let row_i = row as i32;
            let v = self.g.add_vertex(cs_confirm, tile, "confirm", move |ctx| {
                let p = ctx.i32(0)[0];
                if p >= 0 && ctx.i32(1)[p as usize] == row_i {
                    ctx.i32_mut(2)[0] = p;
                }
                cost::scalar(4)
            })?;
            self.g.connect(v, t_prop.element(row), Access::Read)?;
            self.g.connect(v, t_mb.whole(), Access::Read)?;
            self.g.connect(v, t_star.element(row), Access::ReadWrite)?;
        }

        let cs_adv = self.g.add_compute_set("step2.passadv");
        self.collector_vertex(
            cs_adv,
            "passadv",
            vec![
                (tau.whole(), Access::Read),
                (t_pass.whole(), Access::ReadWrite),
                (t_pass_lt.whole(), Access::Write),
            ],
            |ctx| {
                let tau = ctx.i32(0)[0];
                let mut pass = ctx.i32_mut(1);
                pass[0] += 1;
                ctx.i32_mut(2)[0] = i32::from(pass[0] < tau);
                cost::scalar(3)
            },
        )?;

        let pass_body = Program::seq(vec![
            Program::broadcast(t_pass.whole(), t_pass_m.whole()),
            Program::execute(cs_prop),
            gather_prop,
            Program::broadcast(prop_g.whole(), t_ma.whole()),
            Program::execute(cs_decide),
            gather_cstar,
            Program::broadcast(cstar_g.whole(), t_mb.whole()),
            Program::execute(cs_confirm),
            Program::execute(cs_adv),
        ]);

        Ok(Program::seq(vec![
            Program::execute(cs_total),
            tau_prog,
            Program::execute(cs_sort),
            Program::execute(cs_init),
            Program::while_true(t_pass_lt, pass_body),
        ]))
    }

    /// Step 3 (§IV-E): cover every column holding a star, count covered
    /// columns, set `not_done = covered < n`.
    pub fn frag_step3(&mut self) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let n = l.n;
        let (t_cstar, t_ccov, t_nd) = (self.t.col_star, self.t.col_cover, self.t.not_done);
        let cs_cover = self.g.add_compute_set("step3.cover");
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let v = self.g.add_vertex(cs_cover, tile, "cover", |ctx| {
                let stars = ctx.i32(0);
                let mut cov = ctx.i32_mut(1);
                for (c, &s) in cov.iter_mut().zip(stars.iter()) {
                    *c = i32::from(s != -1);
                }
                cost::i32_update(stars.len())
            })?;
            self.g
                .connect(v, t_cstar.slice(cols.clone()), Access::Read)?;
            self.g.connect(v, t_ccov.slice(cols), Access::Write)?;
        }
        let (covered, red_prog) = self.reduce_scalar("step3.covered", t_ccov, ReduceOp::Sum)?;
        let cs_nd = self.g.add_compute_set("step3.notdone");
        match self.t.infeasible {
            // Sparse/tiled: a latched infeasibility (non-finite δ) must
            // stop the outer loop too — step 3 would otherwise see the
            // incomplete matching and restart the search forever.
            Some(t_inf) => self.collector_vertex(
                cs_nd,
                "notdone",
                vec![
                    (covered.whole(), Access::Read),
                    (t_inf.whole(), Access::Read),
                    (t_nd.whole(), Access::Write),
                ],
                move |ctx| {
                    let incomplete = (ctx.i32(0)[0] as usize) < n;
                    let latched = ctx.i32(1)[0] != 0;
                    ctx.i32_mut(2)[0] = i32::from(incomplete && !latched);
                    cost::scalar(3)
                },
            )?,
            None => self.collector_vertex(
                cs_nd,
                "notdone",
                vec![
                    (covered.whole(), Access::Read),
                    (t_nd.whole(), Access::Write),
                ],
                move |ctx| {
                    ctx.i32_mut(1)[0] = i32::from((ctx.i32(0)[0] as usize) < n);
                    cost::scalar(2)
                },
            )?,
        }
        Ok(Program::seq(vec![
            Program::execute(cs_cover),
            red_prog,
            Program::execute(cs_nd),
        ]))
    }

    /// The Step 4/5/6 search loop (§IV-F to §IV-H): while `searching`,
    /// refresh the cover mirror, classify rows (−1/0/1), arg-max reduce,
    /// and dispatch to augmentation (1), priming (0), or the slack update
    /// (−1).
    pub fn frag_search_loop(&mut self, compress: &Program) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let (n, th) = (l.n, l.threads);
        let t_searching = self.t.searching;

        // --- cover-mirror refresh ---
        // Multi-chip: skip the collector gather and broadcast from the
        // distributed cover vector directly, spreading the per-replica
        // link traffic across every owning tile's chip.
        let col_intervals = self.col_seg_intervals();
        let refresh_ccm = if self.l.chips > 1 {
            Program::broadcast(self.t.col_cover.whole(), self.t.ccm.whole())
        } else {
            let (ccg, gather_cc) =
                self.gather_to_collector("loop.ccg", self.t.col_cover, &col_intervals)?;
            Program::seq(vec![
                gather_cc,
                Program::broadcast(ccg.whole(), self.t.ccm.whole()),
            ])
        };

        // --- Step 4: row status over the compressed matrix ---
        let (t_comp, t_rcov, t_rstar) = (self.t.compress, self.t.row_cover, self.t.row_star);
        let (t_zs, t_rzc, t_enc, t_ccm) = (
            self.t.zero_status,
            self.t.row_zero_col,
            self.t.enc,
            self.t.ccm,
        );
        let use_compression = self.ab.compression;
        let t_slack = self.t.slack;
        let cs_status = self.g.add_compute_set("step4.status");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let row_i = row as i32;
            let v = if use_compression {
                let seg_bounds: Vec<(usize, usize)> = (0..th)
                    .map(|s| {
                        let c = l.seg_cols(s);
                        (c.start, c.end)
                    })
                    .collect();
                let v = self.g.add_vertex(cs_status, tile, "status", move |ctx| {
                    let covered = ctx.i32(0)[0] != 0;
                    let star = ctx.i32(1)[0];
                    let comp = ctx.i32(2);
                    let ccm = ctx.i32(3);
                    let mut scanned = 0u64;
                    let mut zcol = -1;
                    if !covered {
                        'outer: for &(s0, s1) in &seg_bounds {
                            for k in s0..s1 {
                                scanned += 1;
                                let c = comp[k];
                                if c < 0 {
                                    break; // compacted: no more zeros in seg
                                }
                                if ccm[c as usize] == 0 {
                                    zcol = c;
                                    break 'outer;
                                }
                            }
                        }
                    }
                    let status: i32 = if zcol < 0 {
                        -1
                    } else if star == -1 {
                        1
                    } else {
                        0
                    };
                    ctx.i32_mut(4)[0] = status;
                    ctx.i32_mut(5)[0] = zcol;
                    ctx.i32_mut(6)[0] = ((status + 1) << ENC_SHIFT) | (ENC_MASK - row_i);
                    cost::i32_scan(scanned as usize) + cost::scalar(6)
                })?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g.connect(v, t_rstar.element(row), Access::Read)?;
                self.g
                    .connect(v, t_comp.slice(l.row_range(row)), Access::Read)?;
                v
            } else {
                // Ablation A2: no compression — scan the raw slack row.
                let v = self
                    .g
                    .add_vertex(cs_status, tile, "status_raw", move |ctx| {
                        let covered = ctx.i32(0)[0] != 0;
                        let star = ctx.i32(1)[0];
                        let slack = ctx.f32(2);
                        let ccm = ctx.i32(3);
                        let mut zcol = -1;
                        if !covered {
                            for (c, &x) in slack.iter().enumerate() {
                                if x == 0.0 && ccm[c] == 0 {
                                    zcol = c as i32;
                                    break;
                                }
                            }
                        }
                        let status: i32 = if zcol < 0 {
                            -1
                        } else if star == -1 {
                            1
                        } else {
                            0
                        };
                        ctx.i32_mut(4)[0] = status;
                        ctx.i32_mut(5)[0] = zcol;
                        ctx.i32_mut(6)[0] = ((status + 1) << ENC_SHIFT) | (ENC_MASK - row_i);
                        cost::f32_scan(slack.len()) + cost::scalar(6)
                    })?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g.connect(v, t_rstar.element(row), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_range(row)), Access::Read)?;
                v
            };
            self.g.connect(v, t_ccm.whole(), Access::Read)?;
            self.g.connect(v, t_zs.element(row), Access::Write)?;
            self.g.connect(v, t_rzc.element(row), Access::Write)?;
            self.g.connect(v, t_enc.element(row), Access::Write)?;
        }
        let (enc_out, enc_prog) = self.reduce_scalar("step4.enc", t_enc, ReduceOp::Max)?;

        // Decode: status and selected row.
        let (t_st1, t_st0, t_sel_row) = (self.t.st1, self.t.st0, self.t.sel_row);
        let cs_decode = self.g.add_compute_set("step4.decode");
        self.collector_vertex(
            cs_decode,
            "decode",
            vec![
                (enc_out.whole(), Access::Read),
                (t_st1.whole(), Access::Write),
                (t_st0.whole(), Access::Write),
                (t_sel_row.whole(), Access::Write),
            ],
            |ctx| {
                let e = ctx.i32(0)[0];
                let status = (e >> ENC_SHIFT) - 1;
                ctx.i32_mut(1)[0] = i32::from(status == 1);
                ctx.i32_mut(2)[0] = i32::from(status == 0);
                ctx.i32_mut(3)[0] = ENC_MASK - (e & ENC_MASK);
                cost::scalar(5)
            },
        )?;

        // Shared fragment: resolve the selected row's uncovered-zero
        // column via a dynamic read, and mirror it.
        let row_intervals = self.row_block_intervals(1);
        let (rzc_out, read_rzc) =
            self.dyn_read_i32("step4.selcol", t_rzc, self.t.sel_row_m, &row_intervals)?;
        let get_sel_col = Program::seq(vec![
            Program::broadcast(t_sel_row.whole(), self.t.sel_row_m.whole()),
            read_rzc,
            Program::broadcast(rzc_out.whole(), self.t.sel_col_m.whole()),
        ]);

        let prime = self.frag_prime(&get_sel_col, &row_intervals)?;
        let augment = self.frag_augment(&get_sel_col, rzc_out, &row_intervals)?;
        let step6 = self.frag_step6(compress)?;

        let dispatch = Program::if_else(
            self.t.st1,
            augment,
            Program::if_else(self.t.st0, prime, step6),
        );

        let body = Program::seq(vec![
            refresh_ccm,
            Program::execute(cs_status),
            enc_prog,
            Program::execute(cs_decode),
            dispatch,
        ]);
        Ok(Program::while_true(t_searching, body))
    }

    /// Step 4's priming action (status 0): prime the zero, cover its row,
    /// uncover its star's column (§IV-F). All writes at runtime-computed
    /// indices use the partition-and-distribute pattern (§IV-G).
    fn frag_prime(
        &mut self,
        get_sel_col: &Program,
        row_intervals: &[(std::ops::Range<usize>, usize)],
    ) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let (star_out, read_star) = self.dyn_read_i32(
            "prime.star",
            self.t.row_star,
            self.t.sel_row_m,
            row_intervals,
        )?;

        let (t_selr_m, t_selc_m) = (self.t.sel_row_m, self.t.sel_col_m);
        let (t_prime, t_rcov) = (self.t.row_prime, self.t.row_cover);
        let cs_prime = self.g.add_compute_set("step4.prime");
        for (range, tile) in row_intervals {
            let (s0, s1) = (range.start, range.end);
            let v = self.g.add_vertex(cs_prime, *tile, "prime", move |ctx| {
                let r = ctx.i32(0)[0] as usize;
                if r >= s0 && r < s1 {
                    let j = ctx.i32(1)[0];
                    ctx.i32_mut(2)[r - s0] = j;
                    ctx.i32_mut(3)[r - s0] = 1;
                }
                cost::scalar(5)
            })?;
            self.g.connect(v, t_selr_m.whole(), Access::Read)?;
            self.g.connect(v, t_selc_m.whole(), Access::Read)?;
            self.g
                .connect(v, t_prime.slice(range.clone()), Access::ReadWrite)?;
            self.g
                .connect(v, t_rcov.slice(range.clone()), Access::ReadWrite)?;
        }

        let (t_star_m, t_ccov) = (self.t.star_col_m, self.t.col_cover);
        let cs_uncover = self.g.add_compute_set("step4.uncover");
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let (c0, c1) = (cols.start, cols.end);
            let v = self.g.add_vertex(cs_uncover, tile, "uncover", move |ctx| {
                let j = ctx.i32(0)[0] as usize;
                if j >= c0 && j < c1 {
                    ctx.i32_mut(1)[j - c0] = 0;
                }
                cost::scalar(4)
            })?;
            self.g.connect(v, t_star_m.whole(), Access::Read)?;
            self.g.connect(v, t_ccov.slice(cols), Access::ReadWrite)?;
        }

        Ok(Program::seq(vec![
            get_sel_col.clone(),
            read_star,
            Program::broadcast(star_out.whole(), self.t.star_col_m.whole()),
            Program::execute(cs_prime),
            Program::execute(cs_uncover),
        ]))
    }

    /// Step 5 (§IV-G, Fig. 3): walk the alternating path from the
    /// selected prime, recording hops on the green stack; then flip the
    /// stars in parallel, clear primes and covers, and end the search.
    fn frag_augment(
        &mut self,
        get_sel_col: &Program,
        rzc_out: ipu_sim::Tensor,
        row_intervals: &[(std::ops::Range<usize>, usize)],
    ) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let t = self.t.clone();
        let (t_grows, t_gcols, t_glen) = (t.green_rows, t.green_cols, t.green_len);
        let (t_selrow, t_curcol, t_walking) = (t.sel_row, t.cur_col, t.walking);
        let t_ctr = t.ctr_aug;

        // Initialize the walk: push the starting prime.
        let cs_init = self.g.add_compute_set("step5.init");
        self.collector_vertex(
            cs_init,
            "walkinit",
            vec![
                (t_selrow.whole(), Access::Read),
                (rzc_out.whole(), Access::Read),
                (t_grows.whole(), Access::Write),
                (t_gcols.whole(), Access::Write),
                (t_glen.whole(), Access::Write),
                (t_curcol.whole(), Access::Write),
                (t_walking.whole(), Access::Write),
                (t_ctr.whole(), Access::ReadWrite),
            ],
            |ctx| {
                let r = ctx.i32(0)[0];
                let c = ctx.i32(1)[0];
                ctx.i32_mut(2)[0] = r;
                ctx.i32_mut(3)[0] = c;
                ctx.i32_mut(4)[0] = 1;
                ctx.i32_mut(5)[0] = c;
                ctx.i32_mut(6)[0] = 1;
                ctx.i32_mut(7)[0] += 1;
                cost::scalar(8)
            },
        )?;

        // One walk hop: k = col_star[cur_col]; if k >= 0 then
        // j' = row_prime[k], push (k, j'), cur_col = j'.
        let col_intervals = self.col_seg_intervals();
        let (k_out, read_k) =
            self.dyn_read_i32("step5.colstar", t.col_star, t.cur_col_m, &col_intervals)?;
        let cs_check = self.g.add_compute_set("step5.check");
        self.collector_vertex(
            cs_check,
            "check",
            vec![
                (k_out.whole(), Access::Read),
                (t_walking.whole(), Access::Write),
            ],
            |ctx| {
                ctx.i32_mut(1)[0] = i32::from(ctx.i32(0)[0] >= 0);
                cost::scalar(2)
            },
        )?;
        let (rp_out, read_rp) =
            self.dyn_read_i32("step5.rowprime", t.row_prime, t.k_row_m, row_intervals)?;
        let cs_push = self.g.add_compute_set("step5.push");
        self.collector_vertex(
            cs_push,
            "push",
            vec![
                (k_out.whole(), Access::Read),
                (rp_out.whole(), Access::Read),
                (t_grows.whole(), Access::ReadWrite),
                (t_gcols.whole(), Access::ReadWrite),
                (t_glen.whole(), Access::ReadWrite),
                (t_curcol.whole(), Access::Write),
            ],
            |ctx| {
                let k = ctx.i32(0)[0];
                let j = ctx.i32(1)[0];
                let mut len = ctx.i32_mut(4);
                let at = len[0] as usize;
                ctx.i32_mut(2)[at] = k;
                ctx.i32_mut(3)[at] = j;
                len[0] += 1;
                ctx.i32_mut(5)[0] = j;
                cost::scalar(8)
            },
        )?;
        let hop = Program::seq(vec![
            Program::broadcast(t_curcol.whole(), t.cur_col_m.whole()),
            read_k,
            Program::execute(cs_check),
            Program::if_true(
                t_walking,
                Program::seq(vec![
                    Program::broadcast(k_out.whole(), t.k_row_m.whole()),
                    read_rp,
                    Program::execute(cs_push),
                ]),
            ),
        ]);
        let walk = Program::while_true(t_walking, hop);

        // Flip in parallel from the mirrored green stack.
        let (t_ma, t_mb, t_lenm) = (t.ma, t.mb, t.len_m);
        let (t_rstar, t_rprime, t_rcov, t_cstar) =
            (t.row_star, t.row_prime, t.row_cover, t.col_star);
        let cs_fr = self.g.add_compute_set("step5.flip_rows");
        for (range, tile) in row_intervals {
            let (s0, s1) = (range.start as i32, range.end as i32);
            let v = self.g.add_vertex(cs_fr, *tile, "flip_rows", move |ctx| {
                let len = ctx.i32(2)[0] as usize;
                {
                    let rows = ctx.i32(0);
                    let cols = ctx.i32(1);
                    let mut star = ctx.i32_mut(3);
                    for tpos in 0..len {
                        let r = rows[tpos];
                        if r >= s0 && r < s1 {
                            star[(r - s0) as usize] = cols[tpos];
                        }
                    }
                }
                let mut prime = ctx.i32_mut(4);
                prime.iter_mut().for_each(|x| *x = -1);
                let mut cov = ctx.i32_mut(5);
                cov.iter_mut().for_each(|x| *x = 0);
                cost::i32_scan(len) + cost::i32_update(prime.len() + cov.len())
            })?;
            self.g.connect(v, t_ma.whole(), Access::Read)?;
            self.g.connect(v, t_mb.whole(), Access::Read)?;
            self.g.connect(v, t_lenm.whole(), Access::Read)?;
            self.g
                .connect(v, t_rstar.slice(range.clone()), Access::ReadWrite)?;
            self.g
                .connect(v, t_rprime.slice(range.clone()), Access::Write)?;
            self.g
                .connect(v, t_rcov.slice(range.clone()), Access::Write)?;
        }
        let cs_fc = self.g.add_compute_set("step5.flip_cols");
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols_r = l.col_seg_cols(seg);
            let (c0, c1) = (cols_r.start as i32, cols_r.end as i32);
            let v = self.g.add_vertex(cs_fc, tile, "flip_cols", move |ctx| {
                let len = ctx.i32(2)[0] as usize;
                let rows = ctx.i32(0);
                let cols = ctx.i32(1);
                let mut star = ctx.i32_mut(3);
                for tpos in 0..len {
                    let c = cols[tpos];
                    if c >= c0 && c < c1 {
                        star[(c - c0) as usize] = rows[tpos];
                    }
                }
                cost::i32_scan(len)
            })?;
            self.g.connect(v, t_ma.whole(), Access::Read)?;
            self.g.connect(v, t_mb.whole(), Access::Read)?;
            self.g.connect(v, t_lenm.whole(), Access::Read)?;
            self.g
                .connect(v, t_cstar.slice(cols_r), Access::ReadWrite)?;
        }

        let cs_done = self.g.add_compute_set("step5.done");
        let t_searching = t.searching;
        self.collector_vertex(
            cs_done,
            "done",
            vec![(t_searching.whole(), Access::Write)],
            |ctx| {
                ctx.i32_mut(0)[0] = 0;
                cost::scalar(1)
            },
        )?;

        // The green stack lives on the root collector; on multi-chip
        // configs scatter it to the per-chip sub-collectors first so the
        // mirror broadcast crosses each IPU-Link once per chunk instead of
        // paying the full stack per remote replica from one tile.
        let grows_bc = self.broadcast_from_collector("step5.grows", t_grows, t_ma)?;
        let gcols_bc = self.broadcast_from_collector("step5.gcols", t_gcols, t_mb)?;
        Ok(Program::seq(vec![
            get_sel_col.clone(),
            Program::execute(cs_init),
            walk,
            grows_bc,
            gcols_bc,
            Program::broadcast(t_glen.whole(), t_lenm.whole()),
            Program::execute(cs_fr),
            Program::execute(cs_fc),
            Program::execute(cs_done),
        ]))
    }

    /// Step 6 (§IV-H): find the minimum uncovered slack Δ with per-thread
    /// segment minima, broadcast it, shift the slack matrix (and the dual
    /// potentials), and re-compress.
    fn frag_step6(&mut self, compress: &Program) -> Result<Program, GraphError> {
        if let Storage::Sparse { .. } = self.storage {
            return self.frag_step6_sparse(compress);
        }
        let l = self.l.clone();
        let (n, th) = (l.n, l.threads);
        let t = self.t.clone();
        let (t_slack, t_segmin, t_rcov, t_ccm) = (t.slack, t.seg_min, t.row_cover, t.ccm);

        let cs_min = self.g.add_compute_set("step6.segmin");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let cols = l.seg_cols(s);
                let c0 = cols.start;
                let v = self
                    .g
                    .add_vertex_on_thread(cs_min, tile, s, "segmin", move |ctx| {
                        let covered = ctx.i32(0)[0] != 0;
                        let out = if covered {
                            f32::INFINITY
                        } else {
                            let slack = ctx.f32(1);
                            let ccm = ctx.i32(2);
                            kernels::masked_min_where_zero(&slack, &ccm[c0..])
                        };
                        ctx.f32_mut(3)[0] = out;
                        cost::f32_scan(ctx.f32(1).len()) + cost::scalar(2)
                    })?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g.connect(v, t_ccm.whole(), Access::Read)?;
                self.g.connect(
                    v,
                    t_segmin.slice(row * th + s..row * th + s + 1),
                    Access::Write,
                )?;
            }
        }
        // Count the dual update on the collector while the tiles scan.
        let t_ctr = t.ctr_dual;
        self.collector_vertex(
            cs_min,
            "count_dual",
            vec![(t_ctr.whole(), Access::ReadWrite)],
            |ctx| {
                ctx.i32_mut(0)[0] += 1;
                cost::scalar(1)
            },
        )?;

        let (delta, red_prog) = self.reduce_scalar("step6.delta", t_segmin, ReduceOp::Min)?;

        let (t_dm, t_u, t_v, t_ccov) = (t.delta_m, t.u, t.v, t.col_cover);
        let cs_upd = self.g.add_compute_set("step6.update");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let cols = l.seg_cols(s);
                let c0 = cols.start;
                let v = self
                    .g
                    .add_vertex_on_thread(cs_upd, tile, s, "update", move |ctx| {
                        let delta = ctx.f32(0)[0];
                        let covered = ctx.i32(1)[0] != 0;
                        let ccm = ctx.i32(2);
                        let mut slack = ctx.f32_mut(3);
                        if covered {
                            kernels::add_where_nonzero(&mut slack, &ccm[c0..], delta);
                        } else {
                            kernels::sub_where_zero(&mut slack, &ccm[c0..], delta);
                        }
                        cost::f32_update(slack.len())
                    })?;
                self.g.connect(v, t_dm.whole(), Access::Read)?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g.connect(v, t_ccm.whole(), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::ReadWrite)?;
            }
            // Dual potential u: one scalar vertex per row.
            let v = self.g.add_vertex(cs_upd, tile, "u_update", |ctx| {
                if ctx.i32(1)[0] == 0 {
                    ctx.f32_mut(2)[0] += ctx.f32(0)[0];
                }
                cost::scalar(3)
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g.connect(v, t_rcov.element(row), Access::Read)?;
            self.g.connect(v, t_u.element(row), Access::ReadWrite)?;
        }
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let v = self.g.add_vertex(cs_upd, tile, "v_update", |ctx| {
                let delta = ctx.f32(0)[0];
                let cov = ctx.i32(1);
                let mut pot = ctx.f32_mut(2);
                kernels::sub_where_nonzero(&mut pot, &cov, delta);
                cost::f32_update(pot.len())
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g
                .connect(v, t_ccov.slice(cols.clone()), Access::Read)?;
            self.g.connect(v, t_v.slice(cols), Access::ReadWrite)?;
        }

        let recompress = if self.ab.compression {
            compress.clone()
        } else {
            Program::seq(vec![])
        };
        Ok(Program::seq(vec![
            Program::execute(cs_min),
            red_prog,
            Program::broadcast(delta.whole(), t_dm.whole()),
            Program::execute(cs_upd),
            recompress,
        ]))
    }

    /// Sparse Step 6: the uncovered minimum runs over stored candidates
    /// only (masking through `cand`), and a collector guard checks that δ
    /// is finite before any state moves. An infinite δ means no uncovered
    /// row holds *any* candidate in an uncovered column — the candidate
    /// graph has no augmenting structure left, i.e. the prune violated
    /// Hall's condition. The guard latches the `infeasible` flag and
    /// terminates both loops so the host can re-admit columns instead of
    /// the device diverging.
    fn frag_step6_sparse(&mut self, compress: &Program) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let (n, th) = (l.n, l.threads);
        let t = self.t.clone();
        let (t_slack, t_segmin, t_rcov, t_ccm) = (t.slack, t.seg_min, t.row_cover, t.ccm);
        let t_cand = t.cand.expect("sparse storage has cand");
        let t_ok = t.delta_ok.expect("sparse storage has delta_ok");
        let t_inf = t.infeasible.expect("sparse storage has infeasible");

        let cs_min = self.g.add_compute_set("step6.segmin");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_min, tile, s, "segmin", move |ctx| {
                        let covered = ctx.i32(0)[0] != 0;
                        let out = if covered {
                            f32::INFINITY
                        } else {
                            let slack = ctx.f32(1);
                            let cand = ctx.i32(2);
                            let ccm = ctx.i32(3);
                            let mut m = f32::INFINITY;
                            for (p, &x) in slack.iter().enumerate() {
                                if ccm[cand[p] as usize] == 0 {
                                    m = m.min(x);
                                }
                            }
                            m
                        };
                        ctx.f32_mut(4)[0] = out;
                        cost::f32_scan(ctx.f32(1).len()) + cost::scalar(2)
                    })?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_cand.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g.connect(v, t_ccm.whole(), Access::Read)?;
                self.g.connect(
                    v,
                    t_segmin.slice(row * th + s..row * th + s + 1),
                    Access::Write,
                )?;
            }
        }
        let t_ctr = t.ctr_dual;
        self.collector_vertex(
            cs_min,
            "count_dual",
            vec![(t_ctr.whole(), Access::ReadWrite)],
            |ctx| {
                ctx.i32_mut(0)[0] += 1;
                cost::scalar(1)
            },
        )?;

        let (delta, red_prog) = self.reduce_scalar("step6.delta", t_segmin, ReduceOp::Min)?;

        // δ-guard: finite → run the update; infinite → flag infeasible
        // and stop the search and outer loops.
        let (t_searching, t_nd) = (t.searching, t.not_done);
        let cs_guard = self.g.add_compute_set("step6.guard");
        self.collector_vertex(
            cs_guard,
            "guard",
            vec![
                (delta.whole(), Access::Read),
                (t_ok.whole(), Access::Write),
                (t_inf.whole(), Access::ReadWrite),
                (t_searching.whole(), Access::ReadWrite),
                (t_nd.whole(), Access::ReadWrite),
            ],
            |ctx| {
                let finite = ctx.f32(0)[0].is_finite();
                ctx.i32_mut(1)[0] = i32::from(finite);
                if !finite {
                    ctx.i32_mut(2)[0] = 1;
                    ctx.i32_mut(3)[0] = 0;
                    ctx.i32_mut(4)[0] = 0;
                }
                cost::scalar(5)
            },
        )?;

        let (t_dm, t_u, t_v, t_ccov) = (t.delta_m, t.u, t.v, t.col_cover);
        let cs_upd = self.g.add_compute_set("step6.update");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            for s in 0..th {
                let v = self
                    .g
                    .add_vertex_on_thread(cs_upd, tile, s, "update", move |ctx| {
                        let delta = ctx.f32(0)[0];
                        let covered = ctx.i32(1)[0] != 0;
                        let ccm = ctx.i32(2);
                        let cand = ctx.i32(3);
                        let mut slack = ctx.f32_mut(4);
                        for (p, x) in slack.iter_mut().enumerate() {
                            let col_covered = ccm[cand[p] as usize] != 0;
                            if covered && col_covered {
                                *x += delta;
                            } else if !covered && !col_covered {
                                *x -= delta;
                            }
                        }
                        cost::f32_update(slack.len())
                    })?;
                self.g.connect(v, t_dm.whole(), Access::Read)?;
                self.g.connect(v, t_rcov.element(row), Access::Read)?;
                self.g.connect(v, t_ccm.whole(), Access::Read)?;
                self.g
                    .connect(v, t_cand.slice(l.row_seg_range(row, s)), Access::Read)?;
                self.g
                    .connect(v, t_slack.slice(l.row_seg_range(row, s)), Access::ReadWrite)?;
            }
            let v = self.g.add_vertex(cs_upd, tile, "u_update", |ctx| {
                if ctx.i32(1)[0] == 0 {
                    ctx.f32_mut(2)[0] += ctx.f32(0)[0];
                }
                cost::scalar(3)
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g.connect(v, t_rcov.element(row), Access::Read)?;
            self.g.connect(v, t_u.element(row), Access::ReadWrite)?;
        }
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let v = self.g.add_vertex(cs_upd, tile, "v_update", |ctx| {
                let delta = ctx.f32(0)[0];
                let cov = ctx.i32(1);
                let mut pot = ctx.f32_mut(2);
                kernels::sub_where_nonzero(&mut pot, &cov, delta);
                cost::f32_update(pot.len())
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g
                .connect(v, t_ccov.slice(cols.clone()), Access::Read)?;
            self.g.connect(v, t_v.slice(cols), Access::ReadWrite)?;
        }

        let recompress = if self.ab.compression {
            compress.clone()
        } else {
            Program::seq(vec![])
        };
        let update = Program::seq(vec![
            Program::broadcast(delta.whole(), t_dm.whole()),
            Program::execute(cs_upd),
            recompress,
        ]);
        Ok(Program::seq(vec![
            Program::execute(cs_min),
            red_prog,
            Program::execute(cs_guard),
            Program::if_true(t_ok, update),
        ]))
    }

    /// Per-(tile, thread) partition of each owner tile's row block —
    /// the work decomposition of every streamed-block sweep.
    fn tile_thread_chunks(&self) -> Vec<(usize, usize, std::ops::Range<usize>)> {
        let th = self.l.threads;
        let mut out = Vec::new();
        for tile in self.l.owner_tiles() {
            let rows = self.l.rows_of_tile(tile);
            let cnt = rows.len();
            let base = cnt / th;
            let extra = cnt % th;
            let mut start = rows.start;
            for t in 0..th {
                let len = base + usize::from(t < extra);
                if len == 0 {
                    continue;
                }
                out.push((tile, t, start..start + len));
                start += len;
            }
        }
        out
    }

    /// Column ranges of the streamed blocks (`block_cols` wide, last may
    /// be short).
    fn block_ranges(&self, block_cols: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.l.n;
        (0..n.div_ceil(block_cols))
            .map(|b| b * block_cols..((b + 1) * block_cols).min(n))
            .collect()
    }

    /// One PCIe stream of cost block `cols` into the resident work
    /// buffer: per row, `host_cost[r, cols]` → `work[r, 0..bc]`. The
    /// engine charges the host side serially at
    /// `IpuConfig::host_io_bytes_per_cycle`, overlapping the fabric.
    fn stream_block(&self, cols: &std::ops::Range<usize>, block_cols: usize) -> Program {
        let n = self.l.n;
        let host = self.t.host_cost.expect("tiled storage has host_cost");
        let work = self.t.slack;
        let bc = cols.len();
        Program::exchange(
            (0..n)
                .map(|r| {
                    (
                        host.slice(r * n + cols.start..r * n + cols.end),
                        work.slice(r * block_cols..r * block_cols + bc),
                    )
                })
                .collect(),
        )
    }

    /// Tiled setup: the Step 1 reduction and the Step 2 zero lists,
    /// computed in three streamed sweeps over the host-resident matrix
    /// without ever materializing the reduced slack on the device:
    ///
    /// 1. `u[r] = min_c C[r][c]` (row minima);
    /// 2. column minima of `C[r][c] − u[r]`, mirrored per owner, → `v`;
    /// 3. bounded zero lists: the first `zcap` columns per row with
    ///    `C − u − v = 0`, feeding Step 2's proposal passes.
    ///
    /// A row with more than `zcap` zeros gets a truncated list — Step 2
    /// then stars a subset, which only costs extra search iterations;
    /// the search loop itself rescans streamed blocks, never the lists.
    fn frag_tiled_setup(
        &mut self,
        block_cols: usize,
        zcap: usize,
    ) -> Result<Program, GraphError> {
        let (l, n, th) = (self.l.clone(), self.l.n, self.l.threads);
        let (t_slack, t_u) = (self.t.slack, self.t.u);
        let (t_comp, t_zc) = (self.t.compress, self.t.zero_count);
        let chunks = self.tile_thread_chunks();
        let blocks = self.block_ranges(block_cols);
        let bw = block_cols;

        // Sweep 1: row minima.
        let cs_uinit = self.g.add_compute_set("tsetup.uinit");
        for (tile, t, chunk) in &chunks {
            let v = self
                .g
                .add_vertex_on_thread(cs_uinit, *tile, *t, "uinit", |ctx| {
                    let mut u = ctx.f32_mut(0);
                    for x in u.iter_mut() {
                        *x = f32::INFINITY;
                    }
                    cost::f32_update(u.len())
                })?;
            self.g.connect(v, t_u.slice(chunk.clone()), Access::Write)?;
        }
        let mut prog = vec![Program::execute(cs_uinit)];
        for (b, cols) in blocks.iter().enumerate() {
            let bc = cols.len();
            let cs = self.g.add_compute_set(&format!("tsetup.umin[{b}]"));
            for (tile, t, chunk) in &chunks {
                let rows_here = chunk.len();
                let v = self
                    .g
                    .add_vertex_on_thread(cs, *tile, *t, "umin", move |ctx| {
                        let work = ctx.f32(0);
                        let mut u = ctx.f32_mut(1);
                        for r in 0..rows_here {
                            let m = kernels::min_f32(&work[r * bw..r * bw + bc]);
                            u[r] = u[r].min(m);
                        }
                        cost::f32_scan(rows_here * bc)
                    })?;
                self.g.connect(
                    v,
                    t_slack.slice(chunk.start * bw..chunk.end * bw),
                    Access::Read,
                )?;
                self.g
                    .connect(v, t_u.slice(chunk.clone()), Access::ReadWrite)?;
            }
            prog.push(self.stream_block(cols, bw));
            prog.push(Program::execute(cs));
        }

        // Sweep 2: column minima of the row-reduced matrix. Each owner
        // accumulates a full-width partial (threads split the block's
        // columns, so each writes a disjoint slice), then the standard
        // mirrored reduction combines owners.
        let owners = l.owner_tiles();
        let scat = self
            .g
            .add_tensor("tsetup.scat", DType::F32, owners.len() * n);
        for (i, &tile) in owners.iter().enumerate() {
            self.g.map_slice(scat.slice(i * n..(i + 1) * n), tile)?;
        }
        for (b, cols) in blocks.iter().enumerate() {
            let bc = cols.len();
            let cs = self.g.add_compute_set(&format!("tsetup.cmin[{b}]"));
            for (i, &tile) in owners.iter().enumerate() {
                let rows = l.rows_of_tile(tile);
                let rows_here = rows.len();
                // Threads split the block's columns.
                let per = bc.div_ceil(th);
                for t in 0..th {
                    let j0 = (t * per).min(bc);
                    let j1 = ((t + 1) * per).min(bc);
                    if j0 == j1 {
                        continue;
                    }
                    let v = self
                        .g
                        .add_vertex_on_thread(cs, tile, t, "cmin", move |ctx| {
                            let work = ctx.f32(0);
                            let u = ctx.f32(1);
                            let mut part = ctx.f32_mut(2);
                            for p in part.iter_mut() {
                                *p = f32::INFINITY;
                            }
                            for r in 0..rows_here {
                                for (jj, p) in part.iter_mut().enumerate() {
                                    *p = p.min(work[r * bw + j0 + jj] - u[r]);
                                }
                            }
                            cost::f32_scan(rows_here * (j1 - j0))
                        })?;
                    self.g.connect(
                        v,
                        t_slack.slice(rows.start * bw..rows.end * bw),
                        Access::Read,
                    )?;
                    self.g.connect(v, t_u.slice(rows.clone()), Access::Read)?;
                    self.g.connect(
                        v,
                        scat.slice(i * n + cols.start + j0..i * n + cols.start + j1),
                        Access::Write,
                    )?;
                }
            }
            prog.push(self.stream_block(cols, bw));
            prog.push(Program::execute(cs));
        }
        let (colmirror, col_prog) = reduce_columns_mirrored(
            &mut self.g,
            "tsetup.colmin",
            scat,
            owners.len(),
            n,
            ReduceOp::Min,
        )?;
        prog.push(col_prog);

        let cs_vinit = self.g.add_compute_set("tsetup.vinit");
        let t_v = self.t.v;
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let v = self.g.add_vertex(cs_vinit, tile, "vinit", |ctx| {
                let mins = ctx.f32(0);
                let mut out = ctx.f32_mut(1);
                out.copy_from_slice(&mins);
                cost::f32_update(out.len())
            })?;
            let cols = l.col_seg_cols(seg);
            let blk = l.mirror_block(tile);
            self.g.connect(
                v,
                colmirror.slice(blk * n + cols.start..blk * n + cols.end),
                Access::Read,
            )?;
            self.g.connect(v, t_v.slice(cols), Access::Write)?;
        }
        prog.push(Program::execute(cs_vinit));

        // Sweep 3: bounded zero lists (zero_count slot 0 is the cursor;
        // the other per-thread slots stay 0 so Step 2's row total sums
        // correctly).
        let cs_zinit = self.g.add_compute_set("tsetup.zinit");
        for (tile, t, chunk) in &chunks {
            let v = self
                .g
                .add_vertex_on_thread(cs_zinit, *tile, *t, "zinit", |ctx| {
                    let mut comp = ctx.i32_mut(0);
                    for x in comp.iter_mut() {
                        *x = -1;
                    }
                    let mut zc = ctx.i32_mut(1);
                    for x in zc.iter_mut() {
                        *x = 0;
                    }
                    cost::i32_update(comp.len() + zc.len())
                })?;
            self.g.connect(
                v,
                t_comp.slice(chunk.start * zcap..chunk.end * zcap),
                Access::Write,
            )?;
            self.g
                .connect(v, t_zc.slice(chunk.start * th..chunk.end * th), Access::Write)?;
        }
        prog.push(Program::execute(cs_zinit));
        for (b, cols) in blocks.iter().enumerate() {
            let bc = cols.len();
            let c0 = cols.start;
            let cs = self.g.add_compute_set(&format!("tsetup.zlist[{b}]"));
            for (tile, t, chunk) in &chunks {
                let rows_here = chunk.len();
                let blk = l.mirror_block(*tile);
                let v = self
                    .g
                    .add_vertex_on_thread(cs, *tile, *t, "zlist", move |ctx| {
                        let work = ctx.f32(0);
                        let u = ctx.f32(1);
                        let vmin = ctx.f32(2);
                        let mut comp = ctx.i32_mut(3);
                        let mut zc = ctx.i32_mut(4);
                        for r in 0..rows_here {
                            let mut cnt = zc[r * th] as usize;
                            for j in 0..bc {
                                if cnt >= zcap {
                                    break;
                                }
                                if work[r * bw + j] - u[r] - vmin[j] == 0.0 {
                                    comp[r * zcap + cnt] = (c0 + j) as i32;
                                    cnt += 1;
                                }
                            }
                            zc[r * th] = cnt as i32;
                        }
                        cost::f32_scan(rows_here * bc)
                    })?;
                self.g.connect(
                    v,
                    t_slack.slice(chunk.start * bw..chunk.end * bw),
                    Access::Read,
                )?;
                self.g.connect(v, t_u.slice(chunk.clone()), Access::Read)?;
                self.g.connect(
                    v,
                    colmirror.slice(blk * n + cols.start..blk * n + cols.end),
                    Access::Read,
                )?;
                self.g.connect(
                    v,
                    t_comp.slice(chunk.start * zcap..chunk.end * zcap),
                    Access::ReadWrite,
                )?;
                self.g.connect(
                    v,
                    t_zc.slice(chunk.start * th..chunk.end * th),
                    Access::ReadWrite,
                )?;
            }
            prog.push(self.stream_block(cols, bw));
            prog.push(Program::execute(cs));
        }

        Ok(Program::seq(prog))
    }

    /// The tiled Step 4/5/6 search loop: every iteration re-streams the
    /// cost blocks and recomputes slacks `C − u − v` on the fly (exact in
    /// f32 for integer costs), accumulating each row's first uncovered
    /// zero and uncovered minimum. Steps 5 (augment) and 4's priming are
    /// the standard fragments — they touch only matching state. Step 6
    /// applies the dual form of the slack shift (`u += δ` on uncovered
    /// rows, `v −= δ` on covered columns), which is algebraically the
    /// quadrant shift the dense path applies to stored slack.
    fn frag_search_loop_tiled(&mut self, block_cols: usize) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let n = l.n;
        let t_searching = self.t.searching;
        let bw = block_cols;

        // Cover mirror refresh (flat single-chip structure) and the
        // column-potential mirror the on-the-fly slacks need.
        let col_intervals = self.col_seg_intervals();
        let (ccg, gather_cc) =
            self.gather_to_collector("loop.ccg", self.t.col_cover, &col_intervals)?;
        let refresh_ccm = Program::seq(vec![
            gather_cc,
            Program::broadcast(ccg.whole(), self.t.ccm.whole()),
        ]);
        let t_vm = self.t.vm.expect("tiled storage has v_m");
        let refresh_vm = Program::broadcast(self.t.v.whole(), t_vm.whole());

        let (t_slack, t_u, t_ccm) = (self.t.slack, self.t.u, self.t.ccm);
        let (t_rcov, t_rstar) = (self.t.row_cover, self.t.row_star);
        let (t_zs, t_rzc, t_enc) = (self.t.zero_status, self.t.row_zero_col, self.t.enc);
        let t_acc = self.t.rowacc.expect("tiled storage has rowacc");
        let chunks = self.tile_thread_chunks();
        let blocks = self.block_ranges(bw);

        // Reset the per-row sweep accumulators.
        let cs_sweep = self.g.add_compute_set("step4.sweepinit");
        for (tile, t, chunk) in &chunks {
            let v = self
                .g
                .add_vertex_on_thread(cs_sweep, *tile, *t, "sweepinit", |ctx| {
                    let mut rzc = ctx.i32_mut(0);
                    for x in rzc.iter_mut() {
                        *x = -1;
                    }
                    let mut acc = ctx.f32_mut(1);
                    for x in acc.iter_mut() {
                        *x = f32::INFINITY;
                    }
                    cost::i32_update(rzc.len()) + cost::f32_update(acc.len())
                })?;
            self.g
                .connect(v, t_rzc.slice(chunk.clone()), Access::Write)?;
            self.g
                .connect(v, t_acc.slice(chunk.clone()), Access::Write)?;
        }

        // Streamed scan: first uncovered zero (ascending column order —
        // the same deterministic choice as the dense compressed scan) and
        // the uncovered minimum, per row.
        let mut scan = vec![Program::execute(cs_sweep)];
        for (b, cols) in blocks.iter().enumerate() {
            let bc = cols.len();
            let c0 = cols.start;
            let cs = self.g.add_compute_set(&format!("step4.scan[{b}]"));
            for (tile, t, chunk) in &chunks {
                let rows_here = chunk.len();
                let v = self
                    .g
                    .add_vertex_on_thread(cs, *tile, *t, "scan", move |ctx| {
                        let rcov = ctx.i32(0);
                        let work = ctx.f32(1);
                        let u = ctx.f32(2);
                        let vm = ctx.f32(3);
                        let ccm = ctx.i32(4);
                        let mut rzc = ctx.i32_mut(5);
                        let mut acc = ctx.f32_mut(6);
                        let mut scanned = 0usize;
                        for r in 0..rows_here {
                            if rcov[r] != 0 {
                                continue;
                            }
                            let (mut z, mut m) = (rzc[r], acc[r]);
                            for j in 0..bc {
                                let c = c0 + j;
                                if ccm[c] != 0 {
                                    continue;
                                }
                                scanned += 1;
                                let s = work[r * bw + j] - u[r] - vm[c];
                                if s == 0.0 && z < 0 {
                                    z = c as i32;
                                }
                                m = m.min(s);
                            }
                            rzc[r] = z;
                            acc[r] = m;
                        }
                        cost::f32_scan(scanned) + cost::scalar(2 * rows_here)
                    })?;
                self.g
                    .connect(v, t_rcov.slice(chunk.clone()), Access::Read)?;
                self.g.connect(
                    v,
                    t_slack.slice(chunk.start * bw..chunk.end * bw),
                    Access::Read,
                )?;
                self.g.connect(v, t_u.slice(chunk.clone()), Access::Read)?;
                self.g.connect(v, t_vm.whole(), Access::Read)?;
                self.g.connect(v, t_ccm.whole(), Access::Read)?;
                self.g
                    .connect(v, t_rzc.slice(chunk.clone()), Access::ReadWrite)?;
                self.g
                    .connect(v, t_acc.slice(chunk.clone()), Access::ReadWrite)?;
            }
            scan.push(self.stream_block(cols, bw));
            scan.push(Program::execute(cs));
        }

        // Row status from the sweep results (covered rows were skipped,
        // so their zero column stays −1 → status −1, as in dense).
        let cs_status = self.g.add_compute_set("step4.status");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let row_i = row as i32;
            let v = self.g.add_vertex(cs_status, tile, "status", move |ctx| {
                let star = ctx.i32(0)[0];
                let zcol = ctx.i32(1)[0];
                let status: i32 = if zcol < 0 {
                    -1
                } else if star == -1 {
                    1
                } else {
                    0
                };
                ctx.i32_mut(2)[0] = status;
                ctx.i32_mut(3)[0] = ((status + 1) << ENC_SHIFT) | (ENC_MASK - row_i);
                cost::scalar(5)
            })?;
            self.g.connect(v, t_rstar.element(row), Access::Read)?;
            self.g.connect(v, t_rzc.element(row), Access::Read)?;
            self.g.connect(v, t_zs.element(row), Access::Write)?;
            self.g.connect(v, t_enc.element(row), Access::Write)?;
        }
        let (enc_out, enc_prog) = self.reduce_scalar("step4.enc", t_enc, ReduceOp::Max)?;

        let (t_st1, t_st0, t_sel_row) = (self.t.st1, self.t.st0, self.t.sel_row);
        let cs_decode = self.g.add_compute_set("step4.decode");
        self.collector_vertex(
            cs_decode,
            "decode",
            vec![
                (enc_out.whole(), Access::Read),
                (t_st1.whole(), Access::Write),
                (t_st0.whole(), Access::Write),
                (t_sel_row.whole(), Access::Write),
            ],
            |ctx| {
                let e = ctx.i32(0)[0];
                let status = (e >> ENC_SHIFT) - 1;
                ctx.i32_mut(1)[0] = i32::from(status == 1);
                ctx.i32_mut(2)[0] = i32::from(status == 0);
                ctx.i32_mut(3)[0] = ENC_MASK - (e & ENC_MASK);
                cost::scalar(5)
            },
        )?;

        let row_intervals = self.row_block_intervals(1);
        let (rzc_out, read_rzc) =
            self.dyn_read_i32("step4.selcol", t_rzc, self.t.sel_row_m, &row_intervals)?;
        let get_sel_col = Program::seq(vec![
            Program::broadcast(t_sel_row.whole(), self.t.sel_row_m.whole()),
            read_rzc,
            Program::broadcast(rzc_out.whole(), self.t.sel_col_m.whole()),
        ]);

        let prime = self.frag_prime(&get_sel_col, &row_intervals)?;
        let augment = self.frag_augment(&get_sel_col, rzc_out, &row_intervals)?;
        let step6 = self.frag_step6_tiled()?;

        let dispatch = Program::if_else(
            self.t.st1,
            augment,
            Program::if_else(self.t.st0, prime, step6),
        );

        let mut body = vec![refresh_ccm, refresh_vm];
        body.extend(scan);
        body.extend([
            Program::execute(cs_status),
            enc_prog,
            Program::execute(cs_decode),
            dispatch,
        ]);
        Ok(Program::while_true(t_searching, Program::seq(body)))
    }

    /// Tiled Step 6: δ = min over the per-row sweep minima, then the dual
    /// update only — no stored slack to shift, the next sweep recomputes
    /// `C − u − v` against the new potentials. Guarded like the sparse
    /// path: a non-finite δ latches `infeasible` and stops both loops
    /// rather than diverging.
    fn frag_step6_tiled(&mut self) -> Result<Program, GraphError> {
        let l = self.l.clone();
        let n = l.n;
        let t = self.t.clone();
        let t_acc = t.rowacc.expect("tiled storage has rowacc");
        let t_ok = t.delta_ok.expect("tiled storage has delta_ok");
        let t_inf = t.infeasible.expect("tiled storage has infeasible");

        let (delta, red_prog) = self.reduce_scalar("step6.delta", t_acc, ReduceOp::Min)?;

        let (t_searching, t_nd, t_ctr) = (t.searching, t.not_done, t.ctr_dual);
        let cs_guard = self.g.add_compute_set("step6.guard");
        self.collector_vertex(
            cs_guard,
            "guard",
            vec![
                (delta.whole(), Access::Read),
                (t_ok.whole(), Access::Write),
                (t_inf.whole(), Access::ReadWrite),
                (t_searching.whole(), Access::ReadWrite),
                (t_nd.whole(), Access::ReadWrite),
                (t_ctr.whole(), Access::ReadWrite),
            ],
            |ctx| {
                let finite = ctx.f32(0)[0].is_finite();
                ctx.i32_mut(1)[0] = i32::from(finite);
                if !finite {
                    ctx.i32_mut(2)[0] = 1;
                    ctx.i32_mut(3)[0] = 0;
                    ctx.i32_mut(4)[0] = 0;
                }
                ctx.i32_mut(5)[0] += 1;
                cost::scalar(6)
            },
        )?;

        let (t_dm, t_u, t_v, t_rcov, t_ccov) = (t.delta_m, t.u, t.v, t.row_cover, t.col_cover);
        let cs_upd = self.g.add_compute_set("step6.update");
        for row in 0..n {
            let tile = l.tile_of_row(row);
            let v = self.g.add_vertex(cs_upd, tile, "u_update", |ctx| {
                if ctx.i32(1)[0] == 0 {
                    ctx.f32_mut(2)[0] += ctx.f32(0)[0];
                }
                cost::scalar(3)
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g.connect(v, t_rcov.element(row), Access::Read)?;
            self.g.connect(v, t_u.element(row), Access::ReadWrite)?;
        }
        for seg in 0..l.n_col_segs() {
            let tile = l.col_seg_tile(seg);
            let cols = l.col_seg_cols(seg);
            let v = self.g.add_vertex(cs_upd, tile, "v_update", |ctx| {
                let delta = ctx.f32(0)[0];
                let cov = ctx.i32(1);
                let mut pot = ctx.f32_mut(2);
                kernels::sub_where_nonzero(&mut pot, &cov, delta);
                cost::f32_update(pot.len())
            })?;
            self.g.connect(v, t_dm.whole(), Access::Read)?;
            self.g
                .connect(v, t_ccov.slice(cols.clone()), Access::Read)?;
            self.g.connect(v, t_v.slice(cols), Access::ReadWrite)?;
        }

        let update = Program::seq(vec![
            Program::broadcast(delta.whole(), t_dm.whole()),
            Program::execute(cs_upd),
        ]);
        Ok(Program::seq(vec![
            red_prog,
            Program::execute(cs_guard),
            Program::if_true(t_ok, update),
        ]))
    }

    /// Assembles the tiled (out-of-core) driver: streamed setup sweeps
    /// replace Step 1 and the compression passes, then the standard
    /// Step 2/3 run over the bounded zero lists, and the outer loop runs
    /// the streamed search. Requires `Storage::Tiled`.
    pub fn assemble_tiled(&mut self) -> Result<Program, GraphError> {
        let Storage::Tiled { block_cols, zcap } = self.storage else {
            panic!("assemble_tiled requires Storage::Tiled");
        };
        let setup = self.frag_tiled_setup(block_cols, zcap)?;
        let step2 = self.frag_step2()?;
        let step3 = self.frag_step3()?;
        let search = self.frag_search_loop_tiled(block_cols)?;

        let t_searching = self.t.searching;
        let cs_begin = self.g.add_compute_set("begin_search");
        self.collector_vertex(
            cs_begin,
            "begin",
            vec![(t_searching.whole(), Access::Write)],
            |ctx| {
                ctx.i32_mut(0)[0] = 1;
                cost::scalar(1)
            },
        )?;

        let outer_body = Program::seq(vec![Program::execute(cs_begin), search, step3.clone()]);
        Ok(Program::seq(vec![
            setup,
            step2,
            step3,
            Program::while_true(self.t.not_done, outer_body),
        ]))
    }

    /// Assembles the full driver program (§IV): steps 1–2 once, then the
    /// outer completion loop with the inner search loop.
    pub fn assemble(&mut self) -> Result<Program, GraphError> {
        let step1 = self.frag_step1()?;
        let compress = self.frag_compress()?;
        let step2 = self.frag_step2()?;
        let step3 = self.frag_step3()?;
        let search = self.frag_search_loop(&compress)?;

        let t_searching = self.t.searching;
        let cs_begin = self.g.add_compute_set("begin_search");
        self.collector_vertex(
            cs_begin,
            "begin",
            vec![(t_searching.whole(), Access::Write)],
            |ctx| {
                ctx.i32_mut(0)[0] = 1;
                cost::scalar(1)
            },
        )?;

        let outer_body = Program::seq(vec![Program::execute(cs_begin), search, step3.clone()]);
        Ok(Program::seq(vec![
            step1,
            compress.clone(),
            step2,
            compress,
            step3,
            Program::while_true(self.t.not_done, outer_body),
        ]))
    }

    /// Assembles the warm-start re-solve driver: identical to
    /// [`Builder::assemble`] minus Step 1. The host uploads an
    /// already-reduced slack matrix together with repaired dual
    /// potentials (`lsap::repair_duals_f32` guarantees the slack is
    /// non-negative with an exact `0.0` per row — the invariant Step 1
    /// otherwise establishes), so the initial subtraction would recompute
    /// state the host already has. This is a *separate* program compiled
    /// into a separate engine: the cold path stays byte-for-byte
    /// unchanged, preserving every committed cycle baseline.
    pub fn assemble_seeded(&mut self) -> Result<Program, GraphError> {
        let compress = self.frag_compress()?;
        let step2 = self.frag_step2()?;
        let step3 = self.frag_step3()?;
        let search = self.frag_search_loop(&compress)?;

        let t_searching = self.t.searching;
        let cs_begin = self.g.add_compute_set("begin_search");
        self.collector_vertex(
            cs_begin,
            "begin",
            vec![(t_searching.whole(), Access::Write)],
            |ctx| {
                ctx.i32_mut(0)[0] = 1;
                cost::scalar(1)
            },
        )?;

        let outer_body = Program::seq(vec![Program::execute(cs_begin), search, step3.clone()]);
        Ok(Program::seq(vec![
            compress.clone(),
            step2,
            compress,
            step3,
            Program::while_true(self.t.not_done, outer_body),
        ]))
    }
}
