//! Warm compiled engines: the unit of reuse for batch and serving pools.
//!
//! The static-program constraint (C4) makes compiling and loading the
//! solve program the expensive, shape-dependent step — ~500k cycles of
//! program load on top of graph compilation. A [`WarmEngine`] is one
//! compiled program kept hot: the engine, its tensor handles, and a
//! *pristine snapshot* taken immediately after compile. Restoring the
//! snapshot makes the engine bit-identical to a freshly compiled one
//! (zeroed buffers, zeroed cycle statistics), so every solve streamed
//! through a warm engine produces *exactly* the report a cold
//! single-instance [`HunIpu::solve`] would — assignment, duals, and
//! cycle statistics — at any `SIM_THREADS`.
//!
//! [`crate::BatchHunIpu`] builds its per-call shape cache out of warm
//! engines; the `serve` crate's LRU engine pool keeps them alive across
//! requests so the program-load cost is paid once per shape (and again
//! only after an eviction), not once per request.

use crate::HunIpu;
use ipu_sim::EngineSnapshot;
use lsap::{CostMatrix, LsapError, SolveReport, WarmStart};
use std::time::Instant;

/// One compiled solve program kept hot for streaming same-shape
/// instances. Built by [`HunIpu::warm`]; solve instances through it with
/// [`WarmEngine::solve`].
pub struct WarmEngine {
    engine: ipu_sim::Engine,
    t: crate::build::Ts,
    /// Snapshot taken immediately after compile: restoring it makes the
    /// engine bit-identical to a freshly compiled one.
    pristine: EngineSnapshot,
    n: usize,
    /// Warm-start re-solve program ([`crate::build::Builder::assemble_seeded`]),
    /// compiled lazily on the first [`WarmEngine::solve_seeded`] so
    /// cold-only users never pay for it.
    seeded: Option<SeededProgram>,
}

/// The seeded companion program: same shape, no Step 1, own pristine
/// snapshot so seeded solves are as repeatable as cold ones.
struct SeededProgram {
    engine: ipu_sim::Engine,
    t: crate::build::Ts,
    pristine: EngineSnapshot,
}

impl WarmEngine {
    /// The instance size this program was compiled for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// One-time modeled cost of loading this program onto the device
    /// (charged by pools on compile and on re-compile after eviction,
    /// never per solve).
    pub fn program_load_cycles(&self) -> u64 {
        self.engine.program_load_cycles()
    }

    /// The underlying engine, for cycle-level inspection (profiling,
    /// exchange statistics) between solves.
    pub fn engine(&self) -> &ipu_sim::Engine {
        &self.engine
    }

    /// Streams one instance through the warm program: restore the
    /// pristine snapshot, load the matrix, run, extract the report.
    ///
    /// `solver` must be the [`HunIpu`] this engine was compiled by (or a
    /// clone with identical configuration) — it supplies the fault plan
    /// epoch stream, so a sequence of warm solves under an armed
    /// [`ipu_sim::FaultPlan`] reproduces the exact launch sequence of the
    /// equivalent cold solves.
    pub fn solve(
        &mut self,
        solver: &HunIpu,
        matrix: &CostMatrix,
    ) -> Result<SolveReport, LsapError> {
        let n = solver.validate_size(matrix)?;
        if n != self.n {
            return Err(LsapError::ShapeMismatch {
                expected: format!("{0}x{0} (this warm engine's compiled shape)", self.n),
                found: format!("{n}x{n}"),
            });
        }
        self.engine.restore(&self.pristine);
        solver.run_instance(&mut self.engine, &self.t, matrix, Instant::now())
    }

    /// Whether the seeded re-solve program has been compiled yet (it is
    /// built lazily by the first [`WarmEngine::solve_seeded`]).
    pub fn seeded_ready(&self) -> bool {
        self.seeded.is_some()
    }

    /// One-time modeled cost of loading the seeded re-solve program, once
    /// compiled ([`None`] before the first seeded solve). Pools charge it
    /// like [`WarmEngine::program_load_cycles`]: once per warm-up, never
    /// per solve.
    pub fn seeded_program_load_cycles(&self) -> Option<u64> {
        self.seeded.as_ref().map(|s| s.engine.program_load_cycles())
    }

    /// Streams a warm-started re-solve through the seeded program: the
    /// previous solve's duals are repaired against `matrix` on the host
    /// ([`lsap::repair_duals_f32`]), the reduced slack and repaired `u, v`
    /// are uploaded in place of the raw cost matrix, and the device runs
    /// Steps 2–6 only — Step 1's reductions are skipped entirely.
    ///
    /// The result is a complete [`SolveReport`] with its own
    /// [`lsap::DualCertificate`]; callers gate acceptance on
    /// [`SolveReport::verify`] exactly as for a cold solve (the
    /// [`lsap::IncrementalSolver`] does this and falls back to a cold
    /// solve on failure). `stats.seeded` is set so fallback accounting
    /// stays observable.
    pub fn solve_seeded(
        &mut self,
        solver: &HunIpu,
        matrix: &CostMatrix,
        warm: &WarmStart,
    ) -> Result<SolveReport, LsapError> {
        let n = solver.validate_size(matrix)?;
        if n != self.n {
            return Err(LsapError::ShapeMismatch {
                expected: format!("{0}x{0} (this warm engine's compiled shape)", self.n),
                found: format!("{n}x{n}"),
            });
        }
        let seed = lsap::repair_duals_f32(matrix, warm)?;
        if self.seeded.is_none() {
            let (engine, t) = solver.compile_for_seeded(self.n)?;
            let pristine = engine.snapshot();
            self.seeded = Some(SeededProgram {
                engine,
                t,
                pristine,
            });
        }
        let s = self.seeded.as_mut().expect("compiled above");
        s.engine.restore(&s.pristine);
        solver.run_instance_seeded(&mut s.engine, &s.t, matrix, &seed, Instant::now())
    }
}

impl HunIpu {
    /// Compiles the solve program for instance size `n` and returns it as
    /// a [`WarmEngine`] ready for streaming. This is the expensive step
    /// pools amortize: the caller should charge
    /// [`WarmEngine::program_load_cycles`] to whatever clock it keeps,
    /// once per warm-up.
    pub fn warm(&self, n: usize) -> Result<WarmEngine, LsapError> {
        let (engine, t) = self.compile_for(n)?;
        let pristine = engine.snapshot();
        Ok(WarmEngine {
            engine,
            t,
            pristine,
            n,
            seeded: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_sim::IpuConfig;
    use lsap::LsapSolver;

    #[test]
    fn warm_solves_match_cold_solves_bit_for_bit() {
        let solver = HunIpu::with_config(IpuConfig::tiny(8));
        let mut warm = solver.warm(6).unwrap();
        let mut cold = HunIpu::with_config(IpuConfig::tiny(8));
        for seed in 0..3u64 {
            let m = datasets::gaussian_cost_matrix(6, 50, seed);
            let w = warm.solve(&solver, &m).unwrap();
            let c = cold.solve(&m).unwrap();
            assert_eq!(w.assignment, c.assignment);
            assert_eq!(w.objective.to_bits(), c.objective.to_bits());
            assert_eq!(w.certificate, c.certificate);
            assert_eq!(w.stats.modeled_cycles, c.stats.modeled_cycles);
            assert_eq!(w.stats.device_steps, c.stats.device_steps);
        }
    }

    #[test]
    fn wrong_shape_is_rejected_without_running() {
        let solver = HunIpu::with_config(IpuConfig::tiny(8));
        let mut warm = solver.warm(6).unwrap();
        let m = datasets::gaussian_cost_matrix(4, 50, 1);
        match warm.solve(&solver, &m) {
            Err(LsapError::ShapeMismatch { expected, found }) => {
                assert!(expected.contains("6x6"), "{expected}");
                assert!(found.contains("4x4"), "{found}");
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn program_load_cost_is_positive_and_stable() {
        let solver = HunIpu::with_config(IpuConfig::tiny(8));
        let warm = solver.warm(6).unwrap();
        assert!(warm.program_load_cycles() > 0);
        let again = solver.warm(6).unwrap();
        assert_eq!(warm.program_load_cycles(), again.program_load_cycles());
    }
}
