//! Quick performance probe (developer tool).
use hunipu::HunIpu;
use lsap::CostMatrix;

fn main() {
    let n = 512usize;
    let mut s = 0x12345678u64;
    let m = CostMatrix::from_fn(n, n, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % (10 * n as u64)) as f64 + 1.0
    })
    .unwrap();
    let solver = HunIpu::new();
    let (rep, engine) = solver.solve_with_engine(&m).unwrap();
    let st = engine.stats();
    println!(
        "modeled={:.4}s supersteps={} aug={} dual={}",
        rep.stats.modeled_seconds.unwrap(),
        st.supersteps,
        rep.stats.augmentations,
        rep.stats.dual_updates
    );
    println!(
        "compute={} sync={} exchange={} control={} (cycles)",
        st.compute_cycles, st.sync_cycles, st.exchange_cycles, st.control_cycles
    );
    let mut pcs: Vec<_> = st
        .per_compute_set
        .iter()
        .filter(|b| b.executions > 0)
        .collect();
    pcs.sort_by_key(|b| std::cmp::Reverse(b.compute_cycles));
    for b in pcs.iter().take(12) {
        println!(
            "  {:<28} exec={:<8} cycles={}",
            b.name, b.executions, b.compute_cycles
        );
    }
    println!(
        "exchanges={} exchange_bytes={}",
        st.exchanges, st.exchange_bytes
    );
}
