//! Differential tests for the chip-topology-aware layout: on
//! single-chip configs the chip-aware machinery must be **bit-identical**
//! to the seed's flat layout (buffers, cycle statistics, fault
//! behaviour); on multi-chip configs it must produce identical solves in
//! strictly fewer modeled cycles, and stay certifiable under fault
//! injection.

use hunipu::{BatchHunIpu, HunIpu, LayoutMode, F32_VERIFY_EPS};
use ipu_sim::{FaultPlan, IpuConfig};
use lsap::{BatchLsapSolver, CostMatrix, LsapSolver};

fn instance(n: usize, seed: u64) -> CostMatrix {
    datasets::gaussian_cost_matrix(n, 100, seed)
}

/// Everything a solve can produce, bit-exact: objective, assignment,
/// duals, and the full modeled cycle breakdown.
fn fingerprint(solver: HunIpu, m: &CostMatrix) -> String {
    let (rep, engine) = solver.solve_with_engine(m).unwrap();
    format!(
        "obj={:016x} pairs={:?} u={:?} v={:?} stats={:?} aug={} dual={}",
        rep.objective.to_bits(),
        rep.assignment.pairs().collect::<Vec<_>>(),
        rep.certificate
            .u
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        rep.certificate
            .v
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        engine.stats(),
        rep.stats.augmentations,
        rep.stats.dual_updates,
    )
}

#[test]
fn single_chip_modes_are_bit_identical() {
    // On one chip every layout mode must degenerate to the seed's flat
    // program: same buffers, same CycleStats, bit for bit.
    let m = instance(13, 3);
    for config in [IpuConfig::tiny(8), IpuConfig::tiny_multi(1, 8)] {
        let flat = fingerprint(
            HunIpu::with_config(config.clone()).with_layout_mode(LayoutMode::Flat),
            &m,
        );
        for mode in [LayoutMode::Auto, LayoutMode::ChipAware] {
            let other = fingerprint(
                HunIpu::with_config(config.clone()).with_layout_mode(mode),
                &m,
            );
            assert_eq!(flat, other, "{mode:?} diverged from Flat on single-chip");
        }
    }
}

#[test]
fn single_chip_fault_behaviour_is_bit_identical() {
    // The fault stream advances per superstep; identical programs must
    // see the identical stream — outcome and fault counters included.
    let m = instance(13, 5);
    let run = |mode: LayoutMode| {
        let plan = FaultPlan::new(42)
            .with_bit_flips(0.01)
            .with_exchange_corruption(0.005)
            .with_stragglers(0.02, 3.0)
            .after_supersteps(50);
        let solver = HunIpu::with_config(IpuConfig {
            max_while_iterations: 50_000,
            ..IpuConfig::tiny(8)
        })
        .with_layout_mode(mode)
        .with_fault_plan(plan);
        match solver.solve_with_engine(&m) {
            Ok((rep, engine)) => format!(
                "ok obj={:016x} cycles={} faults={:?}",
                rep.objective.to_bits(),
                engine.stats().total_cycles(),
                engine.stats().faults
            ),
            Err(e) => format!("err {e}"),
        }
    };
    let flat = run(LayoutMode::Flat);
    assert_eq!(flat, run(LayoutMode::Auto));
    assert_eq!(flat, run(LayoutMode::ChipAware));
}

#[test]
fn multi_chip_solves_match_flat_and_cut_cycles() {
    // Min/Max/i32-sum reductions are order-exact, so regrouping them
    // per chip must not change any solve output — only the cycle count.
    for (config, n) in [
        (IpuConfig::tiny_multi(2, 6), 18),
        (IpuConfig::tiny_multi(4, 4), 24),
    ] {
        let m = instance(n, 11);
        let (flat_rep, flat_engine) = HunIpu::with_config(config.clone())
            .with_layout_mode(LayoutMode::Flat)
            .solve_with_engine(&m)
            .unwrap();
        let (chip_rep, chip_engine) = HunIpu::with_config(config.clone())
            .with_layout_mode(LayoutMode::Auto)
            .solve_with_engine(&m)
            .unwrap();
        assert_eq!(
            flat_rep.objective.to_bits(),
            chip_rep.objective.to_bits(),
            "objective diverged on {config:?}"
        );
        assert_eq!(flat_rep.assignment, chip_rep.assignment);
        assert_eq!(flat_rep.certificate, chip_rep.certificate);
        chip_rep.verify(&m, F32_VERIFY_EPS).unwrap();
        let flat_cycles = flat_engine.stats().total_cycles();
        let chip_cycles = chip_engine.stats().total_cycles();
        assert!(
            chip_cycles < flat_cycles,
            "chip-aware must be faster on {config:?}: {chip_cycles} vs {flat_cycles}"
        );
    }
}

#[test]
fn four_chip_layout_cuts_modeled_cycles_by_20_percent() {
    // The headline claim: on 4-IPU configs the hierarchical exchange
    // structure removes ≥20% of modeled solve cycles vs the
    // chip-oblivious layout.
    let config = IpuConfig::tiny_multi(4, 8);
    let m = instance(48, 17);
    let (_, flat) = HunIpu::with_config(config.clone())
        .with_layout_mode(LayoutMode::Flat)
        .solve_with_engine(&m)
        .unwrap();
    let (rep, chip) = HunIpu::with_config(config)
        .with_layout_mode(LayoutMode::Auto)
        .solve_with_engine(&m)
        .unwrap();
    rep.verify(&m, F32_VERIFY_EPS).unwrap();
    let flat_cycles = flat.stats().total_cycles() as f64;
    let chip_cycles = chip.stats().total_cycles() as f64;
    assert!(
        chip_cycles <= 0.8 * flat_cycles,
        "expected >=20% cut, got {:.1}% ({chip_cycles} vs {flat_cycles})",
        100.0 * (1.0 - chip_cycles / flat_cycles)
    );
}

#[test]
fn multi_chip_solves_are_bit_identical_across_host_threads() {
    let m = instance(24, 23);
    let run = |threads: usize| {
        fingerprint(
            HunIpu::with_config(IpuConfig {
                host_threads: threads,
                ..IpuConfig::tiny_multi(4, 4)
            }),
            &m,
        )
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(sequential, run(threads), "{threads}-thread run diverged");
    }
}

#[test]
fn multi_chip_faulty_batch_produces_certified_optima() {
    // host_parallel.rs-style fault plan on a 4-chip device: the
    // verify-and-retry loop must still deliver certified optima from
    // the chip-aware program.
    let batch: Vec<CostMatrix> = (0..4).map(|i| instance(16, 31 + i)).collect();
    let plan = FaultPlan::new(77)
        .with_bit_flips(0.002)
        .with_exchange_corruption(0.001)
        .with_stragglers(0.02, 3.0)
        .after_supersteps(50);
    let solver = HunIpu::with_config(IpuConfig {
        max_while_iterations: 50_000,
        ..IpuConfig::tiny_multi(4, 4)
    })
    .with_fault_plan(plan);
    assert!(solver.hierarchical(), "Auto must pick chip-aware on 4 IPUs");
    let rep = BatchHunIpu::with_solver(solver)
        .with_max_attempts(8)
        .solve_batch(&batch)
        .unwrap();
    rep.verify_all(&batch, F32_VERIFY_EPS).unwrap();
    let mut truth = cpu_hungarian::JonkerVolgenant::new();
    for (m, r) in batch.iter().zip(&rep.reports) {
        let t = truth.solve(m).unwrap();
        assert!((t.objective - r.objective).abs() < 1e-6 * (1.0 + t.objective.abs()));
    }
}
