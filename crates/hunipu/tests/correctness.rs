//! End-to-end correctness of HunIPU on the simulated device: optimal
//! objectives (vs. the Jonker–Volgenant-style ground truth recomputed
//! here with a reference implementation), valid certificates, and the
//! paper's worked micro-examples.

use hunipu::{HunIpu, F32_VERIFY_EPS};
use ipu_sim::IpuConfig;
use lsap::{CostMatrix, LsapSolver, SolveReport};
use proptest::prelude::*;

/// Reference optimum via an O(n^3) shortest-augmenting-path solver
/// (duplicated minimally here to avoid a circular dev-dependency on
/// `cpu-hungarian`).
fn reference_optimum(m: &CostMatrix) -> f64 {
    let n = m.n();
    let c = m.as_slice();
    const FREE: usize = usize::MAX;
    let mut u = vec![0.0f64; n];
    let mut v = vec![0.0f64; n + 1];
    let mut col_row = vec![FREE; n + 1];
    for i in 0..n {
        col_row[n] = i;
        let mut j0 = n;
        let mut minv = vec![f64::INFINITY; n];
        let mut way = vec![n; n];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = col_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = FREE;
            for j in 0..n {
                if !used[j] {
                    let cur = c[i0 * n + j] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..n {
                if used[j] {
                    u[col_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            u[col_row[n]] += delta;
            v[n] -= delta;
            j0 = j1;
            if col_row[j0] == FREE {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            col_row[j0] = col_row[j1];
            j0 = j1;
            if j0 == n {
                break;
            }
        }
    }
    (0..n).map(|j| c[col_row[j] * n + j]).sum()
}

fn solve_on(tiles: usize, m: &CostMatrix) -> SolveReport {
    let mut solver = HunIpu::with_config(IpuConfig::tiny(tiles));
    let report = solver.solve(m).expect("hunipu solve failed");
    report
        .verify(m, F32_VERIFY_EPS)
        .expect("hunipu certificate failed verification");
    report
}

fn assert_optimal(tiles: usize, m: &CostMatrix) {
    let report = solve_on(tiles, m);
    let truth = reference_optimum(m);
    let scale = {
        let (lo, hi) = m.min_max();
        1.0f64.max(lo.abs()).max(hi.abs()) * m.n() as f64
    };
    assert!(
        (report.objective - truth).abs() <= F32_VERIFY_EPS * scale,
        "hunipu {} vs truth {truth} on n={}",
        report.objective,
        m.n()
    );
}

#[test]
fn paper_example_3x3() {
    let m = CostMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]).unwrap();
    let report = solve_on(4, &m);
    assert_eq!(report.objective, 5.0);
    assert!(report.assignment.is_perfect());
}

#[test]
fn figure1_compression_row_instance() {
    // The slack row of Fig. 1 embedded as one row of a 12x12 instance:
    // the solver must handle rows whose zeros cluster in some thread
    // segments and are absent from others.
    let fig1 = [
        13.0, 0.0, 0.0, 0.0, 0.0, 1.0, 60.0, 7.0, 22.0, 8.0, 2.0, 0.0,
    ];
    let n = 12;
    let m = CostMatrix::from_fn(n, n, |i, j| {
        if i == 0 {
            fig1[j]
        } else {
            ((i * 7 + j * 3) % 11) as f64 + 1.0
        }
    })
    .unwrap();
    assert_optimal(6, &m);
}

#[test]
fn figure2_initial_matching_instance() {
    // The 4x4 slack matrix of Fig. 2(a).
    let m = CostMatrix::from_rows(&[
        &[3.0, 0.0, 2.0, 7.0],
        &[1.0, 0.0, 2.0, 0.0],
        &[0.0, 3.0, 4.0, 2.0],
        &[1.0, 9.0, 6.0, 0.0],
    ])
    .unwrap();
    let report = solve_on(4, &m);
    // Optimal: rows can all land on zeros: (0,1),(1,?),(2,0),(3,3) —
    // row 1 takes column 2 at cost 2? No: (1,3) is 0 but col 3 is taken
    // by row 3 (0). Reference: optimum is 2.
    assert_eq!(report.objective, 2.0);
}

#[test]
fn product_matrix_forces_dual_updates() {
    let m = CostMatrix::from_fn(5, 5, |i, j| ((i + 1) * (j + 1)) as f64).unwrap();
    let report = solve_on(4, &m);
    assert!(report.stats.dual_updates >= 1, "step 6 must have run");
    assert_optimal(4, &m);
}

#[test]
fn identity_and_anti_diagonal() {
    let n = 9;
    let m = CostMatrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { 5.0 }).unwrap();
    assert_eq!(solve_on(5, &m).objective, 0.0);
    let m = CostMatrix::from_fn(n, n, |i, j| if i + j == n - 1 { 1.0 } else { 9.0 }).unwrap();
    assert_eq!(solve_on(5, &m).objective, n as f64);
}

#[test]
fn constant_matrix_all_ties() {
    let m = CostMatrix::filled(8, 3.0).unwrap();
    let report = solve_on(4, &m);
    assert_eq!(report.objective, 24.0);
}

#[test]
fn single_element() {
    let m = CostMatrix::filled(1, 7.0).unwrap();
    assert_eq!(solve_on(2, &m).objective, 7.0);
}

#[test]
fn n_larger_than_tiles_and_n_smaller_than_tiles() {
    // More rows than worker tiles (rows_per_tile > 1) and fewer.
    for (n, tiles) in [(13, 4), (4, 13)] {
        let m = CostMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as f64).unwrap();
        assert_optimal(tiles, &m);
    }
}

#[test]
fn device_counters_are_consistent() {
    let n = 10;
    let m = CostMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 19) as f64 + 1.0).unwrap();
    let report = solve_on(6, &m);
    // Augmentations can't exceed n (each one adds a matched column).
    assert!(report.stats.augmentations <= n as u64);
    assert!(report.stats.device_steps > 0);
    assert!(report.stats.modeled_seconds.unwrap() > 0.0);
}

#[test]
fn stats_report_modeled_time_well_below_wall_time_units() {
    // Sanity: a 16x16 instance should take far less than a modeled
    // millisecond on a (simulated) 1472-tile device.
    let m = CostMatrix::from_fn(16, 16, |i, j| ((i * 5 + j * 11) % 29) as f64).unwrap();
    let mut solver = HunIpu::new(); // full Mk2
    let report = solver.solve(&m).unwrap();
    report.verify(&m, F32_VERIFY_EPS).unwrap();
    assert!(report.stats.modeled_seconds.unwrap() < 1e-2);
}

#[test]
fn custom_col_seg_sizes_agree() {
    let n = 20;
    let m = CostMatrix::from_fn(n, n, |i, j| ((i * 3 + j * 19) % 31) as f64).unwrap();
    let truth = reference_optimum(&m);
    for seg in [1, 4, 8, 32, 64] {
        let mut solver = HunIpu::with_config(IpuConfig::tiny(7)).with_col_seg(seg);
        let report = solver.solve(&m).unwrap();
        report.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(report.objective, truth, "col_seg={seg}");
    }
}

#[test]
fn rejects_non_square() {
    let m = CostMatrix::from_vec(2, 3, vec![0.0; 6]).unwrap();
    assert!(HunIpu::with_config(IpuConfig::tiny(4)).solve(&m).is_err());
}

#[test]
fn solves_on_multi_chip_systems() {
    // §III: the exchange address space spans all chips; HunIPU's layout
    // must stay correct when rows land on different chips, and the
    // chip-crossing traffic must make the same solve slower.
    let m = CostMatrix::from_fn(18, 18, |i, j| ((i * 7 + j * 5) % 19) as f64).unwrap();
    let truth = reference_optimum(&m);
    let (rep1, e1) = HunIpu::with_config(IpuConfig::tiny(11))
        .solve_with_engine(&m)
        .unwrap();
    let (rep2, e2) = HunIpu::with_config(IpuConfig::tiny_multi(2, 6))
        .solve_with_engine(&m)
        .unwrap();
    assert_eq!(rep1.objective, truth);
    assert_eq!(rep2.objective, truth);
    rep2.verify(&m, F32_VERIFY_EPS).unwrap();
    // Roughly one exchange structure, but the split system pays links.
    assert!(
        e2.stats().exchange_cycles > e1.stats().exchange_cycles,
        "chip-crossing exchange must cost more ({} vs {})",
        e2.stats().exchange_cycles,
        e1.stats().exchange_cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random integer-valued instances (exact in f32) across shapes and
    /// tie densities: HunIPU matches the reference optimum exactly.
    #[test]
    fn matches_reference_on_random_instances(
        n in 1usize..=14,
        tiles in 3usize..=9,
        modulus in 2i32..60,
        seed in 0u64..1_000_000,
    ) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % modulus as u64) as f64
        };
        let m = CostMatrix::from_fn(n, n, |_, _| next()).unwrap();
        let report = solve_on(tiles, &m);
        let truth = reference_optimum(&m);
        prop_assert!(
            (report.objective - truth).abs() < 1e-9,
            "hunipu {} vs truth {} (n={n}, tiles={tiles}, mod={modulus})",
            report.objective, truth
        );
    }
}
