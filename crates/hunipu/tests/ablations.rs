//! The ablation variants must stay *correct* — they only trade
//! performance. Every variant must return the same optimal objective and
//! a valid certificate.

use hunipu::{AblationConfig, DynSlice, HunIpu, F32_VERIFY_EPS};
use ipu_sim::IpuConfig;
use lsap::{CostMatrix, LsapSolver};

fn instance(n: usize, seed: u64) -> CostMatrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    CostMatrix::from_fn(n, n, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 211) as f64
    })
    .unwrap()
}

fn objective_with(m: &CostMatrix, ab: AblationConfig) -> f64 {
    let mut solver = HunIpu::with_config(IpuConfig::tiny(8)).with_ablation(ab);
    let rep = solver.solve(m).unwrap();
    rep.verify(m, F32_VERIFY_EPS).unwrap();
    rep.objective
}

#[test]
fn no_compression_matches_default() {
    for seed in 0..6 {
        let m = instance(13, seed);
        let base = objective_with(&m, AblationConfig::default());
        let no_comp = objective_with(
            &m,
            AblationConfig {
                compression: false,
                ..Default::default()
            },
        );
        assert_eq!(base, no_comp, "seed {seed}");
    }
}

#[test]
fn single_tile_dynslice_matches_default() {
    for seed in 0..6 {
        let m = instance(11, seed);
        let base = objective_with(&m, AblationConfig::default());
        let single = objective_with(
            &m,
            AblationConfig {
                dyn_slice: DynSlice::SingleTileGather,
                ..Default::default()
            },
        );
        assert_eq!(base, single, "seed {seed}");
    }
}

#[test]
fn both_ablations_together_match_default() {
    let m = instance(10, 99);
    let base = objective_with(&m, AblationConfig::default());
    let both = objective_with(
        &m,
        AblationConfig {
            compression: false,
            dyn_slice: DynSlice::SingleTileGather,
        },
    );
    assert_eq!(base, both);
}

#[test]
fn compression_reduces_modeled_step4_cost() {
    // On a sparse-zero instance, the compressed status scan must be
    // cheaper than the raw row scan.
    let m = instance(32, 7);
    let run = |compression: bool| {
        let solver = HunIpu::with_config(IpuConfig::tiny(8)).with_ablation(AblationConfig {
            compression,
            ..Default::default()
        });
        let (rep, engine) = solver.solve_with_engine(&m).unwrap();
        let status_cycles: u64 = engine
            .stats()
            .per_compute_set
            .iter()
            .filter(|b| b.name == "step4.status")
            .map(|b| b.compute_cycles)
            .sum();
        (rep.objective, status_cycles)
    };
    let (obj_on, cycles_on) = run(true);
    let (obj_off, cycles_off) = run(false);
    assert_eq!(obj_on, obj_off);
    assert!(
        cycles_off > cycles_on,
        "raw scans ({cycles_off}) must cost more than compressed ({cycles_on})"
    );
}

#[test]
fn single_tile_dynslice_moves_more_bytes() {
    let m = instance(24, 3);
    let run = |dyn_slice: DynSlice| {
        let solver = HunIpu::with_config(IpuConfig::tiny(8)).with_ablation(AblationConfig {
            dyn_slice,
            ..Default::default()
        });
        let (_, engine) = solver.solve_with_engine(&m).unwrap();
        engine.stats().exchange_bytes
    };
    let pd = run(DynSlice::PartitionDistribute);
    let st = run(DynSlice::SingleTileGather);
    assert!(
        st > pd,
        "single-tile shipping ({st} B) must exceed partition-and-distribute ({pd} B)"
    );
}
