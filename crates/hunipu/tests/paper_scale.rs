//! Paper-scale static checks: the n = 8192 instance ("more than 64
//! million elements", §I) must **fit** the Mk2's per-tile SRAM with the
//! paper's layout — the memory-budget validation at graph compile time
//! proves it. Building (not running) the graph is cheap enough for a
//! test; actually solving n = 8192 is the `--full` benchmark grid.

use hunipu::Layout;

#[test]
fn mk2_layout_numbers_at_8192() {
    let l = Layout::new(8192, 1472, 6);
    // 6 rows per worker tile; slack block = 6 * 8192 * 4 B = 192 KiB,
    // same for the compressed matrix; both plus mirrors fit 624 KiB.
    assert_eq!(l.rows_per_tile, 6);
    let slack_block = 6 * 8192 * 4;
    let compress_block = slack_block;
    let mirrors = 3 * 8192 * 4; // ccm + two scratch mirrors
    let col_aux = 3 * 8192 * 4; // colpart + colrecv + colmirror blocks
    let total = slack_block + compress_block + mirrors + col_aux;
    assert!(
        total <= 624 * 1024,
        "paper-scale per-tile footprint {total} exceeds 624 KiB"
    );
}

#[test]
fn mk2_graph_compiles_at_2048() {
    // Full static validation (mapping coverage, memory budget, locality,
    // race freedom) of a real mid-scale instance on the full Mk2
    // device. n = 2048 keeps the test quick while exercising multi-row
    // tiles' layout logic; the same validation runs at 8192 in the
    // `--full` harness.
    let m = lsap::CostMatrix::filled(2048, 1.0).unwrap();
    let solver = hunipu::HunIpu::new();
    // Building + compiling happens inside solve; run on a trivially
    // solvable instance (all-equal costs converge immediately after
    // step 1 + step 2 + one augmentation round).
    let rep = lsap::LsapSolver::solve(&mut solver.clone(), &m).expect("mk2 graph must compile");
    assert_eq!(rep.objective, 2048.0);
}
