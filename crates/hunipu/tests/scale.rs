//! Beyond-SRAM scale: the sparse k-candidate and tiled out-of-core
//! paths, differentially tested against dense CPU ground truth (small n)
//! and dual certificates (large n), plus the memory-ceiling contract —
//! a dense n = 4096 program must be *rejected* by the per-tile SRAM
//! budget on a 64-tile device while the tiled program compiles and
//! solves the same instance.

use cpu_hungarian::JonkerVolgenant;
use datasets::{diag_dominant, prune_topk, uniform_cost_matrix};
use hunipu::{HunIpu, LayoutMode, F32_VERIFY_EPS};
use ipu_sim::IpuConfig;
use lsap::{CostMatrix, LsapError, LsapSolver};

fn reference_optimum(m: &CostMatrix) -> f64 {
    JonkerVolgenant::default()
        .solve(m)
        .expect("reference solve")
        .objective
}

/// The acceptance instance family: easy at any size (Step 2 matches
/// almost every row), so the large-n grid stays tractable in simulation.
fn easy(n: usize) -> CostMatrix {
    diag_dominant(n, 3, 2)
}

// ---------------------------------------------------------------------
// Memory ceiling (satellite: per-tile SRAM budget is load-bearing).
// ---------------------------------------------------------------------

/// On 64 tiles, dense n = 4096 needs ≈ 64 rows × 4096 × 8 B ≈ 2 MiB of
/// slack + compress per tile — far past the 624 KiB budget. The compile
/// must reject it; the tiled program must solve the same instance with
/// bounded resident memory; and `LayoutMode::Auto` must make that
/// upgrade on its own.
#[test]
fn dense_4096_exceeds_sram_but_tiled_solves() {
    let config = IpuConfig::tiny(64);
    let n = 4096;
    let m = easy(n);

    let solver = HunIpu::with_config(config.clone());
    assert!(!solver.dense_fits(n), "heuristic must flag n=4096/64 tiles");
    let err = solver
        .with_layout_mode(LayoutMode::Flat)
        .solve_with_engine(&m)
        .expect_err("dense n=4096 must blow the 624 KiB tile budget");
    let LsapError::Backend { detail } = &err else {
        panic!("expected a backend (compile) error, got {err:?}");
    };
    assert!(
        detail.contains("memory"),
        "error must be the tile-memory budget, got: {detail}"
    );

    // The tiled program solves the instance the dense path cannot hold.
    let solver = HunIpu::with_config(config.clone());
    let (report, engine) = solver.solve_tiled(&m).expect("tiled solve");
    report.verify(&m, F32_VERIFY_EPS).expect("tiled certificate");
    assert_eq!(report.objective, n as f64);
    assert!(engine.stats().host_bytes > 0, "cost blocks must stream");

    // Auto chooses the tiled path without being told.
    let mut auto = HunIpu::with_config(config);
    let auto_report = auto.solve(&m).expect("auto solve at n=4096");
    auto_report.verify(&m, F32_VERIFY_EPS).unwrap();
    assert_eq!(auto_report.objective, n as f64);
}

// ---------------------------------------------------------------------
// Tiled differential: bit-equal objectives vs CPU ground truth.
// ---------------------------------------------------------------------

#[test]
fn tiled_matches_reference_on_small_instances() {
    for (n, tiles, bc, zcap) in [(16, 5, 8, 3), (48, 7, 16, 4), (96, 11, 32, 8)] {
        let m = CostMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as f64).unwrap();
        let truth = reference_optimum(&m);
        let solver = HunIpu::with_config(IpuConfig::tiny(tiles)).with_tiled_params(bc, zcap);
        let (report, _) = solver.solve_tiled(&m).expect("tiled solve");
        report.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(report.objective, truth, "n={n} tiles={tiles} bc={bc}");
    }
}

#[test]
fn tiled_matches_dense_device_path() {
    // Same instance through both representations: identical objectives
    // (both certificate-verified, both exact for integer costs).
    let n = 64;
    let m = uniform_cost_matrix(n, 1, 7);
    let dense = HunIpu::with_config(IpuConfig::tiny(9))
        .solve_with_engine(&m)
        .unwrap()
        .0;
    let tiled = HunIpu::with_config(IpuConfig::tiny(9))
        .with_tiled_params(16, 6)
        .solve_tiled(&m)
        .unwrap()
        .0;
    dense.verify(&m, F32_VERIFY_EPS).unwrap();
    tiled.verify(&m, F32_VERIFY_EPS).unwrap();
    assert_eq!(dense.objective, tiled.objective);
}

#[test]
fn tiled_rejects_fractional_costs() {
    let m = CostMatrix::from_fn(8, 8, |i, j| (i + j) as f64 + 0.5).unwrap();
    let err = HunIpu::with_config(IpuConfig::tiny(4))
        .solve_tiled(&m)
        .expect_err("fractional costs must be rejected");
    let LsapError::Backend { detail } = err else {
        panic!("expected backend error")
    };
    assert!(detail.contains("integer costs"), "got: {detail}");
}

// ---------------------------------------------------------------------
// Sparse differential: k ∈ {2, 8, n/4} × n ∈ {256, 1024, 4096}.
// ---------------------------------------------------------------------

/// n = 256, dense CPU ground truth. `solve_pruned` must land on the
/// dense optimum for every k — repairing or escalating where the prune
/// was too aggressive.
#[test]
fn sparse_repair_matches_reference_n256() {
    let n = 256;
    let m = uniform_cost_matrix(n, 1, 11);
    let truth = reference_optimum(&m);
    let solver = HunIpu::with_config(IpuConfig::tiny(32));
    for k in [2, 8, n / 4] {
        let out = solver.solve_pruned(&m, k, 8).expect("pruned solve");
        out.report.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(out.report.objective, truth, "k={k}");
    }
}

/// n = 1024 on the known-optimum instance (cost exactly n); every solve
/// is certificate-verified against the dense matrix.
#[test]
fn sparse_repair_certified_n1024() {
    let n = 1024;
    let m = easy(n);
    let solver = HunIpu::with_config(IpuConfig::tiny(64));
    for k in [2, 8, n / 4] {
        let out = solver.solve_pruned(&m, k, 8).expect("pruned solve");
        out.report.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(out.report.objective, n as f64, "k={k}");
        assert!(!out.dense_fallback, "k={k} must not need the dense engine");
    }
}

/// n = 4096: certificate-verified only (CPU ground truth is out of test
/// budget; the certificate is an optimality proof regardless). k = n/4
/// is skipped — its candidate footprint is the dense regime this grid's
/// small-k rows exist to avoid.
#[test]
fn sparse_repair_certified_n4096() {
    let n = 4096;
    let m = easy(n);
    let solver = HunIpu::with_config(IpuConfig::tiny(128));
    for k in [2, 8] {
        let out = solver.solve_pruned(&m, k, 8).expect("pruned solve");
        out.report.verify(&m, F32_VERIFY_EPS).unwrap();
        assert_eq!(out.report.objective, n as f64, "k={k}");
    }
}

/// The direct sparse engine agrees with dense ground truth whenever the
/// prune keeps the optimum (diag-dominant top-k always contains the
/// 1-entries), without going through the repair driver.
#[test]
fn sparse_engine_direct_differential() {
    for (n, tiles) in [(64, 9), (256, 32)] {
        let m = easy(n);
        for k in [2, 8, n / 4] {
            let sc = prune_topk(&m, k);
            let solver = HunIpu::with_config(IpuConfig::tiny(tiles));
            let report = solver.solve_sparse(&sc).expect("sparse solve");
            sc.verify_report(&report, F32_VERIFY_EPS)
                .expect("sparse certificate");
            assert_eq!(report.objective, n as f64, "n={n} k={k}");
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial prune: optimal edge cut → repair, never a wrong answer.
// ---------------------------------------------------------------------

/// The lsap repair driver's canonical adversarial instance, run through
/// the *device* sparse engine: k = 2 prunes r1's optimal column, the
/// pruned certificate fails against the dense matrix, and the repair
/// loop must re-admit the cut column and land on the dense optimum.
#[test]
fn device_repair_readmits_pruned_optimal_edge() {
    let m = CostMatrix::from_rows(&[
        &[0.0, 1.0, 2.0],
        &[0.0, 100.0, 99.0],
        &[98.0, 0.0, 100.0],
    ])
    .unwrap();
    let solver = HunIpu::with_config(IpuConfig::tiny(4));
    let out = solver.solve_pruned(&m, 2, 6).expect("repair must converge");
    assert!(out.rounds > 1, "repair must actually trigger: {out:?}");
    assert!(out.readmitted > 0);
    assert!(!out.dense_fallback);
    assert_eq!(out.report.objective, 2.0);
    out.report.verify(&m, F32_VERIFY_EPS).unwrap();
}

/// A Hall-violating prune (three rows share the same two cheap columns)
/// must surface [`LsapError::SparseInfeasible`] from the device — the δ
/// guard, not a hang — and the driver escalates k past it.
#[test]
fn device_infeasible_prune_escalates() {
    let m = CostMatrix::from_rows(&[
        &[1.0, 1.0, 50.0, 60.0],
        &[1.0, 1.0, 60.0, 50.0],
        &[1.0, 1.0, 70.0, 70.0],
        &[30.0, 40.0, 1.0, 1.0],
    ])
    .unwrap();
    let solver = HunIpu::with_config(IpuConfig::tiny(4));

    // Direct sparse solve on the bad prune: clean infeasibility error.
    let sc = prune_topk(&m, 2);
    match solver.solve_sparse(&sc) {
        Err(LsapError::SparseInfeasible { k }) => assert_eq!(k, 2),
        other => panic!("expected SparseInfeasible, got {other:?}"),
    }

    // The driver recovers by doubling k.
    let out = solver.solve_pruned(&m, 2, 6).expect("escalation converges");
    assert!(out.escalations >= 1, "must escalate: {out:?}");
    assert!(!out.dense_fallback);
    assert_eq!(out.report.objective, reference_optimum(&m));
    out.report.verify(&m, F32_VERIFY_EPS).unwrap();
}

// ---------------------------------------------------------------------
// The tentpole's efficiency claims, asserted at test scale.
// ---------------------------------------------------------------------

/// Sparse k = 8 at n = 1024 must model ≥ 5× fewer compute cycles than
/// the dense solve of the same instance (the bench gate re-checks this
/// with committed numbers; here it guards the invariant in `cargo test`).
#[test]
fn sparse_k8_n1024_is_5x_cheaper_in_compute() {
    let n = 1024;
    let m = easy(n);
    let config = IpuConfig::tiny(64);
    let (_, dense_engine) = HunIpu::with_config(config.clone())
        .solve_with_engine(&m)
        .expect("dense solve");
    let sc = prune_topk(&m, 8);
    let (report, sparse_engine) = HunIpu::with_config(config)
        .solve_sparse_with_engine(&sc)
        .expect("sparse solve");
    assert_eq!(report.objective, n as f64);
    let dense_cycles = dense_engine.stats().compute_cycles;
    let sparse_cycles = sparse_engine.stats().compute_cycles;
    assert!(
        sparse_cycles * 5 <= dense_cycles,
        "sparse {sparse_cycles} vs dense {dense_cycles}: speedup {:.2}x < 5x",
        dense_cycles as f64 / sparse_cycles as f64
    );
}
