//! Differential test: the dispatch model vs the committed measurement
//! grid.
//!
//! `BENCH_portfolio.json` is the measured ground truth — every engine's
//! certificate-verified cost in every (n, k, batch, chips) cell the
//! regret gate covers. This test recomputes the portfolio's pick for
//! each committed cell from [`PortfolioTable::calibrated`] (no
//! re-measurement, so it runs in milliseconds in both `cargo test`
//! legs) and checks the model against the data:
//!
//! 1. the committed `picked` field is what the calibrated table picks
//!    today — a model edit that silently changes dispatch decisions
//!    fails here before the slow bench gate even runs,
//! 2. the committed `oracle` is genuinely the measured argmin of its
//!    cell (the file can't claim a regret the data doesn't support),
//! 3. the pick's *measured* cost is within [`PORTFOLIO_MAX_REGRET`] of
//!    the measured oracle in every cell — the same bound `bench
//!    portfolio --check` enforces, evaluated from the committed data.

use bench::{PortfolioBaseline, PORTFOLIO_MAX_REGRET};
use lsap::portfolio::{InstanceShape, PortfolioTable};
use std::path::Path;

fn committed() -> PortfolioBaseline {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_portfolio.json");
    PortfolioBaseline::load(&path).expect("BENCH_portfolio.json is committed at the repo root")
}

#[test]
fn committed_grid_covers_the_full_shape_product() {
    let base = committed();
    assert_eq!(
        base.entries.len(),
        24,
        "3 sizes x 2 ks x 2 batches x 2 chips"
    );
    for e in &base.entries {
        assert!(
            e.measured.iter().any(|m| m.engine == "jv")
                && e.measured.iter().any(|m| m.engine == "munkres")
                && e.measured.iter().any(|m| m.engine == "auction")
                && e.measured.iter().any(|m| m.engine == "hunipu"),
            "cell n={} must measure every always-supported engine",
            e.n
        );
        if e.n.is_power_of_two() {
            assert!(
                e.measured.iter().any(|m| m.engine == "fastha"),
                "power-of-two cell n={} must measure the GPU engine",
                e.n
            );
        }
    }
}

#[test]
fn calibrated_pick_matches_the_committed_decision_in_every_cell() {
    let base = committed();
    let table = PortfolioTable::calibrated();
    for e in &base.entries {
        let shape = InstanceShape {
            n: e.n,
            k: e.k as f64,
            batch: e.batch,
            chips: e.chips,
            candidates: None,
        };
        let pick = table.pick(shape).expect("some engine supports every n");
        assert_eq!(
            pick.engine, e.picked,
            "cell n={} k={} batch={} chips={}: the calibrated table now picks a \
             different engine than the committed baseline — re-run \
             `bench portfolio --write-baseline` and re-commit",
            e.n, e.k, e.batch, e.chips
        );
    }
}

#[test]
fn committed_oracle_is_the_measured_argmin_and_regret_holds() {
    let base = committed();
    for e in &base.entries {
        let best = e
            .measured
            .iter()
            .min_by(|a, b| a.seconds_per_instance.total_cmp(&b.seconds_per_instance))
            .expect("cells are never empty");
        assert_eq!(
            best.engine, e.oracle,
            "cell n={} k={} batch={} chips={}: oracle label is not the measured min",
            e.n, e.k, e.batch, e.chips
        );
        assert!(
            (best.seconds_per_instance - e.oracle_seconds).abs()
                <= 1e-12 * e.oracle_seconds.max(1e-300),
            "oracle seconds must equal the measured min"
        );
        let picked = e
            .measured
            .iter()
            .find(|m| m.engine == e.picked)
            .expect("the picked engine is measured in its own cell");
        assert!(
            picked.seconds_per_instance <= e.oracle_seconds * (1.0 + PORTFOLIO_MAX_REGRET),
            "cell n={} k={} batch={} chips={}: picked {} costs {} vs oracle {} {} — \
             regret exceeds the {}% bound",
            e.n,
            e.k,
            e.batch,
            e.chips,
            e.picked,
            picked.seconds_per_instance,
            e.oracle,
            e.oracle_seconds,
            PORTFOLIO_MAX_REGRET * 100.0
        );
    }
}
