//! Smoke test for the serving-layer load harness: a miniature version of
//! the `bench serve` scenario (closed-loop calibration, then open loop at
//! 2x the sustainable rate under a seeded storm) must account for every
//! request, keep the queue bounded, answer nothing incorrectly, and be
//! bit-deterministic — the properties the CI gate enforces at full size.

use bench::{calibrate_service_cycles, run_open_loop, LoadSpec};

fn spec() -> LoadSpec {
    LoadSpec {
        n: 12,
        requests: 14,
        seed: 5,
        queue_capacity: 3,
        max_batch: 2,
        batch_window_cycles: 2_000,
        budget_cycles: None,
        tight_every: 0,
        tight_budget_cycles: 0,
        storm_rate: 0.0,
    }
}

#[test]
fn overloaded_storm_run_is_safe_bounded_and_deterministic() {
    let mut spec = spec();
    let service_cycles = calibrate_service_cycles(&spec, 3);
    assert!(service_cycles > 0.0);
    let inter_arrival = (service_cycles / 2.0).max(1.0) as u64;

    spec.storm_rate = 0.05;
    spec.budget_cycles = Some((service_cycles * 8.0) as u64);
    let a = run_open_loop(&spec, inter_arrival);
    let b = run_open_loop(&spec, inter_arrival);

    assert_eq!(a, b, "same seeded scenario must reproduce bit-for-bit");
    assert_eq!(a.accounted(), a.offered, "every request accounted once");
    assert_eq!(a.incorrect, 0, "no silent wrong answers, ever");
    assert!(
        a.queue_high_water <= spec.queue_capacity,
        "admission control must bound the queue"
    );
    assert!(a.shed > 0, "2x offered load must shed");
    assert!(a.exact + a.degraded > 0, "the ladder still answers");
}
