//! Load generation for the serving layer (`bench serve`).
//!
//! Drives an [`AssignmentService`] on its virtual clock in two modes:
//!
//! - **closed loop** ([`calibrate_service_cycles`]): one request in
//!   flight at a time on a clean device, measuring the sustainable
//!   per-request service time in cycles — the denominator for "offered
//!   load";
//! - **open loop** ([`run_open_loop`]): requests arrive on a fixed
//!   inter-arrival grid regardless of completions (the overload case the
//!   serving layer exists for), optionally under a seeded fault storm.
//!
//! Every answered request is re-verified *outside* the service against
//! the CPU ground truth: exact answers must match the optimum and carry
//! a verifying certificate; degraded answers must carry a sound
//! weak-duality gap bound. The summary counts any violation as
//! `incorrect` — the CI gate requires that count to be zero.

use hunipu::HunIpu;
use ipu_sim::{FaultPlan, IpuConfig};
use lsap::{CostMatrix, LsapError};
use serve::{AssignmentService, Outcome, Quality, Request, ServiceConfig};

/// One load scenario: the workload grid plus the service tunables.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Instance size n (every request solves an n x n matrix).
    pub n: usize,
    /// Requests offered in the open-loop phase.
    pub requests: usize,
    /// Dataset / fault seed.
    pub seed: u64,
    /// Admission bound of the service queue.
    pub queue_capacity: usize,
    /// Micro-batch size limit.
    pub max_batch: usize,
    /// Micro-batch coalescing window, virtual cycles.
    pub batch_window_cycles: u64,
    /// Deadline budget given to every request (cycles from arrival);
    /// `None` = no deadlines.
    pub budget_cycles: Option<u64>,
    /// Every `tight_every`-th request instead carries
    /// [`LoadSpec::tight_budget_cycles`] — an interactive tier whose
    /// budget exact solving cannot meet, exercising the greedy rung
    /// under load. 0 disables the tier.
    pub tight_every: usize,
    /// Budget of the interactive tier, cycles from arrival.
    pub tight_budget_cycles: u64,
    /// Per-opportunity bit-flip rate of the fault storm; 0.0 = clean.
    pub storm_rate: f64,
}

impl LoadSpec {
    /// The device under the service: small and fast to simulate, with a
    /// tight divergence watchdog so fault-corrupted runs fail quickly.
    pub fn device(&self) -> IpuConfig {
        IpuConfig {
            max_while_iterations: 20_000,
            ..IpuConfig::tiny(8)
        }
    }

    fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            queue_capacity: self.queue_capacity,
            max_batch: self.max_batch,
            batch_window_cycles: self.batch_window_cycles,
            default_budget_cycles: self.budget_cycles,
            ..ServiceConfig::default()
        }
    }

    fn service(&self) -> AssignmentService {
        AssignmentService::new(HunIpu::with_config(self.device()), self.service_config())
    }

    fn matrix(&self, i: usize) -> CostMatrix {
        datasets::gaussian_cost_matrix(self.n, 100, self.seed.wrapping_add(i as u64))
    }

    fn storm(&self) -> Option<FaultPlan> {
        (self.storm_rate > 0.0).then(|| {
            FaultPlan::new(self.seed ^ 0x5eed)
                .with_bit_flips(self.storm_rate)
                .targeting("slack")
                .after_supersteps(10)
        })
    }
}

/// What one load run produced, all in modeled quantities (bit-identical
/// for a fixed [`LoadSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Requests offered.
    pub offered: u64,
    /// Refused at admission (queue full).
    pub shed: u64,
    /// Answered exactly (certificate-verified).
    pub exact: u64,
    /// Answered degraded (greedy with a gap bound).
    pub degraded: u64,
    /// Explicitly rejected on deadline.
    pub deadline_exceeded: u64,
    /// Exact answers that rerouted to the CPU rung.
    pub rerouted: u64,
    /// IPU retries summed over requests.
    pub retries: u64,
    /// Breaker trips (transitions to Open) across backends.
    pub breaker_trips: u64,
    /// Deepest the queue ever got (bounded by the admission capacity).
    pub queue_high_water: usize,
    /// Answers that failed external re-verification. **Must be zero.**
    pub incorrect: u64,
    /// Median answered latency, virtual cycles.
    pub p50_latency_cycles: u64,
    /// 99th-percentile answered latency, virtual cycles.
    pub p99_latency_cycles: u64,
    /// One line per outcome plus the serialized metrics — two runs of
    /// the same spec must produce identical fingerprints.
    pub fingerprint: String,
}

impl LoadSummary {
    /// `shed + exact + degraded + deadline_exceeded` — must equal
    /// `offered` (every request is accounted for exactly once).
    pub fn accounted(&self) -> u64 {
        self.shed + self.exact + self.degraded + self.deadline_exceeded
    }
}

/// Measures the sustainable closed-loop service time: `samples` requests
/// served one at a time on a clean, warmed-up device. Returns modeled
/// cycles per request.
pub fn calibrate_service_cycles(spec: &LoadSpec, samples: usize) -> f64 {
    assert!(samples >= 1);
    let mut svc = spec.service();
    // Warm-up request pays the compile; excluded from the measurement.
    submit_next(&mut svc, "calibrate", spec.matrix(0), 1);
    svc.run_until_idle();
    let t0 = svc.now();
    for i in 0..samples {
        submit_next(&mut svc, "calibrate", spec.matrix(1 + i), 1);
        svc.run_until_idle();
    }
    // Each iteration contributes one cycle of idle gap (`now + 1`).
    (svc.now() - t0 - samples as u64) as f64 / samples as f64
}

/// Runs the open-loop phase: `spec.requests` arrivals, one every
/// `inter_arrival_cycles`, under the spec's fault storm, alternating
/// between two tenants — then one **brownout probe** (a request whose
/// budget fits only the greedy rung) once the queue drains, so the run
/// exercises the whole degradation ladder. Panics only on harness bugs;
/// service-level failures (shed, deadline) are counted, and verification
/// failures land in [`LoadSummary::incorrect`].
pub fn run_open_loop(spec: &LoadSpec, inter_arrival_cycles: u64) -> LoadSummary {
    let mut svc = spec.service();
    svc.set_fault_plan(spec.storm());

    let mut matrices = Vec::with_capacity(spec.requests);
    let mut log: Vec<String> = Vec::new();
    let mut shed = 0u64;
    for i in 0..spec.requests {
        let m = spec.matrix(i);
        let t = 1 + i as u64 * inter_arrival_cycles;
        let tenant = format!("t{}", i % 2);
        let mut req = Request::new(tenant, m.clone());
        if spec.tight_every > 0 && i % spec.tight_every == spec.tight_every - 1 {
            req = req.with_budget(spec.tight_budget_cycles);
        }
        match svc.submit_at(t, req) {
            Ok(id) => {
                matrices.push((id, m));
                log.push(format!("admit {id} at {t}"));
            }
            Err(LsapError::Overloaded { .. }) => {
                shed += 1;
                log.push(format!("shed request {i} at {t}"));
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    svc.run_until_idle();

    // Brownout probe: with the queue drained and the service's cycle
    // estimates learned, offer one request whose budget provably fits
    // only the greedy rung — above the greedy charge, below the CPU
    // cost of every instance in play (so whatever instance the learned
    // CPU estimate came from, the exact rungs are skipped). The service
    // must answer it *degraded with a gap bound*, exercising the last
    // rung of the ladder under the same roof as the overload phase.
    let probe_matrix = spec.matrix(spec.requests);
    let clock_hz = spec.device().clock_hz;
    let min_cpu = matrices
        .iter()
        .map(|(_, m)| m)
        .chain(std::iter::once(&probe_matrix))
        .map(|m| {
            use lsap::LsapSolver;
            let mut jv = cpu_hungarian::JonkerVolgenant::new();
            let secs = jv
                .solve(m)
                .expect("CPU baseline solves")
                .stats
                .modeled_seconds
                .expect("CPU baseline models seconds");
            (secs * clock_hz).ceil() as u64
        })
        .min()
        .expect("at least the probe instance");
    let gc = serve::greedy_modeled_cycles(spec.n);
    let mut offered = spec.requests as u64;
    if min_cpu > gc + 2 {
        let budget = gc + (min_cpu - gc) / 2;
        let t = svc.now() + 1;
        let probe_id = svc
            .submit_at(
                t,
                Request::new("probe", probe_matrix.clone()).with_budget(budget),
            )
            .expect("idle service admits the probe");
        svc.run_until_idle();
        matrices.push((probe_id, probe_matrix));
        log.push(format!("probe {probe_id} budget {budget}"));
        offered += 1;
    }

    let outcomes = svc.take_completed();
    let mut incorrect = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for out in &outcomes {
        let (_, m) = matrices
            .iter()
            .find(|(id, _)| *id == out.id())
            .expect("every outcome maps to an admitted request");
        match out {
            Outcome::Done(r) => {
                latencies.push(r.completion - r.arrival);
                if !verify_response(r, m) {
                    incorrect += 1;
                }
                log.push(format!(
                    "done {} {} {:?} arr={} done={} obj={}",
                    r.id, r.backend, r.quality, r.arrival, r.completion, r.objective
                ));
            }
            Outcome::Failed(rej) => {
                if !matches!(rej.error, LsapError::DeadlineExceeded { .. }) {
                    // The only legitimate post-admission failure.
                    incorrect += 1;
                }
                log.push(format!("fail {} {}", rej.id, rej.error));
            }
        }
    }

    let metrics = svc.metrics();
    log.push(serde_json::to_string(metrics).expect("metrics serialize"));
    latencies.sort_unstable();
    LoadSummary {
        offered,
        shed,
        exact: metrics.total(|t| t.exact),
        degraded: metrics.total(|t| t.degraded),
        deadline_exceeded: metrics.total(|t| t.deadline_exceeded),
        rerouted: metrics.total(|t| t.rerouted),
        retries: metrics.total(|t| t.retries),
        breaker_trips: metrics
            .breaker_transitions
            .iter()
            .filter(|t| t.to == serve::BreakerState::Open)
            .count() as u64,
        queue_high_water: metrics.queue_high_water,
        incorrect,
        p50_latency_cycles: percentile(&latencies, 0.50),
        p99_latency_cycles: percentile(&latencies, 0.99),
        fingerprint: log.join("\n"),
    }
}

/// External re-verification of one answered request — trust nothing the
/// service claimed. Exact answers must equal the independently computed
/// optimum and carry a certificate that verifies; degraded answers must
/// carry a weak-duality bound that really contains the true gap.
fn verify_response(r: &serve::Response, m: &CostMatrix) -> bool {
    let Ok(cost) = r.assignment.cost(m) else {
        return false;
    };
    if (cost - r.objective).abs() > 1e-6 * (1.0 + cost.abs()) {
        return false;
    }
    let opt = cpu_hungarian::ground_truth_objective(m);
    match &r.quality {
        Quality::Exact => {
            r.certificate
                .verify(m, &r.assignment, hunipu::F32_VERIFY_EPS)
                .is_ok()
                && (r.objective - opt).abs() <= 1e-5 * (1.0 + opt.abs())
        }
        Quality::Degraded {
            gap_bound,
            lower_bound,
        } => *lower_bound <= opt + 1e-9 && r.objective - opt <= gap_bound + 1e-9,
    }
}

/// Nearest-rank percentile; 0 with no samples (an all-shed run).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn submit_next(svc: &mut AssignmentService, tenant: &str, m: CostMatrix, gap: u64) {
    let t = svc.now() + gap;
    svc.submit_at(t, Request::new(tenant, m))
        .expect("closed loop never overloads");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> LoadSpec {
        LoadSpec {
            n: 8,
            requests: 6,
            seed: 1,
            queue_capacity: 2,
            max_batch: 2,
            batch_window_cycles: 1_000,
            budget_cycles: None,
            tight_every: 0,
            tight_budget_cycles: 0,
            storm_rate: 0.0,
        }
    }

    #[test]
    fn calibration_is_positive_and_deterministic() {
        let spec = tiny_spec();
        let a = calibrate_service_cycles(&spec, 3);
        let b = calibrate_service_cycles(&spec, 3);
        assert!(a > 0.0);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn open_loop_accounts_for_every_request() {
        let spec = tiny_spec();
        let s = calibrate_service_cycles(&spec, 2);
        let summary = run_open_loop(&spec, (s / 2.0).max(1.0) as u64);
        assert_eq!(summary.accounted(), summary.offered);
        assert_eq!(summary.incorrect, 0);
        assert!(summary.queue_high_water <= spec.queue_capacity);
    }
}
