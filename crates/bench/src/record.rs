//! JSON provenance records written by every harness binary.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One measured cell of a table/figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Engine: "hunipu", "fastha", "cpu", …
    pub engine: String,
    /// Instance size n.
    pub n: usize,
    /// Value-range factor k (0 when not applicable).
    pub k: u64,
    /// Free-form label (dataset, noise level, variant …).
    pub label: String,
    /// Modeled device seconds.
    pub modeled_seconds: f64,
    /// Host wall seconds spent simulating.
    pub wall_seconds: f64,
    /// Objective value of the returned assignment.
    pub objective: f64,
    /// Whether the value was extrapolated rather than executed.
    pub extrapolated: bool,
    /// Host worker threads the simulator used for this measurement.
    /// Affects `wall_seconds` only — modeled results are bit-identical
    /// at every thread count. Records written before this field existed
    /// deserialize as 1 (the simulator was sequential then).
    #[serde(default = "default_host_threads")]
    pub host_threads: usize,
    /// Device steps behind the measurement (BSP supersteps on the IPU,
    /// kernel launches on the GPU; 0 when not applicable). Older records
    /// deserialize as 0.
    #[serde(default)]
    pub device_steps: u64,
    /// Profiler timeline events captured during the measurement (0 when
    /// profiling was off). Older records deserialize as 0.
    #[serde(default)]
    pub profile_events: u64,
}

fn default_host_threads() -> usize {
    1
}

/// A whole experiment's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id: "table1", "table2", "fig5", "table3", "ablation".
    pub experiment: String,
    /// The command-line grid that produced it.
    pub grid: String,
    /// Dataset seed.
    pub seed: u64,
    /// All measurements.
    pub measurements: Vec<Measurement>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(experiment: &str, grid: String, seed: u64) -> Self {
        Self {
            experiment: experiment.to_string(),
            grid,
            seed,
            measurements: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.measurements.push(m);
    }

    /// Writes the record to `target/experiments/<experiment>.json`,
    /// returning the path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&path, serde_json::to_string_pretty(self)?)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = ExperimentRecord::new("table2", "default".into(), 1);
        r.push(Measurement {
            engine: "hunipu".into(),
            n: 512,
            k: 10,
            label: String::new(),
            modeled_seconds: 0.1,
            wall_seconds: 3.0,
            objective: 42.0,
            extrapolated: false,
            host_threads: 4,
            device_steps: 120,
            profile_events: 37,
        });
        let s = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back.measurements.len(), 1);
        assert_eq!(back.measurements[0].n, 512);
        assert_eq!(back.measurements[0].host_threads, 4);
        assert_eq!(back.measurements[0].device_steps, 120);
        assert_eq!(back.measurements[0].profile_events, 37);
    }

    #[test]
    fn records_without_host_threads_deserialize_as_sequential() {
        // A record written before `host_threads` existed: the simulator
        // was sequential, so the field must default to 1.
        let s = r#"{"engine":"hunipu","n":64,"k":10,"label":"",
                    "modeled_seconds":0.1,"wall_seconds":0.2,
                    "objective":7.0,"extrapolated":false}"#;
        let m: Measurement = serde_json::from_str(s).unwrap();
        assert_eq!(m.host_threads, 1);
        assert_eq!(m.device_steps, 0);
        assert_eq!(m.profile_events, 0);
    }
}
