//! Shared harness code for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary prints the paper's rows/series and writes a JSON record
//! under `target/experiments/` for provenance. Absolute numbers are
//! *modeled* device times (see the `calibration` modules of `ipu-sim`,
//! `gpu-sim`, and `cpu-hungarian`); the reproduction target is the
//! paper's **shape** — who wins, by roughly what factor, and how the
//! factors move with size and value range.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod cli;
pub mod gates;
pub mod record;
pub mod runners;
pub mod serve_load;

pub use baseline::{
    BaselineEntry, BatchBaseline, MeasuredCost, MultiIpuBaseline, MultiIpuEntry, PortfolioBaseline,
    PortfolioEntry, ResolveBaseline, ResolveEntry, ScaleBaseline, ScaleEntry, ServeBaseline,
    WallbenchBaseline, WallbenchEntry, CYCLE_TOLERANCE, MULTI_IPU_MIN_IMPROVEMENT,
    PORTFOLIO_MAX_REGRET, RESOLVE_MIN_SPEEDUP, SCALE_SPARSE_FLOOR_MIN_N, SCALE_SPARSE_MIN_SPEEDUP,
    WALLBENCH_MIN_SPEEDUP,
};
pub use cli::Args;
pub use gates::{diff_baselines, run_gates, GateSpec, GATES};
pub use record::{ExperimentRecord, Measurement};
pub use runners::{fmt_time, run_cpu, run_fastha, run_hunipu, CpuExtrapolator};
pub use serve_load::{calibrate_service_cycles, run_open_loop, LoadSpec, LoadSummary};
