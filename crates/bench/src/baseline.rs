//! The checked-in perf baseline behind the CI regression gate.
//!
//! `bench batch --write-baseline` records the amortized per-instance cost
//! of every batch engine into `BENCH_batch.json` at the repo root;
//! `bench batch --check` re-runs the same grid and fails (exit nonzero)
//! when a gated metric regresses by more than [`CYCLE_TOLERANCE`].
//!
//! The gate is flake-free by construction: gated metrics are *modeled*
//! device costs (simulated IPU cycles, modeled GPU seconds) which are
//! deterministic functions of the input grid — bit-identical across
//! machines, thread counts, and load. Wall-clock numbers are carried in
//! the baseline for context but never gated.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Relative regression tolerance on gated metrics (10%). Modeled costs
/// are deterministic, so any drift at all is a real change — the slack
/// only exists so deliberate small costs (an extra superstep, a new
/// counter) don't force a baseline refresh with every PR.
pub const CYCLE_TOLERANCE: f64 = 0.10;

/// One engine's row in the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Batch engine name (e.g. "hunipu-batch", "fastha-batch").
    pub engine: String,
    /// What `single` / `batched` measure (e.g. "cycles/instance",
    /// "modeled_us/instance"). Informational; the gate compares numbers.
    pub metric: String,
    /// Per-instance cost of the sequential baseline (full per-solve
    /// overhead paid every iteration).
    pub single: f64,
    /// Amortized per-instance cost of the batch engine. **Gated.**
    pub batched: f64,
    /// Host wall seconds for the whole batch run. Informational only —
    /// wall time depends on the machine and is never gated.
    #[serde(default)]
    pub wall_seconds: f64,
    /// Host wall throughput, instances/second. Informational only.
    #[serde(default)]
    pub instances_per_sec: f64,
}

/// The whole baseline file: the grid it was measured on plus one entry
/// per gated engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchBaseline {
    /// Instance size n of the grid.
    pub n: usize,
    /// Instances per batch.
    pub batch: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Per-engine measurements.
    pub entries: Vec<BaselineEntry>,
}

impl BatchBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes).
    ///
    /// Checks, per baseline entry:
    /// 1. the engine is still measured,
    /// 2. its amortized cost did not regress by more than `tolerance`,
    /// 3. batching still beats the sequential baseline (the amortization
    ///    win the batch engines exist for; only meaningful — and only
    ///    enforced — when the batch has ≥ 2 instances).
    ///
    /// A grid mismatch is a single violation on its own: comparing costs
    /// across different n/batch/seed would be meaningless.
    pub fn compare(&self, current: &BatchBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if (self.n, self.batch, self.seed) != (current.n, current.batch, current.seed) {
            violations.push(format!(
                "grid mismatch: baseline n={} batch={} seed={}, run n={} batch={} seed={} \
                 — regenerate with --write-baseline",
                self.n, self.batch, self.seed, current.n, current.batch, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let Some(cur) = current.entries.iter().find(|e| e.engine == base.engine) else {
                violations.push(format!("engine {} missing from this run", base.engine));
                continue;
            };
            let limit = base.batched * (1.0 + tolerance);
            if cur.batched > limit {
                violations.push(format!(
                    "{}: amortized {} regressed {:.2} -> {:.2} (+{:.1}%, tolerance {:.0}%)",
                    base.engine,
                    base.metric,
                    base.batched,
                    cur.batched,
                    (cur.batched / base.batched - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
            if current.batch >= 2 && cur.batched >= cur.single {
                violations.push(format!(
                    "{}: amortized {} ({:.2}) no longer beats the sequential \
                     baseline ({:.2}) at batch={}",
                    base.engine, base.metric, cur.batched, cur.single, current.batch
                ));
            }
        }
        violations
    }
}

/// Minimum wall-clock speedup the lowered execution plan must keep over
/// the tree-walking interpreter on the wallbench suite (the plan-lowering
/// tentpole's headline claim). Gated on the per-thread-count *suite
/// aggregate* (total interpreted wall / total plan wall): the aggregate
/// is dominated by the large sizes where wall time actually matters and
/// is far less noisy than any single cell.
pub const WALLBENCH_MIN_SPEEDUP: f64 = 2.0;

/// One (n, host threads) cell of the wallbench interp-vs-plan comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallbenchEntry {
    /// Instance size.
    pub n: usize,
    /// Host worker threads both modes ran with.
    pub threads: usize,
    /// Best-of-reps wall seconds of the tree-walking interpreter.
    /// Informational — wall time depends on the machine.
    pub interp_wall: f64,
    /// Best-of-reps wall seconds of the lowered execution plan.
    /// Informational.
    pub plan_wall: f64,
    /// `interp_wall / plan_wall`. Informational per cell (the gate uses
    /// the per-thread-count aggregate).
    pub speedup: f64,
    /// Whether the two modes produced bit-identical results (objective
    /// bits, assignment, cycle statistics). **Gated: must be true.**
    pub identical: bool,
}

/// The wallbench interp-vs-plan baseline: `bench wallbench
/// --write-baseline` records it into `BENCH_wallbench.json`; `--check`
/// re-runs the suite and fails when the plan path loses its ≥2× wall
/// win or its bit-identity to the interpreter.
///
/// Unlike the modeled-cost baselines, the gated quantity here is a wall
/// *ratio*: both modes run on the same machine in the same process, so
/// the ratio is machine-portable where absolute seconds are not. The
/// recorded walls are carried for context only; the gate recomputes the
/// ratio from the fresh run against the [`WALLBENCH_MIN_SPEEDUP`] floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallbenchBaseline {
    /// Instance sizes of the suite.
    pub sizes: Vec<usize>,
    /// Host thread counts of the suite.
    pub threads: Vec<usize>,
    /// Dataset value range k.
    pub k: u64,
    /// Dataset seed.
    pub seed: u64,
    /// Per-cell measurements.
    pub entries: Vec<WallbenchEntry>,
}

impl WallbenchBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes).
    ///
    /// The current run may cover a *subset* of the baseline's thread
    /// counts (CI gates `SIM_THREADS=1` and `8` in separate invocations)
    /// but must measure every baseline size for each thread count it
    /// does cover. Gates, all structural (tolerance-free):
    /// 1. sizes/k/seed match and the run's thread counts are all in the
    ///    baseline grid,
    /// 2. every measured cell is bit-identical across modes,
    /// 3. each covered thread count keeps the per-thread-count aggregate
    ///    speedup at or above [`WALLBENCH_MIN_SPEEDUP`].
    pub fn compare(&self, current: &WallbenchBaseline) -> Vec<String> {
        let mut violations = Vec::new();
        if (&self.sizes, self.k, self.seed) != (&current.sizes, current.k, current.seed) {
            violations.push(format!(
                "grid mismatch: baseline sizes={:?} k={} seed={}, run sizes={:?} k={} seed={} \
                 — regenerate with --write-baseline",
                self.sizes, self.k, self.seed, current.sizes, current.k, current.seed
            ));
            return violations;
        }
        if current.threads.is_empty() {
            violations.push("run covered no thread counts".to_string());
            return violations;
        }
        for &t in &current.threads {
            if !self.threads.contains(&t) {
                violations.push(format!(
                    "thread count {t} not in the baseline grid {:?} \
                     — regenerate with --write-baseline",
                    self.threads
                ));
                continue;
            }
            let mut interp = 0.0f64;
            let mut plan = 0.0f64;
            let mut cells = 0usize;
            for &n in &self.sizes {
                let Some(cur) = current.entries.iter().find(|e| e.n == n && e.threads == t) else {
                    violations.push(format!("cell n={n} threads={t} missing from this run"));
                    continue;
                };
                if !cur.identical {
                    violations.push(format!(
                        "cell n={n} threads={t}: plan diverged from the interpreter \
                         — bit-identity broken"
                    ));
                }
                interp += cur.interp_wall;
                plan += cur.plan_wall;
                cells += 1;
            }
            if cells == self.sizes.len() && plan > 0.0 {
                let speedup = interp / plan;
                if speedup < WALLBENCH_MIN_SPEEDUP {
                    violations.push(format!(
                        "threads={t}: suite speedup {speedup:.2}x below the \
                         {WALLBENCH_MIN_SPEEDUP:.1}x floor \
                         (interp {interp:.3}s / plan {plan:.3}s)"
                    ));
                }
            }
        }
        violations
    }
}

/// Minimum modeled-cycle reduction the chip-aware layout must deliver
/// on ≥4-chip configurations (the multi-IPU tentpole's headline claim).
pub const MULTI_IPU_MIN_IMPROVEMENT: f64 = 0.20;

/// One (device, topology, n) cell of the multi-IPU baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiIpuEntry {
    /// Device family ("tiny" or "mk2").
    pub device: String,
    /// Chips in the sweep cell.
    pub chips: usize,
    /// Tiles per chip.
    pub tiles_per_chip: usize,
    /// Instance size.
    pub n: usize,
    /// Modeled solve cycles under the chip-oblivious flat layout.
    pub flat_cycles: f64,
    /// Modeled solve cycles under the chip-aware layout. **Gated.**
    pub chip_aware_cycles: f64,
    /// Fractional improvement `1 − chip_aware/flat`. Informational
    /// (recomputed by the gate from the cycle columns).
    pub improvement: f64,
    /// Host wall seconds for the cell. Informational only.
    #[serde(default)]
    pub wall_seconds: f64,
}

/// The multi-IPU sweep baseline: `bench multi_ipu --write-baseline`
/// records it into `BENCH_multi_ipu.json`; `--check` re-runs the grid
/// and fails on regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiIpuBaseline {
    /// Dataset seed.
    pub seed: u64,
    /// Per-cell measurements.
    pub entries: Vec<MultiIpuEntry>,
}

impl MultiIpuBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes). Per baseline cell:
    /// 1. the cell is still measured (same device/topology/n),
    /// 2. chip-aware cycles did not regress by more than `tolerance`,
    /// 3. single-chip cells stay **exactly** flat (the bit-identity
    ///    contract: `Auto` on one chip must compile the seed program),
    /// 4. multi-chip cells keep beating the flat layout, and ≥4-chip
    ///    cells keep the ≥[`MULTI_IPU_MIN_IMPROVEMENT`] headline cut.
    pub fn compare(&self, current: &MultiIpuBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seed != current.seed {
            violations.push(format!(
                "seed mismatch: baseline {}, run {} — regenerate with --write-baseline",
                self.seed, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let key = (
                base.device.as_str(),
                base.chips,
                base.tiles_per_chip,
                base.n,
            );
            let Some(cur) = current
                .entries
                .iter()
                .find(|e| (e.device.as_str(), e.chips, e.tiles_per_chip, e.n) == key)
            else {
                violations.push(format!(
                    "cell {}x{} {} n={} missing from this run",
                    base.chips, base.tiles_per_chip, base.device, base.n
                ));
                continue;
            };
            let cell = format!(
                "{} {}x{} n={}",
                cur.device, cur.chips, cur.tiles_per_chip, cur.n
            );
            let limit = base.chip_aware_cycles * (1.0 + tolerance);
            if cur.chip_aware_cycles > limit {
                violations.push(format!(
                    "{cell}: chip-aware cycles regressed {:.0} -> {:.0} (+{:.1}%, tolerance {:.0}%)",
                    base.chip_aware_cycles,
                    cur.chip_aware_cycles,
                    (cur.chip_aware_cycles / base.chip_aware_cycles - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
            if cur.chips == 1 && cur.chip_aware_cycles != cur.flat_cycles {
                violations.push(format!(
                    "{cell}: single-chip Auto ({:.0}) != Flat ({:.0}) — bit-identity broken",
                    cur.chip_aware_cycles, cur.flat_cycles
                ));
            }
            if cur.chips > 1 && cur.chip_aware_cycles >= cur.flat_cycles {
                violations.push(format!(
                    "{cell}: chip-aware ({:.0}) no longer beats flat ({:.0})",
                    cur.chip_aware_cycles, cur.flat_cycles
                ));
            }
            if cur.chips >= 4 {
                let improvement = 1.0 - cur.chip_aware_cycles / cur.flat_cycles;
                if improvement < MULTI_IPU_MIN_IMPROVEMENT {
                    violations.push(format!(
                        "{cell}: improvement {:.1}% below the {:.0}% floor",
                        improvement * 100.0,
                        MULTI_IPU_MIN_IMPROVEMENT * 100.0
                    ));
                }
            }
        }
        violations
    }
}

/// The serving-layer load-test baseline: `bench serve --write-baseline`
/// records it into `BENCH_serve.json`; `--check` re-runs the scenario
/// (closed-loop calibration, then open loop at 2x the sustainable rate
/// under a seeded fault storm) and fails on regression.
///
/// Everything gated is modeled (virtual cycles, counts) and therefore
/// deterministic; wall time is carried for context only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBaseline {
    /// Instance size n of the workload.
    pub n: usize,
    /// Requests offered in the open-loop phase.
    pub requests: usize,
    /// Total requests offered including the harness's brownout probe —
    /// the accounting denominator.
    pub offered: u64,
    /// Dataset / fault seed.
    pub seed: u64,
    /// Admission bound the scenario ran with.
    pub queue_capacity: usize,
    /// Closed-loop sustainable service time, cycles/request. **Gated.**
    pub service_cycles_per_request: f64,
    /// Open-loop inter-arrival grid (half the service time — 2x load).
    /// Informational; recomputed from the calibration on every run.
    pub inter_arrival_cycles: u64,
    /// Certificate-verified exact answers. **Gated** (quality floor).
    pub exact: u64,
    /// Degraded answers (greedy with a sound gap bound).
    pub degraded: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Explicit deadline rejections.
    pub deadline_exceeded: u64,
    /// Exact answers rerouted to the CPU rung.
    pub rerouted: u64,
    /// Circuit-breaker trips during the storm.
    pub breaker_trips: u64,
    /// Answers failing external re-verification. **Gated: must be 0.**
    pub incorrect: u64,
    /// Deepest the queue got. **Gated: must stay within capacity.**
    pub queue_high_water: usize,
    /// Median answered latency, virtual cycles. **Gated.**
    pub p50_latency_cycles: u64,
    /// p99 answered latency, virtual cycles. **Gated.**
    pub p99_latency_cycles: u64,
    /// Host wall seconds for the whole scenario. Informational only.
    #[serde(default)]
    pub wall_seconds: f64,
}

impl ServeBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes).
    ///
    /// Structural gates (never tolerated, tolerance-independent):
    /// 1. zero incorrect answers — every response certificate-verified
    ///    or explicitly degraded with a sound bound,
    /// 2. the queue never exceeds its admission capacity,
    /// 3. every offered request accounted for exactly once
    ///    (`exact + degraded + deadline_exceeded + shed == requests`),
    /// 4. 2x offered load still sheds (if it stops shedding, the
    ///    scenario is no longer an overload test and the numbers are
    ///    incomparable).
    ///
    /// Tolerance gates: sustainable service time, p50/p99 latency, and
    /// the answered-exactly count (quality floor) may drift by at most
    /// `tolerance` relative to the baseline.
    pub fn compare(&self, current: &ServeBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if (self.n, self.requests, self.seed, self.queue_capacity)
            != (
                current.n,
                current.requests,
                current.seed,
                current.queue_capacity,
            )
        {
            violations.push(format!(
                "grid mismatch: baseline n={} requests={} seed={} capacity={}, \
                 run n={} requests={} seed={} capacity={} — regenerate with --write-baseline",
                self.n,
                self.requests,
                self.seed,
                self.queue_capacity,
                current.n,
                current.requests,
                current.seed,
                current.queue_capacity
            ));
            return violations;
        }
        if current.incorrect != 0 {
            violations.push(format!(
                "{} incorrect answer(s) — the no-silent-wrong-answers contract is broken",
                current.incorrect
            ));
        }
        if current.queue_high_water > current.queue_capacity {
            violations.push(format!(
                "queue high water {} exceeds the admission capacity {}",
                current.queue_high_water, current.queue_capacity
            ));
        }
        let accounted = current.exact + current.degraded + current.deadline_exceeded + current.shed;
        if accounted != current.offered {
            violations.push(format!(
                "request accounting broken: {} offered but {} accounted \
                 (exact {} + degraded {} + deadline {} + shed {})",
                current.offered,
                accounted,
                current.exact,
                current.degraded,
                current.deadline_exceeded,
                current.shed
            ));
        }
        if self.shed > 0 && current.shed == 0 {
            violations.push(
                "2x offered load no longer sheds — the scenario stopped exercising overload"
                    .to_string(),
            );
        }
        if self.degraded > 0 && current.degraded == 0 {
            violations.push(
                "the brownout probe no longer degrades — the greedy rung went unexercised"
                    .to_string(),
            );
        }
        let mut gate = |what: &str, base: f64, cur: f64| {
            if cur > base * (1.0 + tolerance) {
                violations.push(format!(
                    "{what} regressed {base:.0} -> {cur:.0} (+{:.1}%, tolerance {:.0}%)",
                    (cur / base - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        };
        gate(
            "sustainable service cycles/request",
            self.service_cycles_per_request,
            current.service_cycles_per_request,
        );
        gate(
            "p50 latency cycles",
            self.p50_latency_cycles as f64,
            current.p50_latency_cycles as f64,
        );
        gate(
            "p99 latency cycles",
            self.p99_latency_cycles as f64,
            current.p99_latency_cycles as f64,
        );
        let exact_floor = (self.exact as f64 * (1.0 - tolerance)).floor();
        if (current.exact as f64) < exact_floor {
            violations.push(format!(
                "exact answers dropped {} -> {} (quality floor {:.0}, tolerance {:.0}%)",
                self.exact,
                current.exact,
                exact_floor,
                tolerance * 100.0
            ));
        }
        violations
    }
}

/// Minimum cold/warm modeled-cycle speedup the warm-started re-solve
/// must deliver at small perturbations (`k <= n/8` rows touched) — the
/// re-solve tentpole's headline claim.
pub const RESOLVE_MIN_SPEEDUP: f64 = 2.0;

/// One `(n, k)` cell of the re-solve baseline: a stream of `ticks`
/// perturbations of a base instance, each re-solved warm (dual repair +
/// the Step-1-free seeded program) and cold for comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolveEntry {
    /// Instance size.
    pub n: usize,
    /// Rows perturbed per tick.
    pub k: usize,
    /// Re-solve ticks measured (after the initial cold solve).
    pub ticks: usize,
    /// Mean modeled cycles of the cold solves over the same stream.
    pub cold_cycles: f64,
    /// Mean modeled cycles of the warm re-solves. **Gated** (tolerance
    /// regression; and the ≥[`RESOLVE_MIN_SPEEDUP`] floor at `k <= n/8`).
    pub warm_cycles: f64,
    /// `cold_cycles / warm_cycles`. Informational (recomputed by the
    /// gate from the cycle columns).
    pub speedup: f64,
    /// Ticks answered by the seeded program with a verifying
    /// certificate. **Gated**: must not drop when the baseline seeds.
    pub seeded: u64,
    /// Ticks whose seeded answer failed its certificate and fell back
    /// to a cold solve (counted, never silent).
    pub fallbacks: u64,
    /// Warm answers whose objective disagreed with the cold CPU ground
    /// truth. **Gated: must be 0.**
    pub mismatches: u64,
    /// Host wall seconds for the cell. Informational only.
    #[serde(default)]
    pub wall_seconds: f64,
}

/// The warm-start re-solve baseline: `bench resolve --write-baseline`
/// records it into `BENCH_resolve.json`; `--check` re-runs the sweep
/// and fails on regression. Everything gated is modeled (virtual
/// cycles, counts), so two runs at any `SIM_THREADS` agree bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolveBaseline {
    /// Dataset / perturbation seed.
    pub seed: u64,
    /// Per-cell measurements.
    pub entries: Vec<ResolveEntry>,
}

impl ResolveBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes). Per baseline cell:
    /// 1. the cell is still measured (same `n`, `k`, `ticks`),
    /// 2. **zero mismatches** — every warm answer equals the cold CPU
    ///    ground truth (correctness is never traded for speed),
    /// 3. warm re-solve cycles did not regress by more than `tolerance`,
    /// 4. small perturbations (`k <= n/8`) keep the
    ///    ≥[`RESOLVE_MIN_SPEEDUP`] cold/warm speedup (recomputed from
    ///    the cycle columns, not trusted from the stored ratio),
    /// 5. the seeded program is still exercised wherever the baseline
    ///    exercised it (a silent always-fallback would otherwise pass
    ///    the correctness gates while measuring nothing).
    pub fn compare(&self, current: &ResolveBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seed != current.seed {
            violations.push(format!(
                "seed mismatch: baseline {}, run {} — regenerate with --write-baseline",
                self.seed, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let Some(cur) = current
                .entries
                .iter()
                .find(|e| (e.n, e.k, e.ticks) == (base.n, base.k, base.ticks))
            else {
                violations.push(format!(
                    "cell n={} k={} ticks={} missing from this run",
                    base.n, base.k, base.ticks
                ));
                continue;
            };
            let cell = format!("n={} k={}", cur.n, cur.k);
            if cur.mismatches != 0 {
                violations.push(format!(
                    "{cell}: {} warm answer(s) disagree with the cold CPU ground truth",
                    cur.mismatches
                ));
            }
            let limit = base.warm_cycles * (1.0 + tolerance);
            if cur.warm_cycles > limit {
                violations.push(format!(
                    "{cell}: warm re-solve cycles regressed {:.0} -> {:.0} (+{:.1}%, tolerance {:.0}%)",
                    base.warm_cycles,
                    cur.warm_cycles,
                    (cur.warm_cycles / base.warm_cycles - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
            if cur.k * 8 <= cur.n {
                let speedup = cur.cold_cycles / cur.warm_cycles;
                if speedup < RESOLVE_MIN_SPEEDUP {
                    violations.push(format!(
                        "{cell}: warm speedup {speedup:.2}x below the {RESOLVE_MIN_SPEEDUP:.1}x floor",
                    ));
                }
            }
            if base.seeded > 0 && cur.seeded == 0 {
                violations.push(format!(
                    "{cell}: seeded program no longer taken (baseline seeded {} ticks, run 0 — all fallbacks)",
                    base.seeded
                ));
            }
        }
        violations
    }
}

/// Maximum dispatch regret the calibrated portfolio may leave on the
/// table, per grid cell: `measured(picked) / measured(oracle-best) − 1`
/// must stay ≤ 10%. A mispick near a cost crossover is cheap (the two
/// engines measure alike there) and passes; dispatching to an engine
/// clearly slower than the best one fails the gate and means the
/// committed `PortfolioTable::calibrated` constants are stale —
/// regenerate them with `bench calibrate --emit-rust`.
pub const PORTFOLIO_MAX_REGRET: f64 = 0.10;

/// One engine's measured cost in a portfolio grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredCost {
    /// Engine name.
    pub engine: String,
    /// Measured amortized modeled seconds per instance.
    pub seconds_per_instance: f64,
}

/// One `(n, k, batch, chips)` cell of the portfolio regret baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioEntry {
    /// Instance size.
    pub n: usize,
    /// Value-range factor of the instance family.
    pub k: u64,
    /// Instances amortized per engine checkout.
    pub batch: usize,
    /// Chips the IPU engine spans.
    pub chips: usize,
    /// The engine `PortfolioTable::calibrated` picked for this shape.
    pub picked: String,
    /// The engine with the cheapest *measured* cost (the oracle).
    pub oracle: String,
    /// Measured amortized seconds/instance of the picked engine.
    /// **Gated**: at most `(1 + PORTFOLIO_MAX_REGRET) ×` the oracle's.
    pub picked_seconds: f64,
    /// Measured amortized seconds/instance of the oracle-best engine.
    /// **Gated** against drift (modeled costs are deterministic).
    pub oracle_seconds: f64,
    /// `picked_seconds / oracle_seconds − 1`. Informational — the gate
    /// recomputes it from the measured columns.
    pub regret: f64,
    /// Every candidate's measured cost in this cell, for context.
    pub measured: Vec<MeasuredCost>,
    /// Host wall seconds for the cell. Informational only.
    #[serde(default)]
    pub wall_seconds: f64,
}

/// The portfolio dispatch-regret baseline: `bench portfolio
/// --write-baseline` records it into `BENCH_portfolio.json`; `--check`
/// re-measures the grid and fails when the calibrated table's pick
/// leaves more than [`PORTFOLIO_MAX_REGRET`] on the table in any cell,
/// or when a measured cost drifts. Every dispatched answer is
/// certificate-verified by the harness before its cost is trusted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioBaseline {
    /// Dataset seed.
    pub seed: u64,
    /// Per-cell measurements.
    pub entries: Vec<PortfolioEntry>,
}

impl PortfolioBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes). Per baseline cell:
    /// 1. the cell is still measured (same `n`, `k`, `batch`, `chips`),
    /// 2. the oracle column is really the measured minimum (a harness
    ///    that mislabels the oracle would otherwise hide regret),
    /// 3. **the regret gate**: the picked engine's measured cost is
    ///    within [`PORTFOLIO_MAX_REGRET`] of oracle-best — recomputed
    ///    from the measured columns, tolerance-independent,
    /// 4. the oracle-best cost itself did not regress by more than
    ///    `tolerance` (the underlying engines got slower — a perf
    ///    regression even if dispatch still picks them correctly).
    pub fn compare(&self, current: &PortfolioBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seed != current.seed {
            violations.push(format!(
                "seed mismatch: baseline {}, run {} — regenerate with --write-baseline",
                self.seed, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let key = (base.n, base.k, base.batch, base.chips);
            let Some(cur) = current
                .entries
                .iter()
                .find(|e| (e.n, e.k, e.batch, e.chips) == key)
            else {
                violations.push(format!(
                    "cell n={} k={} batch={} chips={} missing from this run",
                    base.n, base.k, base.batch, base.chips
                ));
                continue;
            };
            let cell = format!(
                "n={} k={} batch={} chips={}",
                cur.n, cur.k, cur.batch, cur.chips
            );
            let measured_min = cur
                .measured
                .iter()
                .map(|m| m.seconds_per_instance)
                .fold(f64::INFINITY, f64::min);
            if cur.oracle_seconds > measured_min * (1.0 + 1e-9) {
                violations.push(format!(
                    "{cell}: oracle column {:.3e} is not the measured minimum {:.3e}",
                    cur.oracle_seconds, measured_min
                ));
            }
            if cur.picked_seconds > cur.oracle_seconds * (1.0 + PORTFOLIO_MAX_REGRET) {
                violations.push(format!(
                    "{cell}: dispatch regret {:.1}% exceeds the {:.0}% gate \
                     (picked {} at {:.3e}s vs oracle {} at {:.3e}s) \
                     — recalibrate with `bench calibrate --emit-rust`",
                    (cur.picked_seconds / cur.oracle_seconds - 1.0) * 100.0,
                    PORTFOLIO_MAX_REGRET * 100.0,
                    cur.picked,
                    cur.picked_seconds,
                    cur.oracle,
                    cur.oracle_seconds
                ));
            }
            if cur.oracle_seconds > base.oracle_seconds * (1.0 + tolerance) {
                violations.push(format!(
                    "{cell}: oracle-best cost regressed {:.3e} -> {:.3e} (+{:.1}%, tolerance {:.0}%)",
                    base.oracle_seconds,
                    cur.oracle_seconds,
                    (cur.oracle_seconds / base.oracle_seconds - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        violations
    }
}

/// Minimum modeled compute-cycle advantage the sparse k=8 solve must
/// keep over the dense solve of the same instance (the beyond-SRAM
/// tentpole's headline sparse claim, stated at n=1024). Applies from
/// [`SCALE_SPARSE_FLOOR_MIN_N`] up: at small n the fixed per-sweep
/// overheads dominate and the k/n ratio advantage has not opened yet.
pub const SCALE_SPARSE_MIN_SPEEDUP: f64 = 5.0;

/// Smallest n at which [`SCALE_SPARSE_MIN_SPEEDUP`] is enforced.
pub const SCALE_SPARSE_FLOOR_MIN_N: usize = 1024;

/// One (engine, n) cell of the beyond-SRAM scaling baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleEntry {
    /// Representation: "dense", "sparse_k8", or "tiled".
    pub engine: String,
    /// Instance size.
    pub n: usize,
    /// Whether the representation compiles under the per-tile SRAM
    /// budget at this n. **Gated exactly**: the dense n=4096 cell must
    /// stay infeasible (it proves the ceiling the tiled path breaks),
    /// and every other cell must stay feasible.
    pub feasible: bool,
    /// Modeled compute cycles of the verified solve. **Gated.** Zero
    /// for infeasible cells.
    pub compute_cycles: f64,
    /// Modeled total cycles (compute + exchange + sync + host IO).
    /// Informational context for the compute column.
    pub total_cycles: f64,
    /// Bytes streamed through the host PCIe link. Informational — the
    /// tiled rows are the only nonzero ones.
    pub host_bytes: f64,
    /// Peak SRAM bytes resident on any one tile. **Gated**: an
    /// out-of-core layout that silently grows resident again would pass
    /// a cycles-only gate.
    pub resident_bytes_per_tile: f64,
    /// Host wall seconds for the cell. Informational only.
    #[serde(default)]
    pub wall_seconds: f64,
}

/// The beyond-SRAM scaling baseline: `bench scale --write-baseline`
/// records it into `BENCH_scale.json`; `--check` re-runs the grid and
/// fails on regression. Everything gated is modeled and deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleBaseline {
    /// Dataset seed.
    pub seed: u64,
    /// Per-cell measurements.
    pub entries: Vec<ScaleEntry>,
}

impl ScaleBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes). Per baseline cell:
    /// 1. the cell is still measured (same engine, n),
    /// 2. its feasibility did not flip — in either direction (a dense
    ///    n=4096 cell that suddenly "fits" means the SRAM accounting
    ///    broke, not that the ceiling moved),
    /// 3. compute cycles did not regress by more than `tolerance`,
    /// 4. resident bytes/tile did not grow by more than `tolerance`,
    /// 5. **the sparse headline**: wherever both are measured, the
    ///    sparse k=8 solve keeps ≥[`SCALE_SPARSE_MIN_SPEEDUP`]× fewer
    ///    compute cycles than the dense solve of the same n.
    pub fn compare(&self, current: &ScaleBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seed != current.seed {
            violations.push(format!(
                "seed mismatch: baseline {}, run {} — regenerate with --write-baseline",
                self.seed, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let Some(cur) = current
                .entries
                .iter()
                .find(|e| (e.engine.as_str(), e.n) == (base.engine.as_str(), base.n))
            else {
                violations.push(format!(
                    "cell {} n={} missing from this run",
                    base.engine, base.n
                ));
                continue;
            };
            let cell = format!("{} n={}", cur.engine, cur.n);
            if cur.feasible != base.feasible {
                violations.push(format!(
                    "{cell}: feasibility flipped {} -> {} — the SRAM budget accounting changed",
                    base.feasible, cur.feasible
                ));
                continue;
            }
            if !cur.feasible {
                continue;
            }
            if cur.compute_cycles > base.compute_cycles * (1.0 + tolerance) {
                violations.push(format!(
                    "{cell}: compute cycles regressed {:.0} -> {:.0} (+{:.1}%, tolerance {:.0}%)",
                    base.compute_cycles,
                    cur.compute_cycles,
                    (cur.compute_cycles / base.compute_cycles - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
            if cur.resident_bytes_per_tile > base.resident_bytes_per_tile * (1.0 + tolerance) {
                violations.push(format!(
                    "{cell}: resident bytes/tile grew {:.0} -> {:.0} (+{:.1}%, tolerance {:.0}%)",
                    base.resident_bytes_per_tile,
                    cur.resident_bytes_per_tile,
                    (cur.resident_bytes_per_tile / base.resident_bytes_per_tile - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        for sparse in current
            .entries
            .iter()
            .filter(|e| e.engine == "sparse_k8" && e.n >= SCALE_SPARSE_FLOOR_MIN_N)
        {
            let Some(dense) = current
                .entries
                .iter()
                .find(|e| e.engine == "dense" && e.n == sparse.n && e.feasible)
            else {
                continue;
            };
            let speedup = dense.compute_cycles / sparse.compute_cycles.max(1.0);
            if speedup < SCALE_SPARSE_MIN_SPEEDUP {
                violations.push(format!(
                    "n={}: sparse k=8 compute advantage {speedup:.2}x fell below the \
                     {SCALE_SPARSE_MIN_SPEEDUP:.0}x floor (dense {:.0} vs sparse {:.0} cycles)",
                    sparse.n, dense.compute_cycles, sparse.compute_cycles
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(engine: &str, single: f64, batched: f64) -> BaselineEntry {
        BaselineEntry {
            engine: engine.into(),
            metric: "cycles/instance".into(),
            single,
            batched,
            wall_seconds: 1.0,
            instances_per_sec: 16.0,
        }
    }

    fn baseline(entries: Vec<BaselineEntry>) -> BatchBaseline {
        BatchBaseline {
            n: 64,
            batch: 16,
            seed: 1,
            entries,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let b = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes_large_fails() {
        let base = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        let ok = baseline(vec![entry("hunipu-batch", 1000.0, 650.0)]);
        assert!(base.compare(&ok, CYCLE_TOLERANCE).is_empty());
        let bad = baseline(vec![entry("hunipu-batch", 1000.0, 700.0)]);
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"), "{v:?}");
    }

    #[test]
    fn losing_the_amortization_win_fails_even_within_tolerance() {
        let base = baseline(vec![entry("e", 600.0, 599.0)]);
        // 0.2% slower — inside tolerance — but now >= the sequential cost.
        let cur = baseline(vec![entry("e", 600.0, 600.2)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no longer beats"), "{v:?}");
    }

    #[test]
    fn missing_engine_and_grid_mismatch_fail() {
        let base = baseline(vec![entry("a", 10.0, 5.0), entry("b", 10.0, 5.0)]);
        let cur = baseline(vec![entry("a", 10.0, 5.0)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));

        let mut other = base.clone();
        other.seed = 2;
        let v = base.compare(&other, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("grid mismatch"));
    }

    #[test]
    fn roundtrips_through_disk() {
        let b = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch.json");
        b.save(&path).unwrap();
        let back = BatchBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].batched, 600.0);
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }

    fn cell(chips: usize, flat: f64, chip_aware: f64) -> MultiIpuEntry {
        MultiIpuEntry {
            device: "tiny".into(),
            chips,
            tiles_per_chip: 8,
            n: 48,
            flat_cycles: flat,
            chip_aware_cycles: chip_aware,
            improvement: 1.0 - chip_aware / flat,
            wall_seconds: 0.1,
        }
    }

    fn multi(entries: Vec<MultiIpuEntry>) -> MultiIpuBaseline {
        MultiIpuBaseline { seed: 1, entries }
    }

    #[test]
    fn multi_ipu_identical_runs_pass() {
        let b = multi(vec![cell(1, 1000.0, 1000.0), cell(4, 1000.0, 500.0)]);
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn multi_ipu_regression_and_missing_cell_fail() {
        let base = multi(vec![cell(2, 1000.0, 800.0)]);
        let bad = multi(vec![cell(2, 1000.0, 900.0)]);
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"), "{v:?}");

        let v = base.compare(&multi(vec![]), CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"), "{v:?}");

        let mut reseeded = base.clone();
        reseeded.seed = 2;
        let v = base.compare(&reseeded, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("seed mismatch"), "{v:?}");
    }

    #[test]
    fn multi_ipu_structural_gates_hold_even_within_tolerance() {
        // Single-chip cells must stay exactly flat (bit-identity).
        let base = multi(vec![cell(1, 1000.0, 1000.0)]);
        let cur = multi(vec![cell(1, 1000.0, 1001.0)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identity"), "{v:?}");

        // Multi-chip cells must keep beating flat.
        let base = multi(vec![cell(2, 1000.0, 990.0)]);
        let cur = multi(vec![cell(2, 1000.0, 1000.0)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no longer beats"), "{v:?}");

        // ≥4-chip cells must keep the headline ≥20% cut. A run that is
        // within tolerance of its own baseline but whose flat reference
        // got cheaper can still fall below the floor.
        let base = multi(vec![cell(4, 1000.0, 790.0)]);
        let cur = multi(vec![cell(4, 950.0, 790.0)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("floor"), "{v:?}");
    }

    fn serve_base() -> ServeBaseline {
        ServeBaseline {
            n: 24,
            requests: 48,
            offered: 49,
            seed: 1,
            queue_capacity: 8,
            service_cycles_per_request: 100_000.0,
            inter_arrival_cycles: 50_000,
            exact: 21,
            degraded: 6,
            shed: 18,
            deadline_exceeded: 4,
            rerouted: 10,
            breaker_trips: 1,
            incorrect: 0,
            queue_high_water: 8,
            p50_latency_cycles: 200_000,
            p99_latency_cycles: 900_000,
            wall_seconds: 2.0,
        }
    }

    #[test]
    fn serve_identical_runs_pass() {
        let b = serve_base();
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn serve_structural_gates_are_tolerance_independent() {
        let base = serve_base();

        let mut bad = serve_base();
        bad.incorrect = 1;
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("incorrect")), "{v:?}");

        let mut bad = serve_base();
        bad.queue_high_water = 9;
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("high water")), "{v:?}");

        let mut bad = serve_base();
        bad.shed = 17; // one request vanishes from the accounting
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("accounting")), "{v:?}");

        let mut bad = serve_base();
        bad.shed = 0;
        bad.exact = 38; // accounting still closes, but nothing shed
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("no longer sheds")), "{v:?}");
    }

    #[test]
    fn serve_tolerance_gates_catch_latency_and_quality_drift() {
        let base = serve_base();

        let mut ok = serve_base();
        ok.p99_latency_cycles = 980_000; // < +10%
        assert!(base.compare(&ok, CYCLE_TOLERANCE).is_empty());

        let mut bad = serve_base();
        bad.p99_latency_cycles = 1_000_000; // > +10%
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("p99")), "{v:?}");

        let mut bad = serve_base();
        bad.exact = 17; // below the floor(21 * 0.9) = 18 quality floor
        bad.deadline_exceeded = 8; // keep the accounting closed
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|s| s.contains("quality floor")), "{v:?}");

        let mut mismatched = serve_base();
        mismatched.seed = 2;
        let v = base.compare(&mismatched, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("grid mismatch"), "{v:?}");
    }

    #[test]
    fn serve_roundtrips_through_disk() {
        let b = serve_base();
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        b.save(&path).unwrap();
        let back = ServeBaseline::load(&path).unwrap();
        assert_eq!(back.exact, 21);
        assert_eq!(back.p99_latency_cycles, 900_000);
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }

    fn wall_entry(n: usize, threads: usize, interp: f64, plan: f64) -> WallbenchEntry {
        WallbenchEntry {
            n,
            threads,
            interp_wall: interp,
            plan_wall: plan,
            speedup: interp / plan,
            identical: true,
        }
    }

    fn wall_base() -> WallbenchBaseline {
        WallbenchBaseline {
            sizes: vec![128, 512],
            threads: vec![1, 8],
            k: 10,
            seed: 42,
            entries: vec![
                wall_entry(128, 1, 0.05, 0.02),
                wall_entry(512, 1, 2.5, 1.0),
                wall_entry(128, 8, 0.05, 0.02),
                wall_entry(512, 8, 2.3, 0.9),
            ],
        }
    }

    #[test]
    fn wallbench_identical_runs_pass() {
        let b = wall_base();
        assert!(b.compare(&b.clone()).is_empty());
    }

    #[test]
    fn wallbench_subset_of_thread_counts_passes() {
        let base = wall_base();
        let mut cur = wall_base();
        cur.threads = vec![8];
        cur.entries.retain(|e| e.threads == 8);
        assert!(base.compare(&cur).is_empty());
    }

    #[test]
    fn wallbench_slow_suite_and_divergence_fail() {
        let base = wall_base();

        // The aggregate is what gates: a weak small cell is carried by a
        // strong large one (2.55 / 1.22 > 2x here)...
        let mut ok = wall_base();
        ok.entries[0] = wall_entry(128, 1, 0.05, 0.04);
        assert!(base.compare(&ok).is_empty());

        // ...but a slow large cell sinks the thread count's aggregate.
        let mut bad = wall_base();
        bad.entries[1] = wall_entry(512, 1, 2.5, 1.5);
        let v = base.compare(&bad);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].contains("threads=1") && v[0].contains("floor"),
            "{v:?}"
        );

        let mut diverged = wall_base();
        diverged.entries[3].identical = false;
        let v = base.compare(&diverged);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identity"), "{v:?}");
    }

    #[test]
    fn wallbench_grid_mismatch_and_missing_cell_fail() {
        let base = wall_base();

        let mut reseeded = wall_base();
        reseeded.seed = 7;
        let v = base.compare(&reseeded);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("grid mismatch"), "{v:?}");

        let mut unknown_threads = wall_base();
        unknown_threads.threads = vec![4];
        unknown_threads.entries = vec![wall_entry(128, 4, 0.05, 0.02)];
        let v = base.compare(&unknown_threads);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not in the baseline grid"), "{v:?}");

        let mut missing = wall_base();
        missing.entries.remove(1);
        let v = base.compare(&missing);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"), "{v:?}");
    }

    #[test]
    fn wallbench_roundtrips_through_disk() {
        let b = wall_base();
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_wallbench.json");
        b.save(&path).unwrap();
        let back = WallbenchBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 4);
        assert!(back.entries[0].identical);
        assert!(b.compare(&back).is_empty());
    }

    #[test]
    fn multi_ipu_roundtrips_through_disk() {
        let b = multi(vec![cell(4, 1000.0, 500.0)]);
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_multi_ipu.json");
        b.save(&path).unwrap();
        let back = MultiIpuBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].chip_aware_cycles, 500.0);
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }

    fn resolve_cell(n: usize, k: usize, cold: f64, warm: f64, seeded: u64) -> ResolveEntry {
        ResolveEntry {
            n,
            k,
            ticks: 4,
            cold_cycles: cold,
            warm_cycles: warm,
            speedup: cold / warm,
            seeded,
            fallbacks: 4 - seeded,
            mismatches: 0,
            wall_seconds: 0.5,
        }
    }

    fn resolve(entries: Vec<ResolveEntry>) -> ResolveBaseline {
        ResolveBaseline { seed: 1, entries }
    }

    #[test]
    fn resolve_identical_runs_pass() {
        let b = resolve(vec![
            resolve_cell(128, 1, 8000.0, 2000.0, 4),
            resolve_cell(128, 128, 8000.0, 7500.0, 4),
        ]);
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn resolve_mismatch_with_ground_truth_always_fails() {
        let base = resolve(vec![resolve_cell(128, 1, 8000.0, 2000.0, 4)]);
        let mut bad = base.clone();
        bad.entries[0].mismatches = 1;
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("ground truth"), "{v:?}");
    }

    #[test]
    fn resolve_warm_cycle_regression_fails_beyond_tolerance() {
        let base = resolve(vec![resolve_cell(128, 1, 8000.0, 2000.0, 4)]);
        let mut ok = base.clone();
        ok.entries[0].warm_cycles = 2100.0;
        assert!(base.compare(&ok, CYCLE_TOLERANCE).is_empty());
        let mut bad = base.clone();
        bad.entries[0].warm_cycles = 2500.0;
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"), "{v:?}");
    }

    #[test]
    fn resolve_speedup_floor_applies_only_to_small_perturbations() {
        // k = n (full perturbation): no speedup floor, 1.05x passes.
        let full = resolve(vec![resolve_cell(128, 128, 8000.0, 7600.0, 4)]);
        assert!(full.compare(&full.clone(), CYCLE_TOLERANCE).is_empty());
        // k = n/8: the floor applies — recomputed from the cycle columns,
        // a stale stored `speedup` does not save the run.
        let base = resolve(vec![resolve_cell(128, 16, 8000.0, 2000.0, 4)]);
        let mut bad = base.clone();
        bad.entries[0].warm_cycles = 2100.0; // within tolerance...
        bad.entries[0].cold_cycles = 4000.0; // ...but only 1.9x now
        bad.entries[0].speedup = 4.0; // stale claim, must be ignored
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("below the 2.0x floor"), "{v:?}");
    }

    #[test]
    fn resolve_silent_always_fallback_fails() {
        let base = resolve(vec![resolve_cell(128, 1, 8000.0, 2000.0, 4)]);
        let mut bad = base.clone();
        bad.entries[0].seeded = 0;
        bad.entries[0].fallbacks = 4;
        // Fallback path solves cold, so cycles would also regress; keep
        // them flat here to isolate the seeded-exercise gate.
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert!(v.iter().any(|m| m.contains("no longer taken")), "{v:?}");
    }

    #[test]
    fn resolve_missing_cell_and_seed_change_fail() {
        let base = resolve(vec![
            resolve_cell(128, 1, 8000.0, 2000.0, 4),
            resolve_cell(256, 32, 30000.0, 9000.0, 4),
        ]);
        let v = base.compare(
            &resolve(vec![resolve_cell(128, 1, 8000.0, 2000.0, 4)]),
            CYCLE_TOLERANCE,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"), "{v:?}");
        let mut reseeded = base.clone();
        reseeded.seed = 2;
        let v = base.compare(&reseeded, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("seed mismatch"), "{v:?}");
    }

    #[test]
    fn resolve_roundtrips_through_disk() {
        let b = resolve(vec![resolve_cell(128, 16, 8000.0, 2000.0, 4)]);
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_resolve.json");
        b.save(&path).unwrap();
        let back = ResolveBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].warm_cycles, 2000.0);
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }

    fn portfolio_cell(n: usize, picked_s: f64, oracle_s: f64) -> PortfolioEntry {
        PortfolioEntry {
            n,
            k: 10,
            batch: 1,
            chips: 1,
            picked: "jv".into(),
            oracle: "jv".into(),
            picked_seconds: picked_s,
            oracle_seconds: oracle_s,
            regret: picked_s / oracle_s - 1.0,
            measured: vec![
                MeasuredCost {
                    engine: "jv".into(),
                    seconds_per_instance: oracle_s,
                },
                MeasuredCost {
                    engine: "hunipu".into(),
                    seconds_per_instance: oracle_s * 20.0,
                },
            ],
            wall_seconds: 0.1,
        }
    }

    fn portfolio(entries: Vec<PortfolioEntry>) -> PortfolioBaseline {
        PortfolioBaseline { seed: 1, entries }
    }

    #[test]
    fn portfolio_identical_runs_pass() {
        let b = portfolio(vec![portfolio_cell(64, 1.0e-4, 1.0e-4)]);
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn portfolio_regret_gate_is_tolerance_independent() {
        let base = portfolio(vec![portfolio_cell(64, 1.05e-4, 1.0e-4)]);
        // 5% regret passes...
        assert!(base.compare(&base.clone(), CYCLE_TOLERANCE).is_empty());
        // ...30% regret fails, recomputed from the measured columns even
        // though the stored `regret` field claims otherwise.
        let mut bad = portfolio(vec![portfolio_cell(64, 1.3e-4, 1.0e-4)]);
        bad.entries[0].regret = 0.0;
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].contains("regret") && v[0].contains("recalibrate"),
            "{v:?}"
        );
    }

    #[test]
    fn portfolio_oracle_drift_and_mislabeled_oracle_fail() {
        let base = portfolio(vec![portfolio_cell(64, 1.0e-4, 1.0e-4)]);
        // The engines themselves got slower: oracle cost beyond tolerance.
        let bad = portfolio(vec![portfolio_cell(64, 1.2e-4, 1.2e-4)]);
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("oracle-best cost regressed"), "{v:?}");
        // A harness bug that labels a non-minimal engine as oracle would
        // hide regret — caught structurally.
        let mut lying = portfolio(vec![portfolio_cell(64, 1.0e-4, 1.0e-4)]);
        lying.entries[0].measured[0].seconds_per_instance = 0.5e-4;
        let v = base.compare(&lying, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not the measured minimum"), "{v:?}");
    }

    #[test]
    fn portfolio_missing_cell_and_seed_change_fail() {
        let base = portfolio(vec![
            portfolio_cell(64, 1.0e-4, 1.0e-4),
            portfolio_cell(128, 2.0e-4, 2.0e-4),
        ]);
        let v = base.compare(
            &portfolio(vec![portfolio_cell(64, 1.0e-4, 1.0e-4)]),
            CYCLE_TOLERANCE,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"), "{v:?}");
        let mut reseeded = base.clone();
        reseeded.seed = 2;
        let v = base.compare(&reseeded, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("seed mismatch"), "{v:?}");
    }

    #[test]
    fn portfolio_roundtrips_through_disk() {
        let b = portfolio(vec![portfolio_cell(64, 1.0e-4, 1.0e-4)]);
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_portfolio.json");
        b.save(&path).unwrap();
        let back = PortfolioBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].measured.len(), 2);
        assert_eq!(back.entries[0].oracle, "jv");
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }
}
