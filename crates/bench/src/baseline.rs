//! The checked-in perf baseline behind the CI regression gate.
//!
//! `bench batch --write-baseline` records the amortized per-instance cost
//! of every batch engine into `BENCH_batch.json` at the repo root;
//! `bench batch --check` re-runs the same grid and fails (exit nonzero)
//! when a gated metric regresses by more than [`CYCLE_TOLERANCE`].
//!
//! The gate is flake-free by construction: gated metrics are *modeled*
//! device costs (simulated IPU cycles, modeled GPU seconds) which are
//! deterministic functions of the input grid — bit-identical across
//! machines, thread counts, and load. Wall-clock numbers are carried in
//! the baseline for context but never gated.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Relative regression tolerance on gated metrics (10%). Modeled costs
/// are deterministic, so any drift at all is a real change — the slack
/// only exists so deliberate small costs (an extra superstep, a new
/// counter) don't force a baseline refresh with every PR.
pub const CYCLE_TOLERANCE: f64 = 0.10;

/// One engine's row in the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Batch engine name (e.g. "hunipu-batch", "fastha-batch").
    pub engine: String,
    /// What `single` / `batched` measure (e.g. "cycles/instance",
    /// "modeled_us/instance"). Informational; the gate compares numbers.
    pub metric: String,
    /// Per-instance cost of the sequential baseline (full per-solve
    /// overhead paid every iteration).
    pub single: f64,
    /// Amortized per-instance cost of the batch engine. **Gated.**
    pub batched: f64,
    /// Host wall seconds for the whole batch run. Informational only —
    /// wall time depends on the machine and is never gated.
    #[serde(default)]
    pub wall_seconds: f64,
    /// Host wall throughput, instances/second. Informational only.
    #[serde(default)]
    pub instances_per_sec: f64,
}

/// The whole baseline file: the grid it was measured on plus one entry
/// per gated engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchBaseline {
    /// Instance size n of the grid.
    pub n: usize,
    /// Instances per batch.
    pub batch: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Per-engine measurements.
    pub entries: Vec<BaselineEntry>,
}

impl BatchBaseline {
    /// Reads a baseline from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pretty-prints the baseline to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Compares a fresh run against this baseline, returning every
    /// violation (empty = gate passes).
    ///
    /// Checks, per baseline entry:
    /// 1. the engine is still measured,
    /// 2. its amortized cost did not regress by more than `tolerance`,
    /// 3. batching still beats the sequential baseline (the amortization
    ///    win the batch engines exist for; only meaningful — and only
    ///    enforced — when the batch has ≥ 2 instances).
    ///
    /// A grid mismatch is a single violation on its own: comparing costs
    /// across different n/batch/seed would be meaningless.
    pub fn compare(&self, current: &BatchBaseline, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if (self.n, self.batch, self.seed) != (current.n, current.batch, current.seed) {
            violations.push(format!(
                "grid mismatch: baseline n={} batch={} seed={}, run n={} batch={} seed={} \
                 — regenerate with --write-baseline",
                self.n, self.batch, self.seed, current.n, current.batch, current.seed
            ));
            return violations;
        }
        for base in &self.entries {
            let Some(cur) = current.entries.iter().find(|e| e.engine == base.engine) else {
                violations.push(format!("engine {} missing from this run", base.engine));
                continue;
            };
            let limit = base.batched * (1.0 + tolerance);
            if cur.batched > limit {
                violations.push(format!(
                    "{}: amortized {} regressed {:.2} -> {:.2} (+{:.1}%, tolerance {:.0}%)",
                    base.engine,
                    base.metric,
                    base.batched,
                    cur.batched,
                    (cur.batched / base.batched - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
            if current.batch >= 2 && cur.batched >= cur.single {
                violations.push(format!(
                    "{}: amortized {} ({:.2}) no longer beats the sequential \
                     baseline ({:.2}) at batch={}",
                    base.engine, base.metric, cur.batched, cur.single, current.batch
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(engine: &str, single: f64, batched: f64) -> BaselineEntry {
        BaselineEntry {
            engine: engine.into(),
            metric: "cycles/instance".into(),
            single,
            batched,
            wall_seconds: 1.0,
            instances_per_sec: 16.0,
        }
    }

    fn baseline(entries: Vec<BaselineEntry>) -> BatchBaseline {
        BatchBaseline {
            n: 64,
            batch: 16,
            seed: 1,
            entries,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let b = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        assert!(b.compare(&b.clone(), CYCLE_TOLERANCE).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes_large_fails() {
        let base = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        let ok = baseline(vec![entry("hunipu-batch", 1000.0, 650.0)]);
        assert!(base.compare(&ok, CYCLE_TOLERANCE).is_empty());
        let bad = baseline(vec![entry("hunipu-batch", 1000.0, 700.0)]);
        let v = base.compare(&bad, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"), "{v:?}");
    }

    #[test]
    fn losing_the_amortization_win_fails_even_within_tolerance() {
        let base = baseline(vec![entry("e", 600.0, 599.0)]);
        // 0.2% slower — inside tolerance — but now >= the sequential cost.
        let cur = baseline(vec![entry("e", 600.0, 600.2)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no longer beats"), "{v:?}");
    }

    #[test]
    fn missing_engine_and_grid_mismatch_fail() {
        let base = baseline(vec![entry("a", 10.0, 5.0), entry("b", 10.0, 5.0)]);
        let cur = baseline(vec![entry("a", 10.0, 5.0)]);
        let v = base.compare(&cur, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));

        let mut other = base.clone();
        other.seed = 2;
        let v = base.compare(&other, CYCLE_TOLERANCE);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("grid mismatch"));
    }

    #[test]
    fn roundtrips_through_disk() {
        let b = baseline(vec![entry("hunipu-batch", 1000.0, 600.0)]);
        let dir = std::env::temp_dir().join("bench-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch.json");
        b.save(&path).unwrap();
        let back = BatchBaseline::load(&path).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].batched, 600.0);
        assert!(b.compare(&back, CYCLE_TOLERANCE).is_empty());
    }
}
