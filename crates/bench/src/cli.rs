//! Tiny dependency-free argument parsing shared by the harness binaries.

/// Parsed command-line options.
///
/// Conventions across binaries:
/// - `--full` runs the paper's complete parameter grid (hours of host
///   time when simulating the biggest instances); the default grid is
///   chosen to finish in minutes while covering the shape,
/// - `--sizes 512,1024` / `--ks 10,500` override the sweeps,
/// - `--seed N` changes the dataset seed,
/// - positional arguments select sub-experiments (e.g. `table3
///   highschool`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// `--full` grid flag.
    pub full: bool,
    /// `--uniform`: use uniformly-distributed costs instead of Gaussian
    /// (the paper reports "similar speedup with uniformly distributed
    /// data", omitted there for space — reproducible here).
    pub uniform: bool,
    /// Override for the size sweep.
    pub sizes: Option<Vec<usize>>,
    /// Override for the k (value-range) sweep.
    pub ks: Option<Vec<u64>>,
    /// `--threads 1,4,0`: host worker-thread counts to sweep (0 = auto).
    /// Only wall-clock changes with the thread count — modeled results
    /// are bit-identical — so only wall-benchmarking binaries consume it.
    pub threads: Option<Vec<usize>>,
    /// Dataset seed.
    pub seed: u64,
    /// Positional arguments.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, panicking with a usage hint on malformed
    /// input (these are developer-facing harnesses).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args {
            seed: 1,
            ..Default::default()
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--uniform" => out.uniform = true,
                "--sizes" => {
                    let v = it.next().expect("--sizes needs a comma-separated list");
                    out.sizes = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad size"))
                            .collect(),
                    );
                }
                "--ks" => {
                    let v = it.next().expect("--ks needs a comma-separated list");
                    out.ks = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad k"))
                            .collect(),
                    );
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a comma-separated list");
                    out.threads = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad thread count"))
                            .collect(),
                    );
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("bad seed");
                }
                other if other.starts_with("--") => {
                    panic!(
                        "unknown flag {other}; supported: \
                         --full --uniform --sizes --ks --threads --seed"
                    )
                }
                other => out.positional.push(other.to_string()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert!(!a.full);
        assert_eq!(a.seed, 1);
        assert!(a.sizes.is_none());
    }

    #[test]
    fn full_sizes_ks_seed_and_positional() {
        let a = parse("--full --sizes 512,1024 --ks 10,500 --seed 7 highschool");
        assert!(a.full);
        assert_eq!(a.sizes.as_deref(), Some(&[512, 1024][..]));
        assert_eq!(a.ks.as_deref(), Some(&[10, 500][..]));
        assert_eq!(a.seed, 7);
        assert_eq!(a.positional, vec!["highschool"]);
    }

    #[test]
    fn threads_sweep_parses_with_auto_sentinel() {
        let a = parse("--threads 1,4,0");
        assert_eq!(a.threads.as_deref(), Some(&[1, 4, 0][..]));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse("--bogus");
    }
}
