//! Tiny dependency-free argument parsing shared by the harness binaries.

/// Parsed command-line options.
///
/// Conventions across binaries:
/// - `--full` runs the paper's complete parameter grid (hours of host
///   time when simulating the biggest instances); the default grid is
///   chosen to finish in minutes while covering the shape,
/// - `--sizes 512,1024` / `--ks 10,500` override the sweeps,
/// - `--seed N` changes the dataset seed,
/// - positional arguments select sub-experiments (e.g. `table3
///   highschool`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// `--full` grid flag.
    pub full: bool,
    /// `--uniform`: use uniformly-distributed costs instead of Gaussian
    /// (the paper reports "similar speedup with uniformly distributed
    /// data", omitted there for space — reproducible here).
    pub uniform: bool,
    /// Override for the size sweep.
    pub sizes: Option<Vec<usize>>,
    /// Override for the k (value-range) sweep.
    pub ks: Option<Vec<u64>>,
    /// `--threads 1,4,0`: host worker-thread counts to sweep (0 = auto).
    /// Only wall-clock changes with the thread count — modeled results
    /// are bit-identical — so only wall-benchmarking binaries consume it.
    pub threads: Option<Vec<usize>>,
    /// Dataset seed.
    pub seed: u64,
    /// `--tile-sample N`: per-tile detail stride for the IPU profiler
    /// (1 = every tile; larger strides bound trace size on big devices).
    pub tile_sample: Option<u32>,
    /// `--max-events N`: timeline ring-buffer capacity for the profilers.
    pub max_events: Option<usize>,
    /// `--out PATH`: output path override (e.g. where `bench profile`
    /// writes its merged Chrome trace).
    pub out: Option<String>,
    /// `--batch B`: instances per batch for the batch harness.
    pub batch: Option<usize>,
    /// `--check`: compare results against the checked-in baseline and
    /// exit nonzero on regression (the CI perf gate).
    pub check: bool,
    /// `--write-baseline`: regenerate the checked-in baseline file.
    pub write_baseline: bool,
    /// `--baseline PATH`: baseline file override (default
    /// `BENCH_batch.json` at the repo root).
    pub baseline: Option<String>,
    /// `--emit-rust`: print fitted cost models as a Rust literal
    /// (`bench calibrate`).
    pub emit_rust: bool,
    /// `--all`: run every registered baseline gate (`bench gate`).
    pub all: bool,
    /// `--drift`: re-record every baseline to a scratch directory and
    /// diff against the committed files (`bench gate`, the weekly
    /// scheduled job).
    pub drift: bool,
    /// `--only NAME`: restrict `bench gate` to gates whose name contains
    /// NAME.
    pub only: Option<String>,
    /// Positional arguments.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, panicking with a usage hint on malformed
    /// input (these are developer-facing harnesses).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args {
            seed: 1,
            ..Default::default()
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--uniform" => out.uniform = true,
                "--sizes" => {
                    let v = it.next().expect("--sizes needs a comma-separated list");
                    out.sizes = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad size"))
                            .collect(),
                    );
                }
                "--ks" => {
                    let v = it.next().expect("--ks needs a comma-separated list");
                    out.ks = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad k"))
                            .collect(),
                    );
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a comma-separated list");
                    out.threads = Some(
                        v.split(',')
                            .map(|x| x.trim().parse().expect("bad thread count"))
                            .collect(),
                    );
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("bad seed");
                }
                "--tile-sample" => {
                    let v: u32 = it
                        .next()
                        .expect("--tile-sample needs a value")
                        .parse()
                        .expect("bad tile-sample stride");
                    assert!(v >= 1, "--tile-sample must be >= 1");
                    out.tile_sample = Some(v);
                }
                "--max-events" => {
                    out.max_events = Some(
                        it.next()
                            .expect("--max-events needs a value")
                            .parse()
                            .expect("bad max-events capacity"),
                    );
                }
                "--out" => {
                    out.out = Some(it.next().expect("--out needs a path"));
                }
                "--batch" => {
                    let b: usize = it
                        .next()
                        .expect("--batch needs a value")
                        .parse()
                        .expect("bad batch size");
                    assert!(b >= 1, "--batch must be >= 1");
                    out.batch = Some(b);
                }
                "--check" => out.check = true,
                "--write-baseline" => out.write_baseline = true,
                "--baseline" => {
                    out.baseline = Some(it.next().expect("--baseline needs a path"));
                }
                "--emit-rust" => out.emit_rust = true,
                "--all" => out.all = true,
                "--drift" => out.drift = true,
                "--only" => {
                    out.only = Some(it.next().expect("--only needs a gate name"));
                }
                other if other.starts_with("--") => {
                    panic!(
                        "unknown flag {other}; supported: \
                         --full --uniform --sizes --ks --threads --seed \
                         --tile-sample --max-events --out --batch --check \
                         --write-baseline --baseline --emit-rust --all \
                         --drift --only"
                    )
                }
                other => out.positional.push(other.to_string()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert!(!a.full);
        assert_eq!(a.seed, 1);
        assert!(a.sizes.is_none());
    }

    #[test]
    fn full_sizes_ks_seed_and_positional() {
        let a = parse("--full --sizes 512,1024 --ks 10,500 --seed 7 highschool");
        assert!(a.full);
        assert_eq!(a.sizes.as_deref(), Some(&[512, 1024][..]));
        assert_eq!(a.ks.as_deref(), Some(&[10, 500][..]));
        assert_eq!(a.seed, 7);
        assert_eq!(a.positional, vec!["highschool"]);
    }

    #[test]
    fn threads_sweep_parses_with_auto_sentinel() {
        let a = parse("--threads 1,4,0");
        assert_eq!(a.threads.as_deref(), Some(&[1, 4, 0][..]));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse("--bogus");
    }

    #[test]
    fn profiler_flags_parse() {
        let a = parse("--tile-sample 4 --max-events 1024 --out /tmp/t.json");
        assert_eq!(a.tile_sample, Some(4));
        assert_eq!(a.max_events, Some(1024));
        assert_eq!(a.out.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn profiler_flags_default_to_none() {
        let a = parse("--seed 3");
        assert_eq!(a.tile_sample, None);
        assert_eq!(a.max_events, None);
        assert_eq!(a.out, None);
    }

    #[test]
    #[should_panic(expected = "--tile-sample must be >= 1")]
    fn zero_tile_sample_panics() {
        parse("--tile-sample 0");
    }

    #[test]
    fn batch_and_gate_flags_parse() {
        let a = parse("--batch 32 --check --baseline /tmp/b.json");
        assert_eq!(a.batch, Some(32));
        assert!(a.check);
        assert!(!a.write_baseline);
        assert_eq!(a.baseline.as_deref(), Some("/tmp/b.json"));
        let b = parse("--write-baseline");
        assert!(b.write_baseline && !b.check);
        assert_eq!(b.batch, None);
    }

    #[test]
    #[should_panic(expected = "--batch must be >= 1")]
    fn zero_batch_panics() {
        parse("--batch 0");
    }

    #[test]
    fn gate_runner_flags_parse() {
        let a = parse("--all --drift --only portfolio --emit-rust");
        assert!(a.all && a.drift && a.emit_rust);
        assert_eq!(a.only.as_deref(), Some("portfolio"));
        let b = parse("--check");
        assert!(!b.all && !b.drift && !b.emit_rust && b.only.is_none());
    }
}
