//! Regenerates **Table III**: graph-alignment runtime (ms) on the three
//! real-world (here: synthetic-equivalent) datasets.
//!
//! Pipeline per cell (§V-C): take the dataset graph, build a noisy copy
//! keeping p% of the edges, compute the GRAMPA similarity (η = 0.2),
//! convert to costs, and solve the assignment with HunIPU and with
//! FastHA (the latter on the zero-padded power-of-two matrix, as the
//! paper does).
//!
//! ```text
//! cargo run --release -p bench --bin table3 -- highschool
//! cargo run --release -p bench --bin table3 -- voles multimagna
//! cargo run --release -p bench --bin table3              # all (slow: two
//!                                                        #   1004^2 eigensolves per cell)
//! ```

use align::{grampa_similarity, node_correctness, pad_for_pow2_solver, DEFAULT_ETA};
use bench::{run_fastha, run_hunipu, Args, ExperimentRecord, Measurement};
use graphs::{keep_edge_fraction, realworld};

fn main() {
    let args = Args::parse();
    let datasets: Vec<String> = if args.positional.is_empty() {
        vec!["highschool".into(), "voles".into(), "multimagna".into()]
    } else {
        args.positional.clone()
    };

    let mut record = ExperimentRecord::new("table3", format!("datasets={datasets:?}"), args.seed);
    let ipu_threads = ipu_sim::IpuConfig::mk2().resolved_host_threads();

    println!("Table III: alignment runtime (ms, modeled) — HunIPU vs FastHA");
    for name in &datasets {
        let g = realworld::by_name(name, args.seed)
            .unwrap_or_else(|| panic!("unknown dataset '{name}' (highschool|voles|multimagna)"));
        // MultiMagna is evaluated on five noisy variants in the paper;
        // the proximity datasets sweep the kept-edge percentage.
        let cells: Vec<(String, f64, u64)> = if name.eq_ignore_ascii_case("multimagna") {
            (1..=5)
                .map(|v| (format!("variant{v}"), 0.9, args.seed + v))
                .collect()
        } else {
            [0.80, 0.90, 0.95, 0.99]
                .iter()
                .map(|&p| (format!("{:.0}%", p * 100.0), p, args.seed + 100))
                .collect()
        };

        println!("\n({name}: n={}, m={})", g.n(), g.m());
        println!(
            "{:>10} | {:>12} {:>12} {:>9} {:>9}",
            "edges", "HunIPU", "FastHA", "speedup", "node-acc"
        );
        println!("{}", "-".repeat(60));
        for (label, keep, noise_seed) in cells {
            let noisy = keep_edge_fraction(&g, keep, noise_seed);
            let sim = grampa_similarity(&g, &noisy, DEFAULT_ETA);
            let cost = sim.similarity_to_cost();

            let hun = run_hunipu(&cost);
            // FastHA needs 2^m sizes: pad the *similarity* matrix with
            // zero rows/columns (zero similarity = unattractive), exactly
            // as §V-C describes, then convert.
            let (padded_sim, orig) = pad_for_pow2_solver(&sim);
            let padded_cost = padded_sim.similarity_to_cost();
            let fast = run_fastha(&padded_cost);
            let fast_matching = fast.assignment.truncated(orig, orig);

            // Identity is the ground truth (the noisy copy keeps labels).
            let truth: Vec<usize> = (0..g.n()).collect();
            let acc = node_correctness(&hun.assignment, &truth);
            let acc_fast = node_correctness(&fast_matching, &truth);
            // Both engines optimize the same similarity; their restricted
            // objectives must agree (alternate optima permitting).
            if fast_matching.matched_count() == orig {
                let hun_cost = hun.objective;
                let fast_cost = fast_matching.cost(&cost).expect("valid matching");
                let scale = cost.min_max().1.abs().max(1.0) * orig as f64;
                assert!(
                    (hun_cost - fast_cost).abs() <= 1e-4 * scale,
                    "objective divergence: hunipu {hun_cost} vs fastha {fast_cost}"
                );
            }

            let hs = hun.stats.modeled_seconds.unwrap();
            let fs = fast.stats.modeled_seconds.unwrap();
            println!(
                "{:>10} | {:>10.2}ms {:>10.2}ms {:>8.2}x {:>7.1}/{:.1}%",
                label,
                hs * 1e3,
                fs * 1e3,
                fs / hs,
                acc * 100.0,
                acc_fast * 100.0
            );
            for (engine, rep, secs) in [("hunipu", &hun, hs), ("fastha", &fast, fs)] {
                record.push(Measurement {
                    engine: engine.into(),
                    n: g.n(),
                    k: 0,
                    label: format!("{name}/{label}"),
                    modeled_seconds: secs,
                    wall_seconds: rep.stats.wall_seconds,
                    objective: rep.objective,
                    extrapolated: false,
                    // The GPU simulator runs the host loop sequentially.
                    host_threads: if engine == "hunipu" { ipu_threads } else { 1 },
                    device_steps: rep.stats.device_steps,
                    profile_events: rep.stats.profile_events,
                });
            }
        }
    }
    println!("\npaper's Table III reference: HunIPU beats FastHA by ~5x (Voles worst");
    println!("case ~32x); speedups above come from the same mechanism (padding to 2^m,");
    println!("warp divergence, per-iteration launch+sync overhead).");
    let path = record.save().expect("write record");
    println!("\nrecord: {}", path.display());
}
