//! `bench gate` — one command that runs every registered baseline gate.
//!
//! ```text
//! cargo run --release -p bench --bin gate -- --all           # what CI runs
//! cargo run --release -p bench --bin gate -- --only serve    # one gate
//! cargo run --release -p bench --bin gate -- --all --drift   # weekly drift job
//! ```
//!
//! `--all` (or `--only NAME`) runs each gate from [`bench::GATES`] in
//! check mode — the gate binary's own `--check` plus a record-exists
//! assertion — and prints one pass/fail summary table; output of passing
//! gates is swallowed, failing gates replay theirs. `--drift` instead
//! re-records every baseline to a scratch file and diffs it against the
//! committed one (volatile wall-clock keys ignored), catching modeled
//! costs that moved *within* the gate tolerance. Exit code = number of
//! failed gates.

use bench::{run_gates, Args};

fn main() {
    let args = Args::parse();
    if !args.all && args.only.is_none() {
        eprintln!(
            "usage: bench gate (--all | --only NAME) [--drift]\n\
             registered gates: {:?}",
            bench::GATES.iter().map(|g| g.name).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }
    let failures = run_gates(args.only.as_deref(), args.drift);
    std::process::exit(failures.min(100) as i32);
}
